//! Gram-Schmidt orthogonalization — the DOrtho phase.
//!
//! Algorithm 3 lines 9–15: each column `s_i` is made D-orthogonal to all
//! earlier kept columns, dropped if its norm falls below `10⁻³` (linearly
//! dependent — the degenerate-vector rule), and otherwise normalized to
//! unit Euclidean length.
//!
//! Two procedures, compared in Table 7:
//!
//! * **MGS** (Modified Gram-Schmidt, the default): for each earlier column
//!   `j`, compute one coefficient and immediately update `s_i` — BLAS-1
//!   only. Numerically the more stable classic choice, and the variant that
//!   can run *coupled* with BFS (each new distance vector orthogonalized on
//!   arrival).
//! * **CGS** (Classical Gram-Schmidt): compute **all** coefficients against
//!   the earlier columns with one matrix-vector product, then apply them
//!   with a second — BLAS-2. Fewer, bigger kernels ⇒ consistently ~2–3×
//!   faster in the paper, but requires all distance vectors precomputed.
//! * **BCGS2** (block CGS with reorthogonalization): project whole
//!   *panels* of columns against the kept prefix with two GEMM-shaped
//!   passes, then finish the panel with incremental MGS — BLAS-3, the
//!   fewer-bigger-kernels idea taken one level up. The second pass is the
//!   classic "twice is enough" fix for single-pass CGS's loss of
//!   orthogonality.
//!
//! Plain orthogonalization is the `d = None` case; passing the degree
//! vector gives D-orthogonalization (the paper's §4.5.1 "trivial change").

use crate::blas1::{axpy, dot, dot_weighted, norm2, scale};
use crate::dense::ColMajorMatrix;
use crate::error::{check_matrix_finite, LinalgError};

/// The paper's degeneracy threshold: drop `s_i` when `‖s_i‖ ≤ 10⁻³`
/// (Algorithm 3 line 12).
pub const DROP_TOLERANCE: f64 = 1e-3;

/// Outcome of an orthogonalization pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OrthoOutcome {
    /// Indices (in the original matrix) of the columns that survived.
    pub kept: Vec<usize>,
    /// Indices of dropped (degenerate) columns.
    pub dropped: Vec<usize>,
}

/// In-place Modified Gram-Schmidt over the columns of `s`.
///
/// With `d = Some(w)`, inner products are D-weighted (`xᵀ D y`); with
/// `None` they are Euclidean. Degenerate columns (post-projection norm ≤
/// `tol`) are removed from the matrix; survivors are normalized to unit
/// 2-norm. Returns which original columns survived.
///
/// The projection coefficient follows Algorithm 3 line 11 exactly:
/// `s_i ← s_i − (s_jᵀ D s_i / s_jᵀ D s_j) s_j` — the denominator is kept
/// explicit rather than assumed 1, so the procedure is correct even before
/// normalization.
///
/// # Panics
/// Panics if `d` has the wrong length or `tol` is negative.
pub fn mgs(s: &mut ColMajorMatrix, d: Option<&[f64]>, tol: f64) -> OrthoOutcome {
    assert!(tol >= 0.0, "tolerance must be non-negative");
    if let Some(w) = d {
        assert_eq!(w.len(), s.rows(), "weight vector length mismatch");
    }
    let _span = parhde_trace::span!("dortho.mgs");
    let cols = s.cols();
    let mut kept: Vec<usize> = Vec::with_capacity(cols);
    let mut dropped = Vec::new();
    // Kept columns stay at their original physical index during the pass;
    // the matrix is compacted once at the end via retain_columns.
    for i in 0..cols {
        // Cooperative cancellation point (once per column): a tripped run
        // budget leaves the remaining columns unorthogonalized and reports
        // them dropped; the caller discards the outcome at its next phase
        // boundary.
        if parhde_util::supervisor::should_stop() {
            dropped.extend(i..cols);
            break;
        }
        if mgs_step(s, &kept, i, d, tol) {
            kept.push(i);
        } else {
            dropped.push(i);
        }
    }
    s.retain_columns(&kept);
    if parhde_trace::enabled() {
        parhde_trace::counter!("dortho.kept_columns", kept.len() as u64);
        parhde_trace::counter!("dortho.dropped_columns", dropped.len() as u64);
    }
    OrthoOutcome { kept, dropped }
}

/// One incremental MGS step: orthogonalizes column `i` against the kept
/// columns (by physical index), then normalizes or rejects it. Returns
/// `true` if the column survived (caller appends `i` to its kept list).
///
/// This is the building block of the *coupled* BFS + D-orthogonalization
/// mode (§4.4: the default MGS procedure "can also be executed with a
/// coupled BFS and D-orthogonalization steps"), where each distance vector
/// is orthogonalized the moment its BFS finishes.
///
/// # Panics
/// Panics if any kept index is ≥ `i`, `i` is out of range, or `d` has the
/// wrong length.
pub fn mgs_step(
    s: &mut ColMajorMatrix,
    kept: &[usize],
    i: usize,
    d: Option<&[f64]>,
    tol: f64,
) -> bool {
    assert!(tol >= 0.0, "tolerance must be non-negative");
    if let Some(w) = d {
        assert_eq!(w.len(), s.rows(), "weight vector length mismatch");
    }
    parhde_trace::counter!("dortho.projections", kept.len() as u64);
    for &j in kept {
        let (cj, ci) = s.col_pair(j, i);
        let (num, den) = match d {
            Some(w) => (dot_weighted(cj, w, ci), dot_weighted(cj, w, cj)),
            None => (dot(cj, ci), dot(cj, cj)),
        };
        if den > 0.0 {
            axpy(-num / den, cj, ci);
        }
    }
    let norm = norm2(s.col(i));
    if norm <= tol {
        false
    } else {
        scale(1.0 / norm, s.col_mut(i));
        true
    }
}

/// In-place Classical Gram-Schmidt (BLAS-2 formulation, Table 7's "CGS").
///
/// For each column `i`, all coefficients against the kept prefix are
/// computed in **one fused matrix-vector pass** (`c = S_keptᵀ D s_i`) and
/// applied in a second (`s_i ← s_i − S_kept · ĉ`). Compared with MGS this
/// replaces `2k` small parallel kernels (and their barriers) per column
/// with 2 large ones, and reads `s_i` twice instead of `2k` times — the
/// fewer-bigger-kernels effect behind the paper's 2–3× Table 7 speedups.
/// Denominators `s_jᵀ D s_j` of kept columns are computed once and cached.
/// Same drop/normalize rules as [`mgs`].
///
/// # Panics
/// Panics if `d` has the wrong length or `tol` is negative.
pub fn cgs(s: &mut ColMajorMatrix, d: Option<&[f64]>, tol: f64) -> OrthoOutcome {
    use rayon::prelude::*;
    const CHUNK: usize = 1 << 13;

    assert!(tol >= 0.0, "tolerance must be non-negative");
    if let Some(w) = d {
        assert_eq!(w.len(), s.rows(), "weight vector length mismatch");
    }
    let _span = parhde_trace::span!("dortho.cgs");
    let cols = s.cols();
    let rows = s.rows();
    let mut kept: Vec<usize> = Vec::with_capacity(cols);
    let mut dens: Vec<f64> = Vec::with_capacity(cols);
    let mut dropped = Vec::new();
    let mut ciw = vec![0.0; rows];
    for i in 0..cols {
        // Cooperative cancellation point (once per column), as in `mgs`.
        if parhde_util::supervisor::should_stop() {
            dropped.extend(i..cols);
            break;
        }
        parhde_trace::counter!("dortho.projections", kept.len() as u64);
        if !kept.is_empty() {
            // D·s_i (or a plain copy), computed before the prefix borrow.
            match d {
                Some(w) => {
                    for ((out, &x), &wi) in ciw.iter_mut().zip(s.col(i)).zip(w) {
                        *out = x * wi;
                    }
                }
                None => ciw.copy_from_slice(s.col(i)),
            }
            let (prefix, ci) = s.prefix_and_col_mut(i);
            let k = kept.len();

            // Pass 1 (fused GEMV): num_j = s_jᵀ (D s_i) for all kept j.
            // Deterministic: fixed row chunks, partials summed in order.
            let partials: Vec<Vec<f64>> = (0..rows)
                .step_by(CHUNK)
                .collect::<Vec<_>>()
                .into_par_iter()
                .map(|lo| {
                    let hi = (lo + CHUNK).min(rows);
                    let mut local = vec![0.0; k];
                    for (slot, &j) in local.iter_mut().zip(&kept) {
                        let cj = &prefix[j * rows..j * rows + rows];
                        let mut acc = 0.0;
                        for r in lo..hi {
                            acc += cj[r] * ciw[r];
                        }
                        *slot = acc;
                    }
                    local
                })
                .collect();
            let mut coeffs = vec![0.0; k];
            for part in partials {
                for (c, p) in coeffs.iter_mut().zip(part) {
                    *c += p;
                }
            }
            for (c, &den) in coeffs.iter_mut().zip(&dens) {
                *c = if den > 0.0 { *c / den } else { 0.0 };
            }

            // Pass 2 (fused GEMV): s_i ← s_i − S_kept·c.
            ci.par_chunks_mut(CHUNK)
                .enumerate()
                .for_each(|(chunk_idx, ci_chunk)| {
                    let lo = chunk_idx * CHUNK;
                    for (&j, &c) in kept.iter().zip(&coeffs) {
                        if c == 0.0 {
                            continue;
                        }
                        let cj = &prefix[j * rows + lo..j * rows + lo + ci_chunk.len()];
                        for (x, &v) in ci_chunk.iter_mut().zip(cj) {
                            *x -= c * v;
                        }
                    }
                });
        }
        let norm = norm2(s.col(i));
        if norm <= tol {
            dropped.push(i);
        } else {
            scale(1.0 / norm, s.col_mut(i));
            let den = match d {
                Some(w) => dot_weighted(s.col(i), w, s.col(i)),
                None => 1.0, // unit 2-norm ⇒ sᵀs = 1
            };
            dens.push(den);
            kept.push(i);
        }
    }
    s.retain_columns(&kept);
    if parhde_trace::enabled() {
        parhde_trace::counter!("dortho.kept_columns", kept.len() as u64);
        parhde_trace::counter!("dortho.dropped_columns", dropped.len() as u64);
    }
    OrthoOutcome { kept, dropped }
}

/// Panel width for [`bcgs2`]: wide enough that the block projections are
/// genuine BLAS-3 (rank-`k` updates against an `n × PANEL` panel), small
/// enough that a panel of 20 000-row columns stays cache-resident.
const BCGS2_PANEL: usize = 8;

/// In-place **block** Classical Gram-Schmidt with reorthogonalization
/// (BCGS2) — the BLAS-3 member of the Table 7 family.
///
/// Columns are processed in panels of [`BCGS2_PANEL`]. Each panel is
/// projected against the whole kept prefix with **two** block passes (the
/// "twice is enough" reorthogonalization rule, which restores the
/// orthogonality that single-pass classical GS loses on ill-conditioned
/// input), then the panel's columns are orthogonalized among themselves
/// with the incremental [`mgs_step`], applying the usual drop/normalize
/// rules. Where CGS issues two fused GEMVs per *column*, BCGS2 issues two
/// GEMM-shaped passes per *panel* — `O(s/panel)` big kernels total, with
/// each kept-prefix column read once per panel instead of once per column.
///
/// Both block passes use the same deterministic fixed-chunk ordered
/// reduction as [`cgs`], so results are independent of thread count.
/// Same drop/normalize rules and outcome shape as [`mgs`]/[`cgs`].
///
/// # Panics
/// Panics if `d` has the wrong length or `tol` is negative.
pub fn bcgs2(s: &mut ColMajorMatrix, d: Option<&[f64]>, tol: f64) -> OrthoOutcome {
    assert!(tol >= 0.0, "tolerance must be non-negative");
    if let Some(w) = d {
        assert_eq!(w.len(), s.rows(), "weight vector length mismatch");
    }
    let _span = parhde_trace::span!("dortho.bcgs2");
    let cols = s.cols();
    let mut kept: Vec<usize> = Vec::with_capacity(cols);
    let mut dens: Vec<f64> = Vec::with_capacity(cols);
    let mut dropped = Vec::new();
    let mut p0 = 0;
    while p0 < cols {
        // Cooperative cancellation point (once per panel), as in `mgs`.
        if parhde_util::supervisor::should_stop() {
            dropped.extend(p0..cols);
            break;
        }
        let p1 = (p0 + BCGS2_PANEL).min(cols);
        parhde_trace::counter!("dortho.bcgs2.panels", 1);
        // One block-projection pass against the kept prefix, plus a second
        // (the "twice is enough" reorthogonalization) only for panels the
        // first pass nearly annihilated — selective reorthogonalization.
        // A single classical pass leaves an orthogonality error of order
        // ε/√ratio, where `ratio` is the D-weighted energy surviving the
        // projection; requiring ratio ≥ 1e-4 bounds that at ~100ε, far
        // below the 1e-3 drop tolerance, while distance-matrix panels
        // (which legitimately lose most of their energy to the constant
        // column but stay well separated) skip the second pass and its
        // flops. Near-duplicates of the kept span (ratio ≈ ε²) always
        // trigger it. The criterion depends only on the data, never on the
        // schedule, so results stay thread-count independent.
        if !kept.is_empty() {
            const REORTH_RATIO: f64 = 1e-4;
            let energy = |s: &ColMajorMatrix, i: usize| match d {
                Some(w) => dot_weighted(s.col(i), w, s.col(i)),
                None => dot(s.col(i), s.col(i)),
            };
            let before: Vec<f64> = (p0..p1).map(|i| energy(s, i)).collect();
            block_project(s, &kept, &dens, d, p0, p1);
            let lossy = (p0..p1)
                .zip(&before)
                .any(|(i, &b)| b > 0.0 && energy(s, i) < REORTH_RATIO * b);
            if lossy {
                parhde_trace::counter!("dortho.bcgs2.reorth_panels", 1);
                block_project(s, &kept, &dens, d, p0, p1);
            }
        }
        // Intra-panel: the panel is now orthogonal to the prefix, so the
        // incremental MGS step against the panel's own survivors finishes
        // the job and applies the drop/normalize rules.
        let mut panel_kept: Vec<usize> = Vec::new();
        for i in p0..p1 {
            if mgs_step(s, &panel_kept, i, d, tol) {
                panel_kept.push(i);
            } else {
                dropped.push(i);
            }
        }
        for &i in &panel_kept {
            let den = match d {
                Some(w) => dot_weighted(s.col(i), w, s.col(i)),
                None => 1.0, // unit 2-norm ⇒ sᵀs = 1
            };
            dens.push(den);
            kept.push(i);
        }
        p0 = p1;
    }
    s.retain_columns(&kept);
    if parhde_trace::enabled() {
        parhde_trace::counter!("dortho.kept_columns", kept.len() as u64);
        parhde_trace::counter!("dortho.dropped_columns", dropped.len() as u64);
    }
    OrthoOutcome { kept, dropped }
}

/// One BCGS2 block projection: `S[:, p0..p1] ← S[:, p0..p1] − Q·Ĉ` with
/// `Ĉ = diag(dens)⁻¹ · Qᵀ D S[:, p0..p1]` over the kept prefix `Q`.
/// Pass 1 is a `k×w` GEMM with the `cgs`-style deterministic ordered-chunk
/// reduction; pass 2 a rank-`k` panel update (elementwise, trivially
/// deterministic).
fn block_project(
    s: &mut ColMajorMatrix,
    kept: &[usize],
    dens: &[f64],
    d: Option<&[f64]>,
    p0: usize,
    p1: usize,
) {
    use rayon::prelude::*;
    const CHUNK: usize = 1 << 12;

    let rows = s.rows();
    let w = p1 - p0;
    let k = kept.len();
    parhde_trace::counter!("dortho.projections", (k * w) as u64);
    crate::backend::count(crate::backend::Family::Ortho, (k * w * rows) as u64);
    let be = crate::backend::active();
    let (prefix, panel) = s.prefix_and_panel_mut(p0, p1);
    // D·panel (or a plain copy) for the weighted inner products.
    let mut piw = vec![0.0; rows * w];
    match d {
        Some(wts) => {
            for (t, col) in piw.chunks_mut(rows).enumerate() {
                let src = &panel[t * rows..(t + 1) * rows];
                for ((out, &x), &wi) in col.iter_mut().zip(src).zip(wts) {
                    *out = x * wi;
                }
            }
        }
        None => piw.copy_from_slice(panel),
    }

    // Pass 1: coeffs[t·k + j] = q_jᵀ (D p_t), fixed chunks summed in order.
    // Within a chunk the q_j slice stays cache-resident across the panel's
    // `w` dot products, so the kept prefix streams from memory once per
    // chunk; the subslice/zip form keeps the inner loops vectorizable.
    let partials: Vec<Vec<f64>> = (0..rows)
        .step_by(CHUNK)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|lo| {
            let hi = (lo + CHUNK).min(rows);
            let mut local = vec![0.0; k * w];
            for (jj, &j) in kept.iter().enumerate() {
                let cj = &prefix[j * rows + lo..j * rows + hi];
                for t in 0..w {
                    let pt = &piw[t * rows + lo..t * rows + hi];
                    // Multi-lane backend dot (the scalar reference is the
                    // historical 4-accumulator loop; fixed chunks summed in
                    // order keep it schedule-independent either way).
                    local[t * k + jj] = be.ortho_dot(cj, pt);
                }
            }
            local
        })
        .collect();
    let mut coeffs = vec![0.0; k * w];
    for part in partials {
        for (c, p) in coeffs.iter_mut().zip(part) {
            *c += p;
        }
    }
    for t in 0..w {
        for (jj, &den) in dens.iter().enumerate() {
            let c = &mut coeffs[t * k + jj];
            *c = if den > 0.0 { *c / den } else { 0.0 };
        }
    }

    // Pass 2: rank-k update, one disjoint output column per task. The row
    // blocking keeps each output slice hot across the whole kept prefix
    // (per element: load once, fold k multiply-subtracts in ascending jj
    // order, store once — deterministic for any chunk size). Zero
    // coefficients are filtered here, not in the kernel, so both backends
    // fold the identical pair list.
    panel.par_chunks_mut(rows).enumerate().for_each(|(t, pcol)| {
        let (cs, starts): (Vec<f64>, Vec<usize>) = kept
            .iter()
            .enumerate()
            .filter(|&(jj, _)| coeffs[t * k + jj] != 0.0)
            .map(|(jj, &j)| (coeffs[t * k + jj], j * rows))
            .unzip();
        if cs.is_empty() {
            return;
        }
        let mut bases = vec![0usize; starts.len()];
        let mut lo = 0;
        while lo < rows {
            let hi = (lo + CHUNK).min(rows);
            for (b, &start) in bases.iter_mut().zip(&starts) {
                *b = start + lo;
            }
            be.rank_update_row(&mut pcol[lo..hi], &cs, prefix, &bases);
            lo = hi;
        }
    });
}

/// Guarded [`bcgs2`]; same contract as [`try_mgs`].
///
/// # Errors
/// [`LinalgError::NonFinite`] on bad data, [`LinalgError::InvalidArgument`]
/// on dimension/tolerance misuse. Never panics.
pub fn try_bcgs2(
    s: &mut ColMajorMatrix,
    d: Option<&[f64]>,
    tol: f64,
    phase: &'static str,
) -> Result<OrthoOutcome, LinalgError> {
    ortho_args_ok(s, d, tol)?;
    check_matrix_finite(s, phase)?;
    let out = bcgs2(s, d, tol);
    check_matrix_finite(s, phase)?;
    Ok(out)
}

/// Argument validation shared by the guarded orthogonalization wrappers.
fn ortho_args_ok(
    s: &ColMajorMatrix,
    d: Option<&[f64]>,
    tol: f64,
) -> Result<(), LinalgError> {
    if tol.is_nan() || tol < 0.0 {
        return Err(LinalgError::InvalidArgument(format!(
            "tolerance must be non-negative, got {tol}"
        )));
    }
    if let Some(w) = d {
        if w.len() != s.rows() {
            return Err(LinalgError::InvalidArgument(format!(
                "weight vector length {} != row count {}",
                w.len(),
                s.rows()
            )));
        }
        if let Some(row) = w.iter().position(|x| !x.is_finite()) {
            return Err(LinalgError::NonFinite { phase: "dortho weights", column: 0, row });
        }
    }
    Ok(())
}

/// Guarded [`mgs`]: validates arguments, rejects non-finite input **before**
/// the pass can smear a NaN across later columns, and checks the output.
/// The error names the `phase` label the caller is running under and the
/// first bad column.
///
/// # Errors
/// [`LinalgError::NonFinite`] on bad data, [`LinalgError::InvalidArgument`]
/// on dimension/tolerance misuse. Never panics.
pub fn try_mgs(
    s: &mut ColMajorMatrix,
    d: Option<&[f64]>,
    tol: f64,
    phase: &'static str,
) -> Result<OrthoOutcome, LinalgError> {
    ortho_args_ok(s, d, tol)?;
    check_matrix_finite(s, phase)?;
    let out = mgs(s, d, tol);
    check_matrix_finite(s, phase)?;
    Ok(out)
}

/// Guarded [`cgs`]; same contract as [`try_mgs`].
///
/// # Errors
/// [`LinalgError::NonFinite`] on bad data, [`LinalgError::InvalidArgument`]
/// on dimension/tolerance misuse. Never panics.
pub fn try_cgs(
    s: &mut ColMajorMatrix,
    d: Option<&[f64]>,
    tol: f64,
    phase: &'static str,
) -> Result<OrthoOutcome, LinalgError> {
    ortho_args_ok(s, d, tol)?;
    check_matrix_finite(s, phase)?;
    let out = cgs(s, d, tol);
    check_matrix_finite(s, phase)?;
    Ok(out)
}

/// Maximum absolute pairwise (optionally D-weighted) inner product between
/// distinct columns — the orthogonality residual used by tests and the
/// quality harness.
pub fn max_cross_product(s: &ColMajorMatrix, d: Option<&[f64]>) -> f64 {
    let mut worst: f64 = 0.0;
    for i in 0..s.cols() {
        for j in 0..i {
            let v = match d {
                Some(w) => dot_weighted(s.col(i), w, s.col(j)),
                None => dot(s.col(i), s.col(j)),
            };
            worst = worst.max(v.abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_util::Xoshiro256StarStar;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ColMajorMatrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        ColMajorMatrix::from_data(rows, cols, data)
    }

    #[test]
    fn mgs_produces_orthonormal_columns() {
        let mut m = random_matrix(500, 8, 1);
        let out = mgs(&mut m, None, DROP_TOLERANCE);
        assert_eq!(out.kept.len(), 8);
        assert!(out.dropped.is_empty());
        assert!(max_cross_product(&m, None) < 1e-10);
        for c in 0..m.cols() {
            assert!((norm2(m.col(c)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn cgs_produces_orthonormal_columns() {
        let mut m = random_matrix(500, 8, 2);
        let out = cgs(&mut m, None, DROP_TOLERANCE);
        assert_eq!(out.kept.len(), 8);
        assert!(max_cross_product(&m, None) < 1e-8);
    }

    #[test]
    fn mgs_drops_duplicate_column() {
        let base: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let mut m = ColMajorMatrix::from_columns(&[
            base.clone(),
            base.iter().map(|x| 2.0 * x).collect(), // linearly dependent
            (0..100).map(|i| (i * i) as f64).collect(),
        ]);
        let out = mgs(&mut m, None, DROP_TOLERANCE);
        assert_eq!(out.kept, vec![0, 2]);
        assert_eq!(out.dropped, vec![1]);
        assert_eq!(m.cols(), 2);
        assert!(max_cross_product(&m, None) < 1e-8);
    }

    #[test]
    fn cgs_drops_duplicate_column() {
        let base: Vec<f64> = (0..64).map(|i| (i as f64).sin()).collect();
        let mut m = ColMajorMatrix::from_columns(&[
            base.clone(),
            base.clone(),
        ]);
        let out = cgs(&mut m, None, DROP_TOLERANCE);
        assert_eq!(out.kept, vec![0]);
        assert_eq!(out.dropped, vec![1]);
    }

    #[test]
    fn d_orthogonalization_respects_weights() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        let d: Vec<f64> = (0..200).map(|_| 1.0 + rng.next_f64() * 9.0).collect();
        let mut m = random_matrix(200, 6, 3);
        mgs(&mut m, Some(&d), DROP_TOLERANCE);
        // Columns must be D-orthogonal, not merely orthogonal.
        assert!(max_cross_product(&m, Some(&d)) < 1e-9);
        // Euclidean-normalized per Algorithm 3 line 15.
        for c in 0..m.cols() {
            assert!((norm2(m.col(c)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn mgs_and_cgs_agree_on_well_conditioned_input() {
        let m0 = random_matrix(300, 6, 4);
        let d: Vec<f64> = (0..300).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut a = m0.clone();
        let mut b = m0.clone();
        let oa = mgs(&mut a, Some(&d), DROP_TOLERANCE);
        let ob = cgs(&mut b, Some(&d), DROP_TOLERANCE);
        assert_eq!(oa.kept, ob.kept);
        for i in 0..a.data().len() {
            assert!(
                (a.data()[i] - b.data()[i]).abs() < 1e-6,
                "MGS/CGS divergence at {i}"
            );
        }
    }

    #[test]
    fn first_column_is_only_normalized() {
        let mut m = ColMajorMatrix::from_columns(&[vec![3.0, 4.0]]);
        mgs(&mut m, None, DROP_TOLERANCE);
        assert!((m.get(0, 0) - 0.6).abs() < 1e-12);
        assert!((m.get(1, 0) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn try_variants_reject_nan_with_position() {
        let mut m = random_matrix(50, 4, 11);
        m.set(7, 2, f64::NAN);
        let backup = m.clone();
        let err = try_mgs(&mut m, None, DROP_TOLERANCE, "dortho").unwrap_err();
        assert_eq!(
            err,
            crate::error::LinalgError::NonFinite { phase: "dortho", column: 2, row: 7 }
        );
        let mut m = backup;
        let err = try_cgs(&mut m, None, DROP_TOLERANCE, "dortho").unwrap_err();
        assert!(matches!(
            err,
            crate::error::LinalgError::NonFinite { column: 2, row: 7, .. }
        ));
    }

    #[test]
    fn try_variants_reject_bad_arguments_without_panicking() {
        let mut m = random_matrix(10, 2, 12);
        assert!(try_mgs(&mut m, None, -1.0, "dortho").is_err());
        assert!(try_mgs(&mut m, Some(&[1.0; 3]), 0.0, "dortho").is_err());
        assert!(try_cgs(&mut m, Some(&[f64::NAN; 10]), 0.0, "dortho").is_err());
        // Well-formed input still goes through and matches the raw kernel.
        let mut a = random_matrix(40, 3, 13);
        let mut b = a.clone();
        let oa = try_mgs(&mut a, None, DROP_TOLERANCE, "dortho").unwrap();
        let ob = mgs(&mut b, None, DROP_TOLERANCE);
        assert_eq!(oa, ob);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn bcgs2_produces_orthonormal_columns() {
        // 20 columns span three panels (8 + 8 + 4).
        let mut m = random_matrix(500, 20, 15);
        let out = bcgs2(&mut m, None, DROP_TOLERANCE);
        assert_eq!(out.kept.len(), 20);
        assert!(out.dropped.is_empty());
        assert!(max_cross_product(&m, None) < 1e-10);
        for c in 0..m.cols() {
            assert!((norm2(m.col(c)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn bcgs2_matches_mgs_outcome_on_well_conditioned_input() {
        let m0 = random_matrix(300, 13, 16);
        let d: Vec<f64> = (0..300).map(|i| 1.0 + (i % 7) as f64).collect();
        let mut a = m0.clone();
        let mut b = m0.clone();
        let oa = mgs(&mut a, Some(&d), DROP_TOLERANCE);
        let ob = bcgs2(&mut b, Some(&d), DROP_TOLERANCE);
        assert_eq!(oa, ob);
        for i in 0..a.data().len() {
            assert!(
                (a.data()[i] - b.data()[i]).abs() < 1e-6,
                "MGS/BCGS2 divergence at {i}"
            );
        }
    }

    #[test]
    fn bcgs2_drops_duplicates_within_and_across_panels() {
        let base: Vec<f64> = (0..100).map(|i| (i as f64).sin()).collect();
        let mut columns: Vec<Vec<f64>> = (0..10)
            .map(|c| (0..100).map(|i| ((i * (c + 2)) as f64).cos()).collect())
            .collect();
        columns[0] = base.clone();
        columns[3] = base.clone(); // duplicate inside panel 0
        columns[9] = base.iter().map(|x| -3.0 * x).collect(); // dependent, panel 1
        let mut m = ColMajorMatrix::from_columns(&columns);
        let out = bcgs2(&mut m, None, DROP_TOLERANCE);
        assert_eq!(out.dropped, vec![3, 9]);
        assert_eq!(out.kept.len(), 8);
        assert!(max_cross_product(&m, None) < 1e-8);
    }

    #[test]
    fn bcgs2_reorthogonalization_survives_poison_conditioning() {
        // Nearly dependent columns: base + tiny independent perturbations.
        // Single-pass classical GS visibly loses orthogonality here; the
        // second BCGS2 pass restores it.
        let mut rng = Xoshiro256StarStar::seed_from_u64(77);
        let base: Vec<f64> = (0..400).map(|_| rng.next_f64() - 0.5).collect();
        let columns: Vec<Vec<f64>> = (0..12)
            .map(|_| {
                base.iter()
                    .map(|&x| x + 1e-9 * (rng.next_f64() - 0.5))
                    .collect()
            })
            .collect();
        let mut m = ColMajorMatrix::from_columns(&columns);
        let out = bcgs2(&mut m, None, DROP_TOLERANCE);
        // Whatever survives must be genuinely orthonormal.
        assert!(!out.kept.is_empty());
        assert!(max_cross_product(&m, None) < 1e-8, "{}", max_cross_product(&m, None));
        // MGS keeps a comparable subset (within one column either way).
        let mut m2 = ColMajorMatrix::from_columns(&columns);
        let om = mgs(&mut m2, None, DROP_TOLERANCE);
        assert!(out.kept.len().abs_diff(om.kept.len()) <= 1);
    }

    #[test]
    fn bcgs2_respects_d_weights() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(19);
        let d: Vec<f64> = (0..200).map(|_| 1.0 + rng.next_f64() * 9.0).collect();
        let mut m = random_matrix(200, 11, 18);
        bcgs2(&mut m, Some(&d), DROP_TOLERANCE);
        assert!(max_cross_product(&m, Some(&d)) < 1e-9);
        for c in 0..m.cols() {
            assert!((norm2(m.col(c)) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn try_bcgs2_guards_like_the_others() {
        let mut m = random_matrix(50, 4, 20);
        m.set(7, 2, f64::NAN);
        let err = try_bcgs2(&mut m, None, DROP_TOLERANCE, "dortho").unwrap_err();
        assert!(matches!(
            err,
            crate::error::LinalgError::NonFinite { column: 2, row: 7, .. }
        ));
        let mut a = random_matrix(40, 3, 21);
        let mut b = a.clone();
        let oa = try_bcgs2(&mut a, None, DROP_TOLERANCE, "dortho").unwrap();
        let ob = bcgs2(&mut b, None, DROP_TOLERANCE);
        assert_eq!(oa, ob);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn zero_column_is_dropped() {
        let mut m = ColMajorMatrix::from_columns(&[vec![1.0, 0.0], vec![0.0, 0.0]]);
        let out = mgs(&mut m, None, DROP_TOLERANCE);
        assert_eq!(out.dropped, vec![1]);
    }

    #[test]
    fn span_is_preserved() {
        // Orthogonalized columns must span the same space: project original
        // columns back; residual should vanish.
        let m0 = random_matrix(60, 4, 8);
        let mut q = m0.clone();
        mgs(&mut q, None, DROP_TOLERANCE);
        for c in 0..4 {
            let orig = m0.col(c);
            let mut residual = orig.to_vec();
            for k in 0..q.cols() {
                let coeff = dot(q.col(k), orig);
                axpy(-coeff, q.col(k), &mut residual);
            }
            assert!(
                norm2(&residual) < 1e-8,
                "column {c} left the span (residual {})",
                norm2(&residual)
            );
        }
    }
}
