//! Sparse matrix × dense multi-vector products.
//!
//! The dominant TripleProd step (§3, §4.4) is `P = L·S`, viewed as `s`
//! SpMVs. The paper never materializes the Laplacian: `L = D − A`, so
//! `(L·S)[v,·] = deg(v)·S[v,·] − Σ_{u ∈ Adj(v)} S[u,·]`, computed straight
//! off the CSR adjacency and a dense degrees array (§4.4: "MKL requires
//! allocating a sparse Laplacian matrix ... which our implementation avoids
//! by using a dense degrees array to calculate the diagonal entry"). An
//! explicit-Laplacian variant is provided as the ablation baseline, and the
//! normalized-adjacency product serves the eigensolver (Figure 1 bottom).
//!
//! The staged kernels read `S` through the same packed row-major copy the
//! fused TripleProd uses (`fused::pack_row_major` — a value-exact relayout),
//! so every neighbor row is `s` contiguous doubles and the inner loops
//! dispatch through [`crate::backend`]'s bit-exact row ops. The ablation
//! variants keep their original column-major loops: they exist to measure
//! schedules, not to be fast.

use crate::dense::ColMajorMatrix;
use crate::error::LinalgError;
use parhde_graph::store::{GraphStore, NeighborScratch};
use parhde_graph::{CsrGraph, WeightedCsr};
use rayon::prelude::*;

/// Row-block grain for parallel SpMM sweeps.
const ROW_CHUNK: usize = 512;

/// Computes `P = L·S` with the implicit Laplacian (no matrix materialized).
///
/// `degrees` must be the (weighted) degree vector; for unweighted graphs
/// pass [`CsrGraph::degree_vector`]. `S` is column-major `n × s`; the result
/// has the same shape.
///
/// Parallel over row blocks; each row's `s` accumulators live in a small
/// stack-local buffer, giving the `O(s)` arithmetic intensity the paper
/// notes for the `m/n ≫ s` regime.
///
/// Generic over [`GraphStore`]: each row block decodes adjacency through a
/// reused per-block scratch, so compressed and mmap-backed graphs stream
/// through the product without materializing plain CSR.
///
/// # Panics
/// Panics if dimensions disagree.
pub fn laplacian_spmm<G: GraphStore>(
    g: &G,
    degrees: &[f64],
    s: &ColMajorMatrix,
) -> ColMajorMatrix {
    let n = g.num_vertices();
    assert_eq!(s.rows(), n, "S row count must equal n");
    assert_eq!(degrees.len(), n, "degree vector length must equal n");
    let k = s.cols();
    let _span = parhde_trace::span!("spmm.laplacian");
    parhde_trace::counter!("spmm.flops", (2 * (g.num_arcs() + n) * k) as u64);
    crate::backend::count(crate::backend::Family::Spmm, ((g.num_arcs() + n) * k) as u64);
    let mut p = ColMajorMatrix::zeros(n, k);
    let pack = crate::fused::pack_row_major(s);
    let be = crate::backend::active();

    // SAFETY-free parallel writes: split the output into row blocks by
    // temporarily viewing P as per-column chunks is awkward column-major;
    // instead compute into a row-block-local buffer and scatter.
    let blocks: Vec<(usize, Vec<f64>)> = (0..n)
        .step_by(ROW_CHUNK)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|lo| {
            let hi = (lo + ROW_CHUNK).min(n);
            let mut block = vec![0.0; (hi - lo) * k];
            // Cooperative cancellation point (once per row block): remaining
            // blocks stay zero; the caller discards the poisoned product at
            // its next phase boundary.
            if parhde_util::supervisor::should_stop() {
                return (lo, block);
            }
            let mut acc = vec![0.0; k];
            let mut scratch = NeighborScratch::new();
            for v in lo..hi {
                be.laplacian_row(
                    &mut acc,
                    degrees[v],
                    &pack[v * k..(v + 1) * k],
                    &pack,
                    g.neighbors_in(v as u32, &mut scratch),
                );
                for c in 0..k {
                    block[c * (hi - lo) + (v - lo)] = acc[c];
                }
            }
            (lo, block)
        })
        .collect();

    let pdata = p.data_mut();
    for (lo, block) in blocks {
        let rows = block.len() / k;
        for c in 0..k {
            pdata[c * n + lo..c * n + lo + rows]
                .copy_from_slice(&block[c * rows..(c + 1) * rows]);
        }
    }
    p
}

/// Guarded [`laplacian_spmm`]: validates dimensions, checks the degree
/// vector and input matrix for non-finite values, and scans the product —
/// an overflow in the accumulation is reported as phase `"spmm"` with the
/// first bad column instead of flowing into the eigensolve.
///
/// # Errors
/// [`LinalgError::InvalidArgument`] on shape mismatch,
/// [`LinalgError::NonFinite`] on poison data. Never panics.
pub fn try_laplacian_spmm<G: GraphStore>(
    g: &G,
    degrees: &[f64],
    s: &ColMajorMatrix,
) -> Result<ColMajorMatrix, LinalgError> {
    let n = g.num_vertices();
    if s.rows() != n {
        return Err(LinalgError::InvalidArgument(format!(
            "S row count {} != n = {n}",
            s.rows()
        )));
    }
    if degrees.len() != n {
        return Err(LinalgError::InvalidArgument(format!(
            "degree vector length {} != n = {n}",
            degrees.len()
        )));
    }
    crate::error::check_slice_finite(degrees, "spmm degrees", 0)?;
    crate::error::check_matrix_finite(s, "spmm input")?;
    let p = laplacian_spmm(g, degrees, s);
    crate::error::check_matrix_finite(&p, "spmm")?;
    Ok(p)
}

/// Weighted-graph variant: `L = D − A` with `A(u,v) = w(u,v)` and `D` the
/// weighted degrees (§3.3 extension).
///
/// # Panics
/// Panics if dimensions disagree.
pub fn laplacian_spmm_weighted(
    g: &WeightedCsr,
    degrees: &[f64],
    s: &ColMajorMatrix,
) -> ColMajorMatrix {
    let n = g.num_vertices();
    assert_eq!(s.rows(), n, "S row count must equal n");
    assert_eq!(degrees.len(), n, "degree vector length must equal n");
    let k = s.cols();
    let _span = parhde_trace::span!("spmm.laplacian_weighted");
    parhde_trace::counter!("spmm.flops", (2 * (g.graph().num_arcs() + n) * k) as u64);
    crate::backend::count(
        crate::backend::Family::Spmm,
        ((g.graph().num_arcs() + n) * k) as u64,
    );
    let mut p = ColMajorMatrix::zeros(n, k);
    let pack = crate::fused::pack_row_major(s);
    let be = crate::backend::active();
    let blocks: Vec<(usize, Vec<f64>)> = (0..n)
        .step_by(ROW_CHUNK)
        .collect::<Vec<_>>()
        .into_par_iter()
        .map(|lo| {
            let hi = (lo + ROW_CHUNK).min(n);
            let mut block = vec![0.0; (hi - lo) * k];
            // Cooperative cancellation point, as in `laplacian_spmm`.
            if parhde_util::supervisor::should_stop() {
                return (lo, block);
            }
            let mut acc = vec![0.0; k];
            for v in lo..hi {
                be.row_scale(&mut acc, degrees[v], &pack[v * k..(v + 1) * k]);
                for (u, w) in g.neighbors(v as u32) {
                    let ui = u as usize;
                    be.row_sub_scaled(&mut acc, w, &pack[ui * k..(ui + 1) * k]);
                }
                for c in 0..k {
                    block[c * (hi - lo) + (v - lo)] = acc[c];
                }
            }
            (lo, block)
        })
        .collect();
    let pdata = p.data_mut();
    for (lo, block) in blocks {
        let rows = block.len() / k;
        for c in 0..k {
            pdata[c * n + lo..c * n + lo + rows]
                .copy_from_slice(&block[c * rows..(c + 1) * rows]);
        }
    }
    p
}

/// An explicitly materialized CSR Laplacian — the ablation baseline that
/// mirrors MKL's `mkl_sparse_d_mm` requirement (§4.4) and the prior
/// implementation's Eigen-built Laplacian, whose allocation the paper calls
/// out as the prior code's memory bottleneck.
#[derive(Clone, Debug)]
pub struct ExplicitLaplacian {
    offsets: Vec<usize>,
    cols: Vec<u32>,
    vals: Vec<f64>,
    n: usize,
}

impl ExplicitLaplacian {
    /// Materializes `L = D − A` in CSR form (diagonal entry first in each
    /// row for cache friendliness; order within a row is irrelevant).
    pub fn build(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut cols = Vec::with_capacity(g.num_arcs() + n);
        let mut vals = Vec::with_capacity(g.num_arcs() + n);
        for v in 0..n as u32 {
            cols.push(v);
            vals.push(g.degree(v) as f64);
            for &u in g.neighbors(v) {
                cols.push(u);
                vals.push(-1.0);
            }
            offsets.push(cols.len());
        }
        Self { offsets, cols, vals, n }
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// `P = L·S` through the explicit values (generic CSR SpMM).
    ///
    /// # Panics
    /// Panics if `S` has the wrong row count.
    pub fn spmm(&self, s: &ColMajorMatrix) -> ColMajorMatrix {
        let n = self.n;
        assert_eq!(s.rows(), n, "S row count must equal n");
        let k = s.cols();
        let mut p = ColMajorMatrix::zeros(n, k);
        let sdata = s.data();
        let blocks: Vec<(usize, Vec<f64>)> = (0..n)
            .step_by(ROW_CHUNK)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|lo| {
                let hi = (lo + ROW_CHUNK).min(n);
                let mut block = vec![0.0; (hi - lo) * k];
                let mut acc = vec![0.0; k];
                for v in lo..hi {
                    acc.fill(0.0);
                    for idx in self.offsets[v]..self.offsets[v + 1] {
                        let u = self.cols[idx] as usize;
                        let w = self.vals[idx];
                        for (c, a) in acc.iter_mut().enumerate() {
                            *a += w * sdata[c * n + u];
                        }
                    }
                    for c in 0..k {
                        block[c * (hi - lo) + (v - lo)] = acc[c];
                    }
                }
                (lo, block)
            })
            .collect();
        let pdata = p.data_mut();
        for (lo, block) in blocks {
            let rows = block.len() / k;
            for c in 0..k {
                pdata[c * n + lo..c * n + lo + rows]
                    .copy_from_slice(&block[c * rows..(c + 1) * rows]);
            }
        }
        p
    }
}

/// Ablation variant of [`laplacian_spmm`]: computes `P = L·S` as `s`
/// *separate* SpMVs, one column at a time. Each pass re-streams the entire
/// graph, so arithmetic intensity drops from `O(s)` to `O(1)` (Table 1's
/// intensity column) — the fused kernel should win by the memory-traffic
/// ratio whenever the graph exceeds cache. Exposed for the criterion
/// ablation bench.
///
/// # Panics
/// Panics if dimensions disagree.
pub fn laplacian_spmm_by_columns(
    g: &CsrGraph,
    degrees: &[f64],
    s: &ColMajorMatrix,
) -> ColMajorMatrix {
    let n = g.num_vertices();
    assert_eq!(s.rows(), n, "S row count must equal n");
    assert_eq!(degrees.len(), n, "degree vector length must equal n");
    let mut p = ColMajorMatrix::zeros(n, s.cols());
    for c in 0..s.cols() {
        let x = s.col(c);
        let col: Vec<f64> = (0..n)
            .into_par_iter()
            .map(|v| {
                let mut acc = degrees[v] * x[v];
                for &u in g.neighbors(v as u32) {
                    acc -= x[u as usize];
                }
                acc
            })
            .collect();
        p.col_mut(c).copy_from_slice(&col);
    }
    p
}

/// Single SpMV `y = A·x` over the plain adjacency (building block for power
/// iteration and quality metrics).
///
/// # Panics
/// Panics if `x` has the wrong length.
pub fn adjacency_spmv(g: &CsrGraph, x: &[f64]) -> Vec<f64> {
    let n = g.num_vertices();
    assert_eq!(x.len(), n, "x length must equal n");
    (0..n)
        .into_par_iter()
        .map(|v| {
            let mut acc = 0.0;
            for &u in g.neighbors(v as u32) {
                acc += x[u as usize];
            }
            acc
        })
        .collect()
}

/// SpMV with the symmetric normalized adjacency `N = D^{-1/2} A D^{-1/2}`:
/// `y_v = Σ_u x_u / √(d_v d_u)`. `inv_sqrt_deg[v]` must be `1/√deg(v)`
/// (0 for isolated vertices). The dominant eigenvectors of `N` map to the
/// degree-normalized eigenvectors of the walk matrix `D^{-1}A` via
/// `u = D^{-1/2} w` — the Figure 1 "exact" baseline.
///
/// # Panics
/// Panics on length mismatches.
pub fn normalized_adjacency_spmv(g: &CsrGraph, inv_sqrt_deg: &[f64], x: &[f64]) -> Vec<f64> {
    let n = g.num_vertices();
    assert_eq!(x.len(), n, "x length must equal n");
    assert_eq!(inv_sqrt_deg.len(), n, "scaling vector length must equal n");
    (0..n)
        .into_par_iter()
        .map(|v| {
            let mut acc = 0.0;
            for &u in g.neighbors(v as u32) {
                acc += x[u as usize] * inv_sqrt_deg[u as usize];
            }
            acc * inv_sqrt_deg[v]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::builder::build_weighted_from_edges;
    use parhde_graph::gen::{chain, complete, grid2d, kron};
    use parhde_util::Xoshiro256StarStar;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ColMajorMatrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        ColMajorMatrix::from_data(rows, cols, data)
    }

    /// Dense reference: L·S with L assembled entry by entry.
    fn dense_laplacian_spmm(g: &CsrGraph, s: &ColMajorMatrix) -> ColMajorMatrix {
        let n = g.num_vertices();
        let mut out = ColMajorMatrix::zeros(n, s.cols());
        for c in 0..s.cols() {
            for v in 0..n {
                let mut acc = g.degree(v as u32) as f64 * s.get(v, c);
                for &u in g.neighbors(v as u32) {
                    acc -= s.get(u as usize, c);
                }
                out.set(v, c, acc);
            }
        }
        out
    }

    use parhde_graph::CsrGraph;

    #[test]
    fn implicit_matches_dense_reference() {
        for g in [chain(37), grid2d(8, 9), complete(15), kron(8, 6, 1)] {
            let s = random_matrix(g.num_vertices(), 5, 42);
            let fast = laplacian_spmm(&g, &g.degree_vector(), &s);
            let slow = dense_laplacian_spmm(&g, &s);
            for i in 0..fast.data().len() {
                assert!(
                    (fast.data()[i] - slow.data()[i]).abs() < 1e-9,
                    "mismatch at flat index {i}"
                );
            }
        }
    }

    #[test]
    fn implicit_matches_explicit() {
        let g = kron(9, 8, 2);
        let s = random_matrix(g.num_vertices(), 7, 3);
        let imp = laplacian_spmm(&g, &g.degree_vector(), &s);
        let exp = ExplicitLaplacian::build(&g).spmm(&s);
        for i in 0..imp.data().len() {
            assert!((imp.data()[i] - exp.data()[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn by_columns_matches_fused() {
        let g = kron(9, 6, 5);
        let s = random_matrix(g.num_vertices(), 6, 8);
        let deg = g.degree_vector();
        let fused = laplacian_spmm(&g, &deg, &s);
        let cols = laplacian_spmm_by_columns(&g, &deg, &s);
        for i in 0..fused.data().len() {
            assert!((fused.data()[i] - cols.data()[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_laplacian_nnz() {
        let g = chain(5);
        let l = ExplicitLaplacian::build(&g);
        assert_eq!(l.nnz(), g.num_arcs() + 5);
    }

    #[test]
    fn laplacian_annihilates_constant_vector() {
        // L·1 = 0 — the defining property (1 is the 0-eigenvector).
        let g = grid2d(6, 6);
        let ones = ColMajorMatrix::from_data(36, 1, vec![1.0; 36]);
        let p = laplacian_spmm(&g, &g.degree_vector(), &ones);
        assert!(p.frobenius_norm() < 1e-12);
    }

    #[test]
    fn laplacian_quadratic_form_is_edge_sum() {
        // yᵀLy = Σ_{(i,j)∈E} (y_i − y_j)² (§2.1).
        let g = chain(4);
        let y = vec![1.0, 3.0, 0.0, 2.0];
        let ym = ColMajorMatrix::from_data(4, 1, y.clone());
        let ly = laplacian_spmm(&g, &g.degree_vector(), &ym);
        let quad: f64 = y.iter().zip(ly.col(0)).map(|(a, b)| a * b).sum();
        let expected: f64 = g
            .edges()
            .map(|(u, v)| (y[u as usize] - y[v as usize]).powi(2))
            .sum();
        assert!((quad - expected).abs() < 1e-12);
    }

    #[test]
    fn weighted_laplacian_with_unit_weights_matches_unweighted() {
        let g = grid2d(5, 7);
        let wg = parhde_graph::WeightedCsr::unit_weights(g.clone());
        let s = random_matrix(35, 4, 9);
        let a = laplacian_spmm(&g, &g.degree_vector(), &s);
        let b = laplacian_spmm_weighted(&wg, &wg.weighted_degree_vector(), &s);
        for i in 0..a.data().len() {
            assert!((a.data()[i] - b.data()[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn weighted_laplacian_annihilates_constant() {
        let base = grid2d(4, 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(31);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, rng.next_f64() + 0.5))
            .collect();
        let wg = build_weighted_from_edges(16, edges);
        let ones = ColMajorMatrix::from_data(16, 1, vec![1.0; 16]);
        let p = laplacian_spmm_weighted(&wg, &wg.weighted_degree_vector(), &ones);
        assert!(p.frobenius_norm() < 1e-12);
    }

    #[test]
    fn adjacency_spmv_on_star() {
        use parhde_graph::gen::star;
        let g = star(4);
        let y = adjacency_spmv(&g, &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(y, vec![9.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn normalized_spmv_preserves_principal_eigenvector() {
        // N · (D^{1/2} 1) = D^{1/2} 1 for any graph (eigenvalue 1).
        let g = grid2d(5, 5);
        let n = g.num_vertices();
        let deg = g.degree_vector();
        let inv_sqrt: Vec<f64> = deg.iter().map(|d| 1.0 / d.sqrt()).collect();
        let principal: Vec<f64> = deg.iter().map(|d| d.sqrt()).collect();
        let y = normalized_adjacency_spmv(&g, &inv_sqrt, &principal);
        for (a, b) in y.iter().zip(&principal) {
            assert!((a - b).abs() < 1e-12);
        }
        let _ = n;
    }
}
