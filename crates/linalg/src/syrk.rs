//! SYRK-style symmetric rank-k reduction `Z = Aᵀ·A`.
//!
//! The pivot-MDS and eigen-projection pipelines both reduce a tall-skinny
//! centered matrix against *itself* (`at_b(c, c)`), where the result is
//! symmetric: entry `(i, j)` and entry `(j, i)` multiply the same scalar
//! pairs in the same ascending-row order, so by commutativity of each
//! product the two summation chains are *bitwise* identical. The SYRK
//! schedule therefore computes only the register tiles that touch the
//! lower triangle (~2× fewer FLOPs) and mirrors — producing output
//! bit-identical to [`crate::gemm::at_b`]`(a, a)`, which keeps the
//! `--linalg-mode fused|staged` bit-reproducibility contract intact.
//!
//! The reduction walks the same `ROW_CHUNK`-aligned fixed-split
//! `rayon::join` tree as `at_b`, so the combination order is independent
//! of thread count and scheduling.

use crate::dense::ColMajorMatrix;
use crate::gemm::{accumulate_block, ROW_CHUNK};

/// Computes `Z = Aᵀ·A` for column-major `A (n×p)` by lower-triangle
/// accumulation plus mirroring; bitwise identical to
/// [`crate::gemm::at_b`]`(a, a)` at any thread count.
pub fn at_a(a: &ColMajorMatrix) -> ColMajorMatrix {
    let n = a.rows();
    let p = a.cols();
    let adata = a.data();

    let _span = parhde_trace::span!("syrk.at_a");
    // Only the lower triangle is accumulated: p(p+1)/2 length-n dots.
    parhde_trace::counter!("syrk.flops", (n * p * (p + 1)) as u64);
    let mut zdata = partial_at_a(adata, n, p, 0, n);
    // Mirror the lower triangle into the strict upper. Diagonal-crossing
    // register tiles computed a few strict-upper entries already; the
    // mirror overwrites them with the (bitwise equal) lower value, so the
    // result is uniform regardless of tile geometry.
    for j in 1..p {
        for i in 0..j {
            zdata[j * p + i] = zdata[i * p + j];
        }
    }
    ColMajorMatrix::from_data(p, p, zdata)
}

/// Lower-triangle partial product of rows `lo..hi`, on the same fixed-split
/// tree as `gemm::partial_at_b` (see there for the reproducibility
/// argument).
fn partial_at_a(adata: &[f64], n: usize, p: usize, lo: usize, hi: usize) -> Vec<f64> {
    if hi - lo <= ROW_CHUNK {
        // Cooperative cancellation point (once per row block), as in
        // `at_b`: a tripped budget zeroes the remaining partials.
        if parhde_util::supervisor::should_stop() {
            return vec![0.0; p * p];
        }
        let mut z = vec![0.0; p * p];
        accumulate_block(&mut z, adata, n, p, p, adata, lo, 1, n, lo, hi, true);
        return z;
    }
    let chunks = (hi - lo).div_ceil(ROW_CHUNK);
    let mid = lo + chunks.div_ceil(2) * ROW_CHUNK;
    let (mut left, right) = rayon::join(
        || partial_at_a(adata, n, p, lo, mid),
        || partial_at_a(adata, n, p, mid, hi),
    );
    for (l, r) in left.iter_mut().zip(right) {
        *l += r;
    }
    left
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gemm::at_b;
    use parhde_util::Xoshiro256StarStar;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> ColMajorMatrix {
        let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
        let data = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        ColMajorMatrix::from_data(rows, cols, data)
    }

    #[test]
    fn at_a_is_exactly_symmetric() {
        let a = random_matrix(777, 9, 21);
        let z = at_a(&a);
        for i in 0..9 {
            for j in 0..9 {
                assert_eq!(z.get(i, j).to_bits(), z.get(j, i).to_bits());
            }
        }
    }

    #[test]
    fn at_a_bitwise_matches_at_b_self_product() {
        // Column counts around the 4×4 tile edge and row counts straddling
        // the ROW_CHUNK grain (exact multiple, one-off tail, odd chunks).
        for &cols in &[1usize, 3, 4, 5, 8, 11] {
            for &n in &[300usize, 2048, 2049, 6161] {
                let a = random_matrix(n, cols, (n + cols) as u64);
                let fast = at_a(&a);
                let full = at_b(&a, &a);
                for (x, y) in fast.data().iter().zip(full.data()) {
                    assert_eq!(x.to_bits(), y.to_bits(), "n = {n}, cols = {cols}");
                }
            }
        }
    }

    #[test]
    fn at_a_empty_rows_edgecase() {
        let a = ColMajorMatrix::zeros(0, 4);
        let z = at_a(&a);
        assert_eq!(z.rows(), 4);
        assert_eq!(z.cols(), 4);
        assert!(z.data().iter().all(|&x| x == 0.0));
    }
}
