//! Load generator + chaos driver for `parhde-serve` (DESIGN.md §13.6).
//!
//! ```text
//! parhde-loadgen --addr HOST:PORT [--requests N] [--concurrency C]
//!                [--graph SPEC]... [--distinct K] [--deadline-ms MS]
//!                [--dim P] [--timeout-ms MS]
//!                [--chaos-disconnect PCT] [--chaos-poison PCT]
//!                [--out FILE]
//! ```
//!
//! Fires `N` layout requests at the daemon from `C` client threads and
//! reports p50/p90/p99 latency (overall and split by cache disposition),
//! throughput, and a status-code histogram as JSON. Chaos knobs replace a
//! deterministic percentage of requests with hostile behavior:
//!
//! * `--chaos-disconnect PCT` — send the request, then close the socket
//!   without reading the response (exercises the disconnect watchdog);
//! * `--chaos-poison PCT` — send malformed graph bodies from
//!   `parhde_graph::gen::poison` (truncated Matrix Market files, NaN
//!   weights, garbage tails) that must all come back as typed 400s.
//!
//! Exit 0 when every non-chaos request got *some* well-formed response
//! (shedding 429/503 counts as well-formed — that is the daemon working);
//! exit 1 on transport errors or unparseable responses.

use parhde_graph::gen::poison;
use parhde_serve::client::Client;
use parhde_serve::proto::{Op, Request};
use std::process::exit;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Opts {
    addr: String,
    requests: usize,
    concurrency: usize,
    graphs: Vec<String>,
    distinct: usize,
    deadline_ms: Option<u64>,
    dim: u64,
    timeout_ms: u64,
    chaos_disconnect_pct: u64,
    chaos_poison_pct: u64,
    out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: parhde-loadgen --addr HOST:PORT [--requests N] [--concurrency C]\n\
         \x20                     [--graph SPEC]... [--distinct K] [--deadline-ms MS]\n\
         \x20                     [--dim P] [--timeout-ms MS]\n\
         \x20                     [--chaos-disconnect PCT] [--chaos-poison PCT]\n\
         \x20                     [--out FILE]"
    );
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: String::new(),
        requests: 50,
        concurrency: 4,
        graphs: Vec::new(),
        distinct: 0,
        deadline_ms: None,
        dim: 2,
        timeout_ms: 30_000,
        chaos_disconnect_pct: 0,
        chaos_poison_pct: 0,
        out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        macro_rules! value {
            () => {{
                i += 1;
                match args.get(i) {
                    Some(v) => v.clone(),
                    None => {
                        eprintln!("parhde-loadgen: missing value for {}", args[i - 1]);
                        exit(2);
                    }
                }
            }};
        }
        macro_rules! parsed {
            () => {
                match value!().parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("parhde-loadgen: bad value for {}", args[i - 1]);
                        exit(2);
                    }
                }
            };
        }
        match args[i].as_str() {
            "--addr" => opts.addr = value!(),
            "--requests" => opts.requests = parsed!(),
            "--concurrency" => opts.concurrency = parsed!(),
            "--graph" => opts.graphs.push(value!()),
            "--distinct" => opts.distinct = parsed!(),
            "--deadline-ms" => opts.deadline_ms = Some(parsed!()),
            "--dim" => opts.dim = parsed!(),
            "--timeout-ms" => opts.timeout_ms = parsed!(),
            "--chaos-disconnect" => opts.chaos_disconnect_pct = parsed!(),
            "--chaos-poison" => opts.chaos_poison_pct = parsed!(),
            "--out" => opts.out = Some(value!()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("parhde-loadgen: unknown option {other}");
                usage();
            }
        }
        i += 1;
    }
    if opts.addr.is_empty() {
        eprintln!("parhde-loadgen: --addr is required");
        usage();
    }
    if opts.graphs.is_empty() {
        // Distinct grid sizes so the first pass is cold and later passes
        // hit the cache — the hit-vs-cold split needs both populations.
        let k = opts.distinct.clamp(1, 64);
        for j in 0..k {
            let side = 24 + 2 * j;
            opts.graphs.push(format!("gen:grid:{side}:{side}"));
        }
    }
    if opts.chaos_disconnect_pct + opts.chaos_poison_pct > 100 {
        eprintln!("parhde-loadgen: chaos percentages exceed 100");
        exit(2);
    }
    opts
}

#[derive(Clone)]
enum Outcome {
    /// code, cache disposition header, latency.
    Answered { code: u16, cache: String, ms: f64 },
    /// Deliberate mid-request disconnect (no response expected).
    Disconnected,
    /// Transport failure or unparseable response.
    Broken(String),
}

/// What request index `i` should do, decided deterministically so runs
/// are reproducible: chaos slots are spread evenly across the run.
fn plan(i: usize, opts: &Opts) -> Plan {
    let slot = (i * 97 + 13) % 100; // decorrelate from the graph cycle
    let d = opts.chaos_disconnect_pct as usize;
    let p = opts.chaos_poison_pct as usize;
    if slot < d {
        Plan::Disconnect
    } else if slot < d + p {
        Plan::Poison(i % 4)
    } else {
        Plan::Normal
    }
}

enum Plan {
    Normal,
    Disconnect,
    Poison(usize),
}

fn build_request(i: usize, opts: &Opts) -> (Request, bool) {
    match plan(i, opts) {
        Plan::Normal | Plan::Disconnect => {
            let spec = &opts.graphs[i % opts.graphs.len()];
            let mut req = Request::new(Op::Layout)
                .with("graph", spec)
                .with("dim", opts.dim);
            if let Some(ms) = opts.deadline_ms {
                req = req.with("deadline-ms", ms);
            }
            (req, matches!(plan(i, opts), Plan::Disconnect))
        }
        Plan::Poison(kind) => {
            let mut req = Request::new(Op::Layout).with("graph", "inline");
            req.body = match kind {
                0 => poison::truncated_matrix_market(3),
                1 => poison::chopped_size_line(),
                2 => poison::nan_matrix_market(),
                _ => poison::garbage_tail_edge_list(16),
            };
            (req, false)
        }
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn latency_block(mut ms: Vec<f64>) -> String {
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    format!(
        "{{\"count\": {}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}",
        ms.len(),
        percentile(&ms, 0.50),
        percentile(&ms, 0.90),
        percentile(&ms, 0.99),
        ms.last().copied().unwrap_or(0.0),
    )
}

fn main() {
    let opts = Arc::new(parse_opts());
    let next = Arc::new(AtomicUsize::new(0));
    let outcomes: Arc<Mutex<Vec<Outcome>>> =
        Arc::new(Mutex::new(Vec::with_capacity(opts.requests)));
    let retried_429 = Arc::new(AtomicU64::new(0));

    let started = Instant::now();
    let mut handles = Vec::new();
    for _ in 0..opts.concurrency.max(1) {
        let opts = Arc::clone(&opts);
        let next = Arc::clone(&next);
        let outcomes = Arc::clone(&outcomes);
        let retried = Arc::clone(&retried_429);
        handles.push(std::thread::spawn(move || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= opts.requests {
                break;
            }
            let (req, disconnect) = build_request(i, &opts);
            let outcome = run_one(&opts, &req, disconnect, &retried);
            outcomes.lock().unwrap().push(outcome);
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let wall = started.elapsed().as_secs_f64();

    let outcomes = outcomes.lock().unwrap();
    let mut codes: Vec<(u16, u64)> = Vec::new();
    let mut all_ms = Vec::new();
    let (mut hit_ms, mut warm_ms, mut cold_ms) = (Vec::new(), Vec::new(), Vec::new());
    let (mut disconnects, mut broken) = (0u64, 0u64);
    for o in outcomes.iter() {
        match o {
            Outcome::Answered { code, cache, ms } => {
                match codes.iter_mut().find(|(c, _)| c == code) {
                    Some((_, n)) => *n += 1,
                    None => codes.push((*code, 1)),
                }
                if *code == 200 {
                    all_ms.push(*ms);
                    match cache.as_str() {
                        "hit" => hit_ms.push(*ms),
                        "warm" => warm_ms.push(*ms),
                        _ => cold_ms.push(*ms),
                    }
                }
            }
            Outcome::Disconnected => disconnects += 1,
            Outcome::Broken(msg) => {
                broken += 1;
                eprintln!("parhde-loadgen: broken exchange: {msg}");
            }
        }
    }
    codes.sort_by_key(|(c, _)| *c);
    let completed = all_ms.len() as f64;

    let codes_json = codes
        .iter()
        .map(|(c, n)| format!("\"{c}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let json = format!(
        "{{\n  \"schema\": \"parhde-loadgen\",\n  \"version\": 1,\n  \
         \"requests\": {},\n  \"concurrency\": {},\n  \
         \"wall_seconds\": {:.3},\n  \"throughput_rps\": {:.3},\n  \
         \"codes\": {{{}}},\n  \"latency\": {},\n  \
         \"cold\": {},\n  \"warm\": {},\n  \"hit\": {},\n  \
         \"chaos\": {{\"disconnects\": {}, \"poison_pct\": {}, \"broken\": {}}}\n}}\n",
        opts.requests,
        opts.concurrency,
        wall,
        completed / wall.max(1e-9),
        codes_json,
        latency_block(all_ms),
        latency_block(cold_ms),
        latency_block(warm_ms),
        latency_block(hit_ms),
        disconnects,
        opts.chaos_poison_pct,
        broken,
    );
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("parhde-loadgen: cannot write {path}: {e}");
                exit(1);
            }
            println!("wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
    if broken > 0 {
        exit(1);
    }
}

fn run_one(
    opts: &Opts,
    req: &Request,
    disconnect: bool,
    retried_429: &AtomicU64,
) -> Outcome {
    let t0 = Instant::now();
    let client = match Client::connect(&opts.addr) {
        Ok(c) => c,
        Err(e) => return Outcome::Broken(format!("connect: {e}")),
    };
    if disconnect {
        return match client.fire_and_disconnect(req) {
            Ok(()) => Outcome::Disconnected,
            Err(e) => Outcome::Broken(format!("fire: {e}")),
        };
    }
    let mut client = client;
    if client.set_timeout(Duration::from_millis(opts.timeout_ms)).is_err() {
        return Outcome::Broken("set_timeout".into());
    }
    match client.call(req) {
        Ok(resp) => {
            // One polite retry on 429, honoring the server's hint: the
            // throughput number should reflect shedding + backoff, not
            // count a shed as a hard failure.
            if resp.code == 429 {
                let hint: u64 = resp
                    .header("retry-after-ms")
                    .and_then(|v| v.parse().ok())
                    .unwrap_or(100);
                retried_429.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(Duration::from_millis(hint.min(2_000)));
                if let Ok(mut again) = Client::connect(&opts.addr) {
                    if again.set_timeout(Duration::from_millis(opts.timeout_ms)).is_ok() {
                        if let Ok(r2) = again.call(req) {
                            return Outcome::Answered {
                                code: r2.code,
                                cache: r2.header("cache").unwrap_or("").to_string(),
                                ms: t0.elapsed().as_secs_f64() * 1e3,
                            };
                        }
                    }
                }
            }
            Outcome::Answered {
                code: resp.code,
                cache: resp.header("cache").unwrap_or("").to_string(),
                ms: t0.elapsed().as_secs_f64() * 1e3,
            }
        }
        Err(e) => Outcome::Broken(format!("call: {e}")),
    }
}
