//! Load generator + chaos driver for `parhde-serve` (DESIGN.md §13.6).
//!
//! ```text
//! parhde-loadgen --addr HOST:PORT [--requests N] [--concurrency C]
//!                [--graph SPEC]... [--distinct K] [--deadline-ms MS]
//!                [--dim P] [--timeout-ms MS]
//!                [--retries N] [--retry-seed S] [--keep-alive]
//!                [--chaos-disconnect PCT] [--chaos-poison PCT]
//!                [--out FILE] [--scrape] [--scrape-out FILE]
//! ```
//!
//! Fires `N` layout requests at the daemon from `C` client threads and
//! reports p50/p90/p99 latency (overall and split by cache disposition),
//! throughput, and a status-code histogram as JSON. Chaos knobs replace a
//! deterministic percentage of requests with hostile behavior:
//!
//! * `--chaos-disconnect PCT` — send the request, then close the socket
//!   without reading the response (exercises the disconnect watchdog);
//! * `--chaos-poison PCT` — send malformed graph bodies from
//!   `parhde_graph::gen::poison` (truncated Matrix Market files, NaN
//!   weights, garbage tails) that must all come back as typed 400s.
//!
//! `--scrape` turns the load run into a telemetry cross-check: a
//! background thread polls the daemon's `STATS` verb throughout the run
//! (every scrape must parse and validate), and after the run the final
//! snapshot must satisfy the lifecycle-counter invariant
//! (`requests_started == Σ terminal counters`) and report server-side
//! p50/p99 latencies consistent — within histogram-bucket tolerance —
//! with what the clients measured. `--scrape-out` writes the final
//! Prometheus exposition for downstream validation.
//!
//! Every request runs through the bounded-retry contract of
//! [`parhde_serve::client::RetryingClient`] (DESIGN.md §16.3):
//! `--retries` attempts beyond the first on transport errors and 429/503,
//! exponential backoff with decorrelated jitter seeded by `--retry-seed`,
//! floored at the server's `retry-after-ms` hint. `--keep-alive` gives
//! each worker thread one pooled connection reused across requests
//! (reconnecting when the server closes it) instead of a fresh connection
//! per request — the A/B for BENCH_pr9's keep-alive throughput number.
//!
//! Exit 0 when every non-chaos request got *some* well-formed response
//! after retries (shedding 429/503 counts as well-formed — that is the
//! daemon working); exit 1 on transport errors that survive retries,
//! unparseable responses, or any `--scrape` consistency violation. Under
//! a failpoint-armed daemon this is the "zero lost acknowledged
//! requests" gate: every injected fault must be absorbed by a retry.

use parhde_graph::gen::poison;
use parhde_serve::client::{Client, RetryPolicy, RetryingClient};
use parhde_serve::proto::{Op, Request};
use parhde_trace::registry::Snapshot;
use std::process::exit;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

struct Opts {
    addr: String,
    requests: usize,
    concurrency: usize,
    graphs: Vec<String>,
    distinct: usize,
    deadline_ms: Option<u64>,
    dim: u64,
    timeout_ms: u64,
    chaos_disconnect_pct: u64,
    chaos_poison_pct: u64,
    retries: u32,
    retry_seed: u64,
    keep_alive: bool,
    out: Option<String>,
    scrape: bool,
    scrape_out: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: parhde-loadgen --addr HOST:PORT [--requests N] [--concurrency C]\n\
         \x20                     [--graph SPEC]... [--distinct K] [--deadline-ms MS]\n\
         \x20                     [--dim P] [--timeout-ms MS]\n\
         \x20                     [--retries N] [--retry-seed S] [--keep-alive]\n\
         \x20                     [--chaos-disconnect PCT] [--chaos-poison PCT]\n\
         \x20                     [--out FILE] [--scrape] [--scrape-out FILE]"
    );
    exit(2);
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        addr: String::new(),
        requests: 50,
        concurrency: 4,
        graphs: Vec::new(),
        distinct: 0,
        deadline_ms: None,
        dim: 2,
        timeout_ms: 30_000,
        chaos_disconnect_pct: 0,
        chaos_poison_pct: 0,
        retries: 2,
        retry_seed: 42,
        keep_alive: false,
        out: None,
        scrape: false,
        scrape_out: None,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        macro_rules! value {
            () => {{
                i += 1;
                match args.get(i) {
                    Some(v) => v.clone(),
                    None => {
                        eprintln!("parhde-loadgen: missing value for {}", args[i - 1]);
                        exit(2);
                    }
                }
            }};
        }
        macro_rules! parsed {
            () => {
                match value!().parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("parhde-loadgen: bad value for {}", args[i - 1]);
                        exit(2);
                    }
                }
            };
        }
        match args[i].as_str() {
            "--addr" => opts.addr = value!(),
            "--requests" => opts.requests = parsed!(),
            "--concurrency" => opts.concurrency = parsed!(),
            "--graph" => opts.graphs.push(value!()),
            "--distinct" => opts.distinct = parsed!(),
            "--deadline-ms" => opts.deadline_ms = Some(parsed!()),
            "--dim" => opts.dim = parsed!(),
            "--timeout-ms" => opts.timeout_ms = parsed!(),
            "--chaos-disconnect" => opts.chaos_disconnect_pct = parsed!(),
            "--chaos-poison" => opts.chaos_poison_pct = parsed!(),
            "--retries" => opts.retries = parsed!(),
            "--retry-seed" => opts.retry_seed = parsed!(),
            "--keep-alive" => opts.keep_alive = true,
            "--out" => opts.out = Some(value!()),
            "--scrape" => opts.scrape = true,
            "--scrape-out" => {
                opts.scrape = true;
                opts.scrape_out = Some(value!());
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("parhde-loadgen: unknown option {other}");
                usage();
            }
        }
        i += 1;
    }
    if opts.addr.is_empty() {
        eprintln!("parhde-loadgen: --addr is required");
        usage();
    }
    if opts.graphs.is_empty() {
        // Distinct grid sizes so the first pass is cold and later passes
        // hit the cache — the hit-vs-cold split needs both populations.
        let k = opts.distinct.clamp(1, 64);
        for j in 0..k {
            let side = 24 + 2 * j;
            opts.graphs.push(format!("gen:grid:{side}:{side}"));
        }
    }
    if opts.chaos_disconnect_pct + opts.chaos_poison_pct > 100 {
        eprintln!("parhde-loadgen: chaos percentages exceed 100");
        exit(2);
    }
    opts
}

#[derive(Clone)]
enum Outcome {
    /// code, cache disposition header, latency, and whether this latency
    /// includes a 429-retry backoff sleep (excluded from the server-side
    /// latency cross-check — the server never saw the sleep).
    Answered { code: u16, cache: String, ms: f64, retried: bool },
    /// Deliberate mid-request disconnect (no response expected).
    Disconnected,
    /// Transport failure or unparseable response.
    Broken(String),
}

/// What request index `i` should do, decided deterministically so runs
/// are reproducible: chaos slots are spread evenly across the run.
fn plan(i: usize, opts: &Opts) -> Plan {
    let slot = (i * 97 + 13) % 100; // decorrelate from the graph cycle
    let d = opts.chaos_disconnect_pct as usize;
    let p = opts.chaos_poison_pct as usize;
    if slot < d {
        Plan::Disconnect
    } else if slot < d + p {
        Plan::Poison(i % 4)
    } else {
        Plan::Normal
    }
}

enum Plan {
    Normal,
    Disconnect,
    Poison(usize),
}

fn build_request(i: usize, opts: &Opts) -> (Request, bool) {
    match plan(i, opts) {
        Plan::Normal | Plan::Disconnect => {
            let spec = &opts.graphs[i % opts.graphs.len()];
            let mut req = Request::new(Op::Layout)
                .with("graph", spec)
                .with("dim", opts.dim);
            if let Some(ms) = opts.deadline_ms {
                req = req.with("deadline-ms", ms);
            }
            (req, matches!(plan(i, opts), Plan::Disconnect))
        }
        Plan::Poison(kind) => {
            let mut req = Request::new(Op::Layout).with("graph", "inline");
            req.body = match kind {
                0 => poison::truncated_matrix_market(3),
                1 => poison::chopped_size_line(),
                2 => poison::nan_matrix_market(),
                _ => poison::garbage_tail_edge_list(16),
            };
            (req, false)
        }
    }
}

fn percentile(sorted_ms: &[f64], q: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * q).round() as usize;
    sorted_ms[idx]
}

fn latency_block(mut ms: Vec<f64>) -> String {
    ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
    format!(
        "{{\"count\": {}, \"p50_ms\": {:.3}, \"p90_ms\": {:.3}, \"p99_ms\": {:.3}, \"max_ms\": {:.3}}}",
        ms.len(),
        percentile(&ms, 0.50),
        percentile(&ms, 0.90),
        percentile(&ms, 0.99),
        ms.last().copied().unwrap_or(0.0),
    )
}

/// A dedicated retrying client for `STATS` traffic: under a
/// failpoint-armed daemon a scrape connection eats injected faults like
/// any other, so a one-shot exchange would report chaos as a telemetry
/// violation. Retries make a scrape failure mean what it should: the
/// STATS path itself is broken.
fn scrape_client(addr: &str) -> RetryingClient {
    let policy = RetryPolicy {
        max_retries: 4,
        base: Duration::from_millis(25),
        cap: Duration::from_secs(1),
        seed: 0xa11ce,
    };
    RetryingClient::new(addr, Duration::from_secs(10), policy)
}

/// One `STATS` scrape: fetch, parse, validate. NDJSON is the machine
/// format; any response that isn't a parseable snapshot is an error. A
/// 429/503 that survives the retry budget (the daemon consistently
/// shedding the scrape) is reported as `Ok(None)`.
fn scrape_once(client: &mut RetryingClient) -> Result<Option<Snapshot>, String> {
    let req = Request::new(Op::Stats).with("format", "ndjson");
    let out = client.call(&req).map_err(|e| format!("stats exchange: {e}"))?;
    let resp = out.response;
    if resp.code == 429 || resp.code == 503 {
        return Ok(None);
    }
    if !resp.is_ok() {
        return Err(format!("stats got {} {}", resp.code, resp.reason));
    }
    Snapshot::from_ndjson(&resp.body).map(Some)
}

/// The scrape worker: polls `STATS` until told to stop, validating every
/// snapshot it gets. Returns (scrapes that parsed, first error if any).
fn scrape_loop(addr: &str, stop: &AtomicBool) -> (u64, Option<String>) {
    let mut client = scrape_client(addr);
    let mut ok = 0u64;
    let mut first_err = None;
    while !stop.load(Ordering::Relaxed) {
        match scrape_once(&mut client) {
            Ok(Some(_)) => ok += 1,
            Ok(None) => {} // shed under load: the daemon protecting itself
            Err(e) => {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    (ok, first_err)
}

/// The layout lifecycle terminal counters; their sum must equal
/// `parhde_requests_started_total` once traffic quiesces.
const TERMINALS: [&str; 8] = [
    "parhde_layout_completed_total",
    "parhde_layout_rejected_total",
    "parhde_layout_timeout_total",
    "parhde_layout_too_large_total",
    "parhde_layout_busy_total",
    "parhde_layout_cancelled_total",
    "parhde_layout_failed_total",
    "parhde_layout_drained_total",
];

/// Post-run consistency checks against the final snapshot. Returns the
/// `"scrape"` JSON block and a list of violations (empty = pass).
fn check_final_snapshot(
    snap: &Snapshot,
    client_ms: &[f64], // successful, non-retried latencies, sorted
    mid_load_scrapes: u64,
) -> (String, Vec<String>) {
    let mut violations = Vec::new();

    let started = snap.counter("parhde_requests_started_total").unwrap_or(0);
    let terminal_sum: u64 =
        TERMINALS.iter().map(|n| snap.counter(n).unwrap_or(0)).sum();
    if started != terminal_sum {
        violations.push(format!(
            "lifecycle invariant violated: started {started} != terminals {terminal_sum}"
        ));
    }

    // Server-observed latency must agree with client-observed latency to
    // within histogram-bucket resolution: the client quantile may sit one
    // bucket to either side of the server's (boundary effects, connect
    // overhead), so accept [lo/2, hi*2].
    let mut quantiles = String::new();
    match snap.histogram("parhde_request_duration_ms") {
        Some(h) if h.count > 0 && !client_ms.is_empty() => {
            for q in [0.5, 0.99] {
                let client = percentile(client_ms, q);
                let Some((lo, hi)) = h.quantile_bounds(q) else { continue };
                if !(client >= lo / 2.0 && client <= hi * 2.0) {
                    violations.push(format!(
                        "p{:02.0} mismatch: client {client:.3}ms outside server \
                         bucket ({lo:.3}, {hi:.3}]ms widened by one bucket",
                        q * 100.0
                    ));
                }
                quantiles.push_str(&format!(
                    ", \"server_p{0:02.0}_lo_ms\": {lo:.4}, \"server_p{0:02.0}_hi_ms\": \
                     {hi:.4}, \"client_p{0:02.0}_ms\": {client:.4}",
                    q * 100.0
                ));
            }
        }
        _ => {
            if !client_ms.is_empty() {
                violations
                    .push("no parhde_request_duration_ms samples on the server".into());
            }
        }
    }

    let block = format!(
        "{{\"mid_load_scrapes\": {mid_load_scrapes}, \"requests_started\": {started}, \
         \"terminal_sum\": {terminal_sum}, \"invariant_ok\": {}{quantiles}}}",
        started == terminal_sum,
    );
    (block, violations)
}

fn main() {
    let opts = Arc::new(parse_opts());
    let next = Arc::new(AtomicUsize::new(0));
    let outcomes: Arc<Mutex<Vec<Outcome>>> =
        Arc::new(Mutex::new(Vec::with_capacity(opts.requests)));
    let total_retries = Arc::new(AtomicU64::new(0));

    let stop_scrape = Arc::new(AtomicBool::new(false));
    let scraper = opts.scrape.then(|| {
        let addr = opts.addr.clone();
        let stop = Arc::clone(&stop_scrape);
        std::thread::spawn(move || scrape_loop(&addr, &stop))
    });

    let started = Instant::now();
    let mut handles = Vec::new();
    for t in 0..opts.concurrency.max(1) {
        let opts = Arc::clone(&opts);
        let next = Arc::clone(&next);
        let outcomes = Arc::clone(&outcomes);
        let retries = Arc::clone(&total_retries);
        handles.push(std::thread::spawn(move || {
            // With --keep-alive each worker owns one pooled connection for
            // the whole run; the per-thread seed keeps jitter streams
            // deterministic yet decorrelated across workers.
            let mut pooled = opts.keep_alive.then(|| {
                RetryingClient::new(
                    &opts.addr,
                    Duration::from_millis(opts.timeout_ms),
                    policy(&opts, opts.retry_seed ^ t as u64),
                )
            });
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= opts.requests {
                    break;
                }
                let (req, disconnect) = build_request(i, &opts);
                let outcome =
                    run_one(&opts, i, &req, disconnect, &retries, pooled.as_mut());
                outcomes.lock().unwrap().push(outcome);
            }
        }));
    }
    for h in handles {
        let _ = h.join();
    }
    let wall = started.elapsed().as_secs_f64();

    let outcomes = outcomes.lock().unwrap();
    let mut codes: Vec<(u16, u64)> = Vec::new();
    let mut all_ms = Vec::new();
    let mut unretried_ms = Vec::new();
    let (mut hit_ms, mut warm_ms, mut cold_ms) = (Vec::new(), Vec::new(), Vec::new());
    let (mut disconnects, mut broken) = (0u64, 0u64);
    for o in outcomes.iter() {
        match o {
            Outcome::Answered { code, cache, ms, retried } => {
                match codes.iter_mut().find(|(c, _)| c == code) {
                    Some((_, n)) => *n += 1,
                    None => codes.push((*code, 1)),
                }
                if *code == 200 {
                    all_ms.push(*ms);
                    if !retried {
                        unretried_ms.push(*ms);
                    }
                    match cache.as_str() {
                        "hit" => hit_ms.push(*ms),
                        "warm" => warm_ms.push(*ms),
                        _ => cold_ms.push(*ms),
                    }
                }
            }
            Outcome::Disconnected => disconnects += 1,
            Outcome::Broken(msg) => {
                broken += 1;
                eprintln!("parhde-loadgen: broken exchange: {msg}");
            }
        }
    }
    codes.sort_by_key(|(c, _)| *c);
    let completed = all_ms.len() as f64;

    // ---- Telemetry cross-check (--scrape) ---------------------------------
    let mut scrape_block = String::new();
    let mut scrape_violations: Vec<String> = Vec::new();
    if let Some(scraper) = scraper {
        stop_scrape.store(true, Ordering::Relaxed);
        let (mid_load_scrapes, scrape_err) = scraper.join().unwrap_or((0, None));
        if let Some(e) = scrape_err {
            scrape_violations.push(format!("mid-load scrape failed: {e}"));
        }
        let mut finisher = scrape_client(&opts.addr);
        match scrape_once(&mut finisher) {
            Ok(Some(snap)) => {
                unretried_ms.sort_by(|a, b| a.partial_cmp(b).unwrap());
                let (block, violations) =
                    check_final_snapshot(&snap, &unretried_ms, mid_load_scrapes);
                scrape_block = block;
                scrape_violations.extend(violations);
            }
            Ok(None) => scrape_violations.push("final scrape was shed".into()),
            Err(e) => scrape_violations.push(format!("final scrape failed: {e}")),
        }
        if let Some(path) = &opts.scrape_out {
            // The human/CI-facing exposition: scraped in the default
            // Prometheus format, validated downstream by trace-validate.
            match finisher.call(&Request::new(Op::Stats)) {
                Ok(out) if out.response.is_ok() => {
                    if let Err(e) = std::fs::write(path, &out.response.body) {
                        eprintln!("parhde-loadgen: cannot write {path}: {e}");
                        scrape_violations.push(format!("scrape-out write: {e}"));
                    }
                }
                Ok(out) => scrape_violations.push(format!(
                    "scrape-out fetch got {} {}",
                    out.response.code, out.response.reason
                )),
                Err(e) => scrape_violations.push(format!("scrape-out fetch: {e}")),
            }
        }
        for v in &scrape_violations {
            eprintln!("parhde-loadgen: telemetry violation: {v}");
        }
    }

    let codes_json = codes
        .iter()
        .map(|(c, n)| format!("\"{c}\": {n}"))
        .collect::<Vec<_>>()
        .join(", ");
    let scrape_json = if scrape_block.is_empty() {
        String::new()
    } else {
        format!(",\n  \"scrape\": {scrape_block}")
    };
    let json = format!(
        "{{\n  \"schema\": \"parhde-loadgen\",\n  \"version\": 1,\n  \
         \"requests\": {},\n  \"concurrency\": {},\n  \
         \"wall_seconds\": {:.3},\n  \"throughput_rps\": {:.3},\n  \
         \"codes\": {{{}}},\n  \"latency\": {},\n  \
         \"cold\": {},\n  \"warm\": {},\n  \"hit\": {},\n  \
         \"keep_alive\": {},\n  \
         \"chaos\": {{\"disconnects\": {}, \"poison_pct\": {}, \"retries\": {}, \
         \"broken\": {}}}{}\n}}\n",
        opts.requests,
        opts.concurrency,
        wall,
        completed / wall.max(1e-9),
        codes_json,
        latency_block(all_ms),
        latency_block(cold_ms),
        latency_block(warm_ms),
        latency_block(hit_ms),
        opts.keep_alive,
        disconnects,
        opts.chaos_poison_pct,
        total_retries.load(Ordering::Relaxed),
        broken,
        scrape_json,
    );
    match &opts.out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &json) {
                eprintln!("parhde-loadgen: cannot write {path}: {e}");
                exit(1);
            }
            println!("wrote {path}");
            print!("{json}");
        }
        None => print!("{json}"),
    }
    if broken > 0 || !scrape_violations.is_empty() {
        exit(1);
    }
}

/// The retry policy every request runs under, built from the CLI knobs.
fn policy(opts: &Opts, seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: opts.retries,
        base: Duration::from_millis(25),
        cap: Duration::from_secs(5),
        seed,
    }
}

fn run_one(
    opts: &Opts,
    i: usize,
    req: &Request,
    disconnect: bool,
    total_retries: &AtomicU64,
    pooled: Option<&mut RetryingClient>,
) -> Outcome {
    let t0 = Instant::now();
    if disconnect {
        // Chaos disconnects stay on the raw client: the whole point is to
        // vanish without the courtesy of reading (or retrying) anything.
        let client = match Client::connect(&opts.addr) {
            Ok(c) => c,
            Err(e) => return Outcome::Broken(format!("connect: {e}")),
        };
        return match client.fire_and_disconnect(req) {
            Ok(()) => Outcome::Disconnected,
            Err(e) => Outcome::Broken(format!("fire: {e}")),
        };
    }
    // --keep-alive reuses the worker thread's pooled connection; otherwise
    // each request gets a fresh single-use client with its own
    // deterministic jitter stream (spread by a SplitMix64-style multiply
    // so neighboring requests don't back off in lockstep).
    let mut fresh;
    let client = match pooled {
        Some(c) => c,
        None => {
            let seed =
                opts.retry_seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            fresh = RetryingClient::new(
                &opts.addr,
                Duration::from_millis(opts.timeout_ms),
                policy(opts, seed),
            );
            &mut fresh
        }
    };
    match client.call(req) {
        Ok(outcome) => {
            total_retries.fetch_add(u64::from(outcome.retries), Ordering::Relaxed);
            Outcome::Answered {
                code: outcome.response.code,
                cache: outcome.response.header("cache").unwrap_or("").to_string(),
                ms: t0.elapsed().as_secs_f64() * 1e3,
                retried: outcome.retries > 0,
            }
        }
        Err(e) => Outcome::Broken(format!("call after retries: {e}")),
    }
}
