//! The layout daemon (DESIGN.md §13).
//!
//! ```text
//! parhde-serve [--listen ADDR] [--workers N] [--queue N]
//!              [--mem-budget-mb MB] [--cache-dir DIR] [--cache-max-mb MB]
//!              [--report-dir DIR] [--default-deadline-ms MS]
//!              [--max-deadline-ms MS] [--drain-grace-ms MS]
//!              [--keepalive-idle-ms MS] [--max-requests-per-conn N]
//!              [--graph-dir DIR] [--failpoints SPEC] [--no-request-log]
//!              [--no-telemetry]
//! ```
//!
//! `--graph-dir DIR` serves packed `.phdegrf` snapshots (from parhde-pack)
//! via the request header `graph: packed:<name>`; the snapshot is opened
//! mmap-backed, so served graphs may exceed RAM.
//!
//! Prints `listening on <addr>` once the socket is bound (tests and
//! supervisors wait for that line). Emits one NDJSON event per answered
//! request on stderr (suppress with `--no-request-log`); `STATS` scrapes
//! the live metrics registry; `--no-telemetry` freezes metric recording
//! (the overhead-measurement baseline). First SIGINT/SIGTERM drains: stop
//! accepting, finish in-flight work within the grace period, exit 0.
//! A second signal force-exits 130 immediately.
//!
//! Fault injection (DESIGN.md §16.1): `--failpoints SPEC` — or the
//! `PARHDE_FAILPOINTS` environment variable — arms the deterministic
//! failpoint layer with a seeded schedule, e.g.
//! `seed=42,serve.*=err:0.05,cache.rename=delay:200ms`. The flag wins
//! over the environment when both are set. Per-site evaluation/fire
//! counters are exported through `STATS` as `parhde_failpoint_*`, so two
//! runs with the same seed and traffic can be diffed for reproducibility.
//! Keep-alive knobs: `--keepalive-idle-ms` bounds how long an idle
//! connection may sit between requests; `--max-requests-per-conn` caps
//! how many requests one connection may pipeline before the server closes
//! it (fairness under connection churn).

use parhde_serve::server::{serve, ServerConfig};
use parhde_util::supervisor;
use std::process::exit;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: parhde-serve [--listen ADDR] [--workers N] [--queue N]\n\
         \x20                   [--mem-budget-mb MB] [--cache-dir DIR]\n\
         \x20                   [--cache-max-mb MB] [--report-dir DIR]\n\
         \x20                   [--default-deadline-ms MS]\n\
         \x20                   [--max-deadline-ms MS] [--drain-grace-ms MS]\n\
         \x20                   [--keepalive-idle-ms MS] [--max-requests-per-conn N]\n\
         \x20                   [--graph-dir DIR] [--failpoints SPEC]\n\
         \x20                   [--no-request-log] [--no-telemetry]"
    );
    exit(2);
}

fn main() {
    let mut cfg = ServerConfig {
        addr: "127.0.0.1:7170".into(),
        log_requests: true,
        ..Default::default()
    };
    let mut failpoint_spec: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        macro_rules! value {
            () => {{
                i += 1;
                match args.get(i) {
                    Some(v) => v.clone(),
                    None => {
                        eprintln!("parhde-serve: missing value for {}", args[i - 1]);
                        exit(2);
                    }
                }
            }};
        }
        macro_rules! parsed {
            () => {
                match value!().parse() {
                    Ok(v) => v,
                    Err(_) => {
                        eprintln!("parhde-serve: bad value for {}", args[i - 1]);
                        exit(2);
                    }
                }
            };
        }
        match args[i].as_str() {
            "--listen" => cfg.addr = value!(),
            "--workers" => cfg.workers = parsed!(),
            "--queue" => cfg.queue_capacity = parsed!(),
            "--mem-budget-mb" => {
                let mb: u64 = parsed!();
                cfg.mem_budget_bytes = mb.saturating_mul(1 << 20);
            }
            "--cache-dir" => cfg.cache_dir = Some(value!().into()),
            "--cache-max-mb" => {
                let mb: u64 = parsed!();
                cfg.cache_max_bytes = Some(mb.saturating_mul(1 << 20));
            }
            "--report-dir" => cfg.report_dir = Some(value!().into()),
            "--graph-dir" => cfg.graph_dir = Some(value!().into()),
            "--no-request-log" => cfg.log_requests = false,
            "--no-telemetry" => parhde_trace::registry::set_enabled(false),
            "--default-deadline-ms" => {
                cfg.default_deadline = Duration::from_millis(parsed!());
            }
            "--max-deadline-ms" => cfg.max_deadline = Duration::from_millis(parsed!()),
            "--drain-grace-ms" => cfg.drain_grace = Duration::from_millis(parsed!()),
            "--keepalive-idle-ms" => {
                cfg.keepalive_idle = Duration::from_millis(parsed!());
            }
            "--max-requests-per-conn" => cfg.max_requests_per_conn = parsed!(),
            "--failpoints" => failpoint_spec = Some(value!()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("parhde-serve: unknown option {other}");
                usage();
            }
        }
        i += 1;
    }

    // Arm failpoints before binding the socket so the very first accepted
    // connection already sees the schedule. The --failpoints flag wins
    // over $PARHDE_FAILPOINTS; a malformed spec is a startup error (exit
    // 2), never a silently-disarmed chaos run.
    let armed = match failpoint_spec {
        Some(spec) => {
            parhde_util::failpoint::arm(&spec).map(|()| true)
        }
        None => parhde_util::failpoint::arm_from_env(),
    };
    match armed {
        Ok(true) => eprintln!("parhde-serve: failpoints armed"),
        Ok(false) => {}
        Err(e) => {
            eprintln!("parhde-serve: bad failpoint spec: {e}");
            exit(2);
        }
    }

    // Pin the compute backend for the daemon's lifetime. $PARHDE_BACKEND
    // picks it (scalar|simd|auto); a forced simd on an unsupported CPU is
    // a startup error (exit 12), never a silent fallback mid-request.
    let backend = match std::env::var("PARHDE_BACKEND") {
        Ok(v) if !v.trim().is_empty() => match v.trim().parse() {
            Ok(b) => b,
            Err(e) => {
                eprintln!("parhde-serve: bad PARHDE_BACKEND: {e}");
                exit(2);
            }
        },
        _ => parhde_linalg::backend::Choice::Auto,
    };
    match parhde_linalg::backend::install(backend) {
        Ok(executed) => eprintln!(
            "parhde-serve: backend {executed} (cpu: {})",
            parhde_linalg::backend::cpu_features()
        ),
        Err(e) => {
            eprintln!("parhde-serve: {e}");
            exit(12);
        }
    }

    supervisor::install_two_stage_handlers();
    let server = match serve(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parhde-serve: failed to start: {e}");
            exit(3);
        }
    };
    println!("listening on {}", server.addr());

    while !supervisor::drain_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("parhde-serve: draining (second signal force-exits)");
    server.drain();
    eprintln!("parhde-serve: drained, bye");
}
