//! The shared soft memory budget (DESIGN.md §13.3).
//!
//! PR 4's per-run memory admission ([`parhde::supervise::admit`]) assumed
//! one run per process; a daemon runs many at once, so admission must be
//! *across* concurrent requests: each reserves its estimated working set
//! from one shared pool before running and releases it when done (RAII, so
//! a panicking worker still releases). Two distinct rejections fall out:
//!
//! * **never fits** — even the smallest usable subspace exceeds the whole
//!   configured budget → 413, retrying is pointless;
//! * **does not fit now** — it would fit an idle server, but concurrent
//!   reservations hold too much → 429 with a retry-after hint derived
//!   from an EWMA of recent service times.

use parhde::config::ParHdeConfig;
use parhde::supervise::{estimate_run_bytes, estimate_run_bytes_stored};
use parhde_graph::GraphStore;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why admission refused a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmitError {
    /// The request exceeds the total budget even at the minimum subspace.
    NeverFits {
        /// Estimated bytes at the smallest usable subspace.
        min_bytes: u64,
        /// The total configured budget.
        total: u64,
    },
    /// The request fits the total budget but not what is free right now.
    Busy {
        /// Estimated bytes at the smallest usable subspace.
        min_bytes: u64,
        /// Bytes currently free.
        free: u64,
    },
}

/// A successful admission: the subspace that fits and the bytes reserved
/// for it. Dropping the reservation releases the bytes.
pub struct Reservation {
    budget: Arc<SharedSoftBudget>,
    /// Reserved bytes.
    pub bytes: u64,
    /// The admitted subspace dimension (≤ requested).
    pub subspace: usize,
    /// Whether the requested subspace had to shrink to fit.
    pub downscaled: bool,
}

impl Drop for Reservation {
    fn drop(&mut self) {
        self.budget.release(self.bytes);
    }
}

/// The process-wide soft budget concurrent requests draw from.
pub struct SharedSoftBudget {
    total: u64,
    reserved: AtomicU64,
}

impl SharedSoftBudget {
    /// A budget of `total` bytes.
    pub fn new(total: u64) -> Arc<Self> {
        Arc::new(SharedSoftBudget { total, reserved: AtomicU64::new(0) })
    }

    /// The configured total.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bytes currently reserved by in-flight requests.
    pub fn reserved(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// Bytes currently free.
    pub fn free(&self) -> u64 {
        self.total.saturating_sub(self.reserved())
    }

    /// Tries to reserve exactly `bytes` (CAS loop, no lock).
    fn try_reserve(&self, bytes: u64) -> bool {
        let mut cur = self.reserved.load(Ordering::Relaxed);
        loop {
            let Some(next) = cur.checked_add(bytes) else { return false };
            if next > self.total {
                return false;
            }
            match self.reserved.compare_exchange_weak(
                cur,
                next,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    fn release(&self, bytes: u64) {
        self.reserved.fetch_sub(bytes, Ordering::AcqRel);
    }

    /// Admits one layout request against the budget: walks the subspace
    /// down by halving (never below `max(p, 2)`) until the estimated
    /// working set fits the currently free bytes, and reserves it.
    ///
    /// # Errors
    /// [`AdmitError::NeverFits`] when the minimum subspace exceeds the
    /// *total* budget; [`AdmitError::Busy`] when it exceeds only what is
    /// free right now.
    pub fn admit(
        self: &Arc<Self>,
        n: usize,
        m: usize,
        cfg: &ParHdeConfig,
        p: usize,
    ) -> Result<Reservation, AdmitError> {
        self.admit_with(cfg, p, |s| {
            estimate_run_bytes(n, m, s, p, cfg.bfs_mode, cfg.linalg_mode)
        })
    }

    /// [`admit`](Self::admit) priced against the request's actual graph
    /// store: a packed mmap-backed snapshot reserves its (much smaller)
    /// resident footprint, not the plain-CSR bytes it never allocates, so
    /// more such requests run concurrently under the same pool.
    pub fn admit_stored<G: GraphStore>(
        self: &Arc<Self>,
        g: &G,
        cfg: &ParHdeConfig,
        p: usize,
    ) -> Result<Reservation, AdmitError> {
        self.admit_with(cfg, p, |s| {
            estimate_run_bytes_stored(g, s, p, cfg.bfs_mode, cfg.linalg_mode)
        })
    }

    fn admit_with(
        self: &Arc<Self>,
        cfg: &ParHdeConfig,
        p: usize,
        estimate: impl Fn(usize) -> u64,
    ) -> Result<Reservation, AdmitError> {
        let floor = p.max(2);
        let requested = cfg.subspace.max(floor);
        let min_bytes = estimate(floor);
        if min_bytes > self.total {
            return Err(AdmitError::NeverFits { min_bytes, total: self.total });
        }
        // Failpoint: a chaos schedule can make an otherwise-admissible
        // request shed as Busy — the retryable rejection — to exercise
        // the client backoff path. Placed after the NeverFits check so
        // the *permanent* rejection stays deterministic under chaos.
        if parhde_util::failpoint::check("budget.reserve").is_some() {
            return Err(AdmitError::Busy { min_bytes, free: self.free() });
        }
        let mut s = requested;
        loop {
            let bytes = estimate(s);
            if bytes <= self.total && self.try_reserve(bytes) {
                return Ok(Reservation {
                    budget: Arc::clone(self),
                    bytes,
                    subspace: s,
                    downscaled: s != requested,
                });
            }
            if s == floor {
                // Fits the total (checked above) but not what is free now.
                return Err(AdmitError::Busy { min_bytes, free: self.free() });
            }
            s = (s / 2).max(floor);
        }
    }
}

/// EWMA of recent request service times, feeding the 429 retry-after hint:
/// a shed client should come back after roughly the time it takes the
/// requests ahead of it to finish.
///
/// The sample count is tracked explicitly: before the first completed
/// request there is *no* estimate, and the hint is the documented
/// [`RETRY_AFTER_MIN_MS`] floor deterministically — the old
/// `ewma == 0.0` sentinel conflated "no history" with a genuine
/// sub-millisecond sample, and multiplied the uninitialized estimate by
/// the queue depth before clamping.
pub struct ServiceClock {
    ewma_ms: Mutex<(f64, u64)>,
}

/// Floor of the retry-after hint (ms): even an idle-looking server wants
/// clients to jitter, not hammer.
pub const RETRY_AFTER_MIN_MS: u64 = 50;
/// Ceiling of the retry-after hint (ms).
pub const RETRY_AFTER_MAX_MS: u64 = 30_000;

impl Default for ServiceClock {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceClock {
    /// A clock with no history (hints start at the floor).
    pub fn new() -> Self {
        ServiceClock { ewma_ms: Mutex::new((0.0, 0)) }
    }

    /// Records one completed request's service time. Non-finite or
    /// negative samples (a clock went backwards, an overflowed
    /// conversion) are dropped rather than poisoning the estimate; a
    /// genuine 0.0 ms sample *does* count as history.
    pub fn record_ms(&self, ms: f64) {
        if !ms.is_finite() || ms < 0.0 {
            return;
        }
        let mut state = self.ewma_ms.lock().unwrap_or_else(|e| e.into_inner());
        let (ewma, samples) = *state;
        *state = if samples == 0 {
            (ms, 1)
        } else {
            (0.8 * ewma + 0.2 * ms, samples.saturating_add(1))
        };
    }

    /// The retry-after hint for a shed request, given how much work is
    /// ahead of it (queued + in-flight requests). With no completed
    /// request yet this is exactly [`RETRY_AFTER_MIN_MS`], independent of
    /// `ahead`.
    pub fn retry_after_ms(&self, ahead: usize) -> u64 {
        let (ewma, samples) = *self.ewma_ms.lock().unwrap_or_else(|e| e.into_inner());
        if samples == 0 {
            return RETRY_AFTER_MIN_MS;
        }
        let hint = ewma * (ahead as f64 + 1.0);
        (hint as u64).clamp(RETRY_AFTER_MIN_MS, RETRY_AFTER_MAX_MS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(s: usize) -> ParHdeConfig {
        ParHdeConfig::with_subspace(s)
    }

    #[test]
    fn reservations_release_on_drop() {
        let b = SharedSoftBudget::new(1 << 30);
        let r = b.admit(10_000, 40_000, &cfg(16), 2).unwrap();
        assert!(b.reserved() == r.bytes && r.bytes > 0);
        assert!(!r.downscaled);
        drop(r);
        assert_eq!(b.reserved(), 0);
    }

    #[test]
    fn impossible_requests_are_never_fits() {
        let b = SharedSoftBudget::new(1024);
        match b.admit(1_000_000, 4_000_000, &cfg(16), 2) {
            Err(AdmitError::NeverFits { min_bytes, total }) => {
                assert!(min_bytes > total);
            }
            Ok(r) => panic!("expected NeverFits, admitted subspace {}", r.subspace),
            Err(e) => panic!("expected NeverFits, got {e:?}"),
        }
    }

    #[test]
    fn contention_downscales_then_sheds_busy() {
        let one_full = estimate_run_bytes(
            50_000,
            200_000,
            32,
            2,
            cfg(32).bfs_mode,
            cfg(32).linalg_mode,
        );
        // Room for one full run and change, but not two.
        let b = SharedSoftBudget::new(one_full + one_full / 4);
        let first = b.admit(50_000, 200_000, &cfg(32), 2).unwrap();
        assert!(!first.downscaled);
        // The second fits only by shrinking.
        let second = b.admit(50_000, 200_000, &cfg(32), 2);
        match &second {
            Ok(r) => assert!(r.downscaled && r.subspace < 32),
            Err(AdmitError::Busy { .. }) => {}
            Err(e) => panic!("unexpected {e:?}"),
        }
        drop(second);
        drop(first);
        assert_eq!(b.reserved(), 0);
        // With the pool free again, the same request is admitted in full.
        assert!(!b.admit(50_000, 200_000, &cfg(32), 2).unwrap().downscaled);
    }

    #[test]
    fn cold_start_hint_is_the_floor_regardless_of_queue_depth() {
        // Before the first completed request there is no estimate: the
        // hint must be the documented floor deterministically, not the
        // uninitialized EWMA scaled by whatever is ahead.
        let clock = ServiceClock::new();
        for ahead in [0, 1, 7, 1000] {
            assert_eq!(clock.retry_after_ms(ahead), RETRY_AFTER_MIN_MS);
        }
        // A genuine 0.0 ms sample counts as history (and still clamps to
        // the floor), rather than being mistaken for "no samples".
        clock.record_ms(0.0);
        assert_eq!(clock.retry_after_ms(0), RETRY_AFTER_MIN_MS);
        // A later real sample blends with the zero instead of replacing it.
        clock.record_ms(1000.0);
        let hint = clock.retry_after_ms(0);
        assert!((150..=250).contains(&hint), "0.8*0 + 0.2*1000 = 200, got {hint}");
    }

    #[test]
    fn hostile_samples_never_poison_the_estimate() {
        let clock = ServiceClock::new();
        clock.record_ms(f64::NAN);
        clock.record_ms(f64::INFINITY);
        clock.record_ms(-5.0);
        assert_eq!(clock.retry_after_ms(3), RETRY_AFTER_MIN_MS, "still cold");
        clock.record_ms(100.0);
        clock.record_ms(f64::NAN);
        assert!(clock.retry_after_ms(0) >= 80, "NaN after history is dropped");
    }

    #[test]
    fn retry_hints_track_service_time_and_clamp() {
        let clock = ServiceClock::new();
        assert_eq!(clock.retry_after_ms(0), RETRY_AFTER_MIN_MS);
        clock.record_ms(200.0);
        let one = clock.retry_after_ms(0);
        let five = clock.retry_after_ms(4);
        assert!((150..=250).contains(&one), "one={one}");
        assert!(five > one);
        clock.record_ms(1e9);
        assert_eq!(clock.retry_after_ms(100), RETRY_AFTER_MAX_MS);
    }
}
