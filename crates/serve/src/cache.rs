//! The crash-safe, digest-keyed layout cache (DESIGN.md §13.4).
//!
//! Results are keyed by the FNV-1a digests the checkpoint layer already
//! computes — [`parhde::checkpoint::graph_digest`] of the preprocessed
//! graph combined with [`parhde::checkpoint::config_fingerprint`] and the
//! embedding dimension — so a cache hit is *definitionally* the layout an
//! uninterrupted run of that request would produce (the pipeline is
//! deterministic given graph + config + seed).
//!
//! Crash safety is the whole point of the design:
//!
//! * writes stage to a uniquely named `.tmp` in the cache directory and
//!   `rename(2)` into place — a crash mid-write leaves a `.tmp` readers
//!   ignore, never a torn entry under the canonical name;
//! * every entry carries a whole-file FNV-1a checksum; a corrupt or
//!   truncated entry (power loss after rename, disk rot, stray writes) is
//!   detected on load, **deleted**, and treated as a miss — the daemon
//!   recomputes rather than serving poison;
//! * alongside each entry key the cache owns a checkpoint subdirectory:
//!   a request that was cancelled or degraded after its BFS phase leaves a
//!   post-BFS checkpoint there, and the next identical request resumes
//!   from it (warm start) instead of repaying the BFS;
//! * the cache is optionally *bounded*: with a byte budget set, `store`
//!   evicts the oldest entries (and their checkpoint directories) until
//!   the total fits — the daemon's disk footprint stays observable and
//!   capped instead of growing with every distinct request ever served.

use parhde::checkpoint::{config_fingerprint, graph_digest, Fnv64};
use parhde::config::ParHdeConfig;
use parhde::CheckpointSpec;
use parhde_graph::GraphStore;
use parhde_linalg::dense::ColMajorMatrix;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Magic bytes opening every cache entry.
pub const MAGIC: [u8; 8] = *b"PHDELAYT";
/// Current entry format version.
pub const FORMAT_VERSION: u32 = 1;

/// Staging-file uniquifier, so concurrent writers never collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A cached layout: the coordinates plus the ladder rung that produced
/// them (reported to clients as provenance).
#[derive(Clone, Debug, PartialEq)]
pub struct CachedLayout {
    /// The `n×p` coordinates.
    pub coords: ColMajorMatrix,
    /// Rung label recorded at store time (`"full"`, `"phde"`, …).
    pub rung: String,
}

/// A directory of layout entries and per-key checkpoint subdirectories.
pub struct LayoutCache {
    dir: PathBuf,
    /// Byte budget for entry files; `None` means unbounded (the seed
    /// behavior). Checkpoint directories don't count against the budget —
    /// they are bounded by it indirectly, since eviction removes them
    /// alongside their entry.
    max_bytes: Option<u64>,
    /// Entry index in eviction order (oldest first), rebuilt from the
    /// directory at open so a restarted daemon keeps honoring the bound.
    index: Mutex<Vec<IndexEntry>>,
    evictions: AtomicU64,
}

/// One indexed entry: its key and its on-disk entry-file size.
struct IndexEntry {
    key: u64,
    bytes: u64,
}

/// A point-in-time view of the cache's footprint, for gauges.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheUsage {
    /// Number of live entry files.
    pub entries: u64,
    /// Total bytes across live entry files.
    pub bytes: u64,
    /// Entries evicted to honor the byte bound since open (monotonic).
    pub evictions: u64,
}

/// The cache key of one (graph, config, dimension) request. Generic over
/// storage: the digest streams degrees and adjacency, so plain and packed
/// representations of the same graph share cache entries and warm starts.
pub fn cache_key<G: GraphStore>(g: &G, cfg: &ParHdeConfig, p: usize) -> u64 {
    let mut h = Fnv64::new();
    h.update(&graph_digest(g).to_le_bytes());
    h.update(&config_fingerprint(cfg).to_le_bytes());
    h.update(&(p as u64).to_le_bytes());
    h.finish()
}

impl LayoutCache {
    /// Opens (creating if needed) an unbounded cache rooted at `dir`.
    ///
    /// # Errors
    /// [`std::io::Error`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<LayoutCache> {
        Self::open_bounded(dir, None)
    }

    /// Opens a cache with an optional byte budget over its entry files.
    /// Existing entries are indexed oldest-first by modification time, so
    /// the bound survives a daemon restart.
    ///
    /// # Errors
    /// [`std::io::Error`] if the directory cannot be created or scanned.
    pub fn open_bounded(
        dir: impl Into<PathBuf>,
        max_bytes: Option<u64>,
    ) -> std::io::Result<LayoutCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut found: Vec<(std::time::SystemTime, IndexEntry)> = Vec::new();
        for entry in std::fs::read_dir(&dir)?.flatten() {
            let path = entry.path();
            let Some(key) = entry_key_from_path(&path) else { continue };
            let Ok(meta) = entry.metadata() else { continue };
            let mtime = meta.modified().unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            found.push((mtime, IndexEntry { key, bytes: meta.len() }));
        }
        found.sort_by_key(|(mtime, _)| *mtime);
        let cache = LayoutCache {
            dir,
            max_bytes,
            index: Mutex::new(found.into_iter().map(|(_, e)| e).collect()),
            evictions: AtomicU64::new(0),
        };
        cache.evict_over_budget();
        Ok(cache)
    }

    /// The cache's current footprint and eviction total.
    pub fn usage(&self) -> CacheUsage {
        let index = self.index.lock().unwrap_or_else(|e| e.into_inner());
        CacheUsage {
            entries: index.len() as u64,
            bytes: index.iter().map(|e| e.bytes).sum(),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical entry path for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("layout-{key:016x}.bin"))
    }

    /// The checkpoint spec identical requests share: a cold run writes its
    /// post-BFS checkpoint here, and later identical requests warm-start
    /// from it.
    pub fn checkpoint_spec(&self, key: u64) -> CheckpointSpec {
        CheckpointSpec::in_dir(self.dir.join(format!("ckpt-{key:016x}")))
    }

    /// Loads the entry for `key`. A missing entry is a miss; a corrupt or
    /// torn entry is deleted and reported as a miss (with a counter), so
    /// one bad file can never wedge the key. An injected read fault
    /// (failpoint `cache.read_entry`) is a plain miss — the entry itself
    /// is healthy, so it is *not* evicted.
    pub fn load(&self, key: u64) -> Option<CachedLayout> {
        use parhde_util::failpoint;
        if matches!(
            failpoint::check("cache.read_entry"),
            Some(failpoint::Fired::Err | failpoint::Fired::Partial)
        ) {
            parhde_trace::counter!("serve.cache.read_injected_miss", 1);
            return None;
        }
        let path = self.entry_path(key);
        let bytes = std::fs::read(&path).ok()?;
        match decode(&bytes, key) {
            Some(hit) => Some(hit),
            None => {
                parhde_trace::counter!("serve.cache.corrupt_evicted", 1);
                let _ = std::fs::remove_file(&path);
                self.index
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .retain(|e| e.key != key);
                None
            }
        }
    }

    /// Stores an entry durably (unique `.tmp` + fsync + rename + parent
    /// fsync, DESIGN.md §16.4), then evicts the oldest entries as needed
    /// to honor the byte budget. Returns how many entries were evicted.
    ///
    /// # Errors
    /// [`std::io::Error`] from any stage; the staging file is removed on
    /// every failure path, so a failed store never leaves a stray `.tmp`.
    pub fn store(
        &self,
        key: u64,
        coords: &ColMajorMatrix,
        rung: &str,
    ) -> std::io::Result<u64> {
        let bytes = encode(key, coords, rung);
        let final_path = self.entry_path(key);
        let tmp_path = self.dir.join(format!(
            "layout-{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        write_entry_durable(&self.dir, &tmp_path, &final_path, &bytes).inspect_err(
            |_| {
                let _ = std::fs::remove_file(&tmp_path);
            },
        )?;
        parhde_trace::counter!("serve.cache.store", 1);
        {
            let mut index = self.index.lock().unwrap_or_else(|e| e.into_inner());
            index.retain(|e| e.key != key); // overwrite: re-age the entry
            index.push(IndexEntry { key, bytes: bytes.len() as u64 });
        }
        Ok(self.evict_over_budget())
    }

    /// Evicts oldest-first until the entry files fit the budget, always
    /// keeping the newest entry (so a fresh store is never self-defeating).
    /// Each eviction removes the entry file *and* the key's checkpoint
    /// directory — a warm start from an evicted key would resurrect the
    /// very footprint the bound just reclaimed.
    fn evict_over_budget(&self) -> u64 {
        let Some(max) = self.max_bytes else { return 0 };
        let mut victims = Vec::new();
        {
            let mut index = self.index.lock().unwrap_or_else(|e| e.into_inner());
            let mut total: u64 = index.iter().map(|e| e.bytes).sum();
            while total > max && index.len() > 1 {
                let oldest = index.remove(0);
                total -= oldest.bytes;
                victims.push(oldest.key);
            }
        }
        for &key in &victims {
            let _ = std::fs::remove_file(self.entry_path(key));
            let _ = std::fs::remove_dir_all(self.dir.join(format!("ckpt-{key:016x}")));
            parhde_trace::counter!("serve.cache.evicted", 1);
        }
        let n = victims.len() as u64;
        self.evictions.fetch_add(n, Ordering::Relaxed);
        n
    }

    /// Leftover `.tmp` staging files under the cache root (recursive) —
    /// the chaos harness's atomic-write probe. A clean daemon lifecycle
    /// leaves none.
    pub fn stray_tmp_files(&self) -> Vec<PathBuf> {
        fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
            let Ok(entries) = std::fs::read_dir(dir) else { return };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, out);
                } else if p.extension().is_some_and(|x| x == "tmp") {
                    out.push(p);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.dir, &mut out);
        out
    }
}

/// The durable write ladder behind [`LayoutCache::store`]: stage the
/// bytes to `tmp`, `fsync` the staging file (so the *data* is on disk
/// before the rename can make it visible), `rename(2)` into place, then
/// `fsync` the parent directory (so the rename itself — a directory
/// mutation — survives a power cut; without it the entry can vanish, or
/// worse, reappear as the pre-rename `.tmp`). Failpoint sites
/// `cache.write_entry` / `cache.fsync` / `cache.rename` let the chaos
/// suite fail each rung; `partial` on the write stage leaves a torn
/// staging file for the caller's cleanup path to reclaim.
fn write_entry_durable(
    dir: &Path,
    tmp: &Path,
    final_path: &Path,
    bytes: &[u8],
) -> std::io::Result<()> {
    use parhde_util::failpoint;
    use std::io::Write;
    let mut f = std::fs::File::create(tmp)?;
    match failpoint::check("cache.write_entry") {
        Some(failpoint::Fired::Err) => {
            return Err(failpoint::injected_io_error("cache.write_entry"))
        }
        Some(failpoint::Fired::Partial) => {
            f.write_all(&bytes[..bytes.len() / 2])?;
            return Err(failpoint::injected_io_error("cache.write_entry"));
        }
        _ => {}
    }
    f.write_all(bytes)?;
    failpoint::io_inject("cache.fsync")?;
    f.sync_all()?;
    drop(f);
    failpoint::io_inject("cache.rename")?;
    std::fs::rename(tmp, final_path)?;
    fsync_dir(dir)
}

/// Fsyncs a directory so a completed `rename(2)` within it is durable.
/// Directory handles cannot be fsynced on all platforms; on non-unix this
/// is a no-op (the rename is still atomic, just not power-cut durable).
pub(crate) fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    #[cfg(unix)]
    std::fs::File::open(dir)?.sync_all()?;
    #[cfg(not(unix))]
    let _ = dir;
    Ok(())
}

/// Parses `layout-<16 hex>.bin` back to its key; `None` for anything else
/// (checkpoint dirs, staging files, strangers).
fn entry_key_from_path(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let hex = name.strip_prefix("layout-")?.strip_suffix(".bin")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn encode(key: u64, coords: &ColMajorMatrix, rung: &str) -> Vec<u8> {
    let n = coords.rows();
    let p = coords.cols();
    let mut out = Vec::with_capacity(64 + rung.len() + 8 * n * p);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(rung.len() as u32).to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(p as u64).to_le_bytes());
    out.extend_from_slice(rung.as_bytes());
    for &x in coords.data() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    let mut h = Fnv64::new();
    h.update(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Decodes and fully validates an entry; `None` on any violation. The
/// checksum runs first, so the structural fields below it are trusted-ish;
/// the arithmetic is still checked — a colliding corruption must fail
/// closed, not wrap a bounds test.
fn decode(bytes: &[u8], want_key: u64) -> Option<CachedLayout> {
    if bytes.len() < MAGIC.len() + 8 || bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let mut h = Fnv64::new();
    h.update(payload);
    if h.finish() != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let fixed = MAGIC.len() + 4 + 4 + 8 + 8 + 8;
    if payload.len() < fixed {
        return None;
    }
    let field_u32 = |at: usize| -> u32 {
        u32::from_le_bytes(payload[at..at + 4].try_into().unwrap_or_default())
    };
    let field_u64 = |at: usize| -> u64 {
        u64::from_le_bytes(payload[at..at + 8].try_into().unwrap_or_default())
    };
    if field_u32(8) != FORMAT_VERSION {
        return None;
    }
    let rung_len = field_u32(12) as usize;
    if field_u64(16) != want_key {
        return None;
    }
    let n = usize::try_from(field_u64(24)).ok()?;
    let p = usize::try_from(field_u64(32)).ok()?;
    let cells = n.checked_mul(p)?;
    let need = fixed
        .checked_add(rung_len)?
        .checked_add(cells.checked_mul(8)?)?;
    if payload.len() != need {
        return None;
    }
    let rung = std::str::from_utf8(&payload[fixed..fixed + rung_len]).ok()?.to_string();
    let mut data = Vec::with_capacity(cells);
    let mut at = fixed + rung_len;
    for _ in 0..cells {
        data.push(f64::from_bits(field_u64(at)));
        at += 8;
    }
    Some(CachedLayout { coords: ColMajorMatrix::from_data(n, p, data), rung })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::gen::grid2d;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("parhde-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_coords() -> ColMajorMatrix {
        let mut m = ColMajorMatrix::zeros(6, 2);
        for c in 0..2 {
            for r in 0..6 {
                m.set(r, c, (r * 2 + c) as f64 * 0.5 - 1.0);
            }
        }
        m
    }

    #[test]
    fn store_load_roundtrip_bit_identical() {
        let dir = scratch("roundtrip");
        let cache = LayoutCache::open(&dir).unwrap();
        let g = grid2d(2, 3);
        let key = cache_key(&g, &ParHdeConfig::default(), 2);
        assert!(cache.load(key).is_none());
        let coords = sample_coords();
        cache.store(key, &coords, "full").unwrap();
        let hit = cache.load(key).unwrap();
        assert_eq!(hit.coords.data(), coords.data());
        assert_eq!(hit.rung, "full");
        assert!(cache.stray_tmp_files().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_evicted_not_served() {
        let dir = scratch("corrupt");
        let cache = LayoutCache::open(&dir).unwrap();
        let key = 0xdead_beef;
        cache.store(key, &sample_coords(), "full").unwrap();
        let path = cache.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        for pos in (0..bytes.len()).step_by(7) {
            let mut evil = bytes.clone();
            evil[pos] ^= 0x10;
            std::fs::write(&path, &evil).unwrap();
            assert!(cache.load(key).is_none(), "corruption at {pos} served");
            // The poisoned entry was evicted.
            assert!(!path.exists(), "corruption at {pos} not evicted");
            cache.store(key, &sample_coords(), "full").unwrap();
            bytes = std::fs::read(&path).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_are_misses() {
        let dir = scratch("trunc");
        let cache = LayoutCache::open(&dir).unwrap();
        let key = 7;
        cache.store(key, &sample_coords(), "trivial").unwrap();
        let path = cache.entry_path(key);
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 5, 17, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(cache.load(key).is_none(), "cut at {cut} served");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_under_right_name_is_a_miss() {
        // An entry renamed (or hash-collided) onto the wrong path must not
        // be served: the embedded key is validated against the request's.
        let dir = scratch("wrongkey");
        let cache = LayoutCache::open(&dir).unwrap();
        cache.store(1, &sample_coords(), "full").unwrap();
        std::fs::rename(cache.entry_path(1), cache.entry_path(2)).unwrap();
        assert!(cache.load(2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_bound_evicts_oldest_first_with_checkpoints() {
        let dir = scratch("bounded");
        let one_entry = encode(0, &sample_coords(), "full").len() as u64;
        // Room for two entries, not three.
        let cache =
            LayoutCache::open_bounded(&dir, Some(2 * one_entry + one_entry / 2)).unwrap();
        for key in [1u64, 2, 3] {
            // Plant a checkpoint dir alongside each entry; eviction must
            // reclaim it too.
            std::fs::create_dir_all(dir.join(format!("ckpt-{key:016x}"))).unwrap();
            cache.store(key, &sample_coords(), "full").unwrap();
        }
        let usage = cache.usage();
        assert_eq!(usage.entries, 2);
        assert_eq!(usage.evictions, 1);
        assert!(usage.bytes <= 2 * one_entry + one_entry / 2);
        // Oldest went, with its checkpoint dir; newest two survive.
        assert!(cache.load(1).is_none());
        assert!(!dir.join(format!("ckpt-{:016x}", 1u64)).exists());
        assert!(cache.load(2).is_some());
        assert!(cache.load(3).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn byte_bound_always_keeps_the_newest_entry() {
        let dir = scratch("keep-newest");
        // A budget smaller than a single entry: store still caches the
        // latest result rather than deleting what it just wrote.
        let cache = LayoutCache::open_bounded(&dir, Some(16)).unwrap();
        cache.store(9, &sample_coords(), "full").unwrap();
        assert!(cache.load(9).is_some());
        assert_eq!(cache.usage().entries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_rebuilds_the_index_and_enforces_the_bound() {
        let dir = scratch("reopen");
        let one_entry = encode(0, &sample_coords(), "full").len() as u64;
        {
            let unbounded = LayoutCache::open(&dir).unwrap();
            for key in 1..=4u64 {
                unbounded.store(key, &sample_coords(), "full").unwrap();
                // Distinct mtimes so eviction order is deterministic.
                std::thread::sleep(std::time::Duration::from_millis(20));
            }
            assert_eq!(unbounded.usage().entries, 4);
        }
        let bounded =
            LayoutCache::open_bounded(&dir, Some(2 * one_entry + one_entry / 2)).unwrap();
        let usage = bounded.usage();
        assert_eq!(usage.entries, 2, "reopen must trim to the bound");
        assert!(bounded.load(3).is_some());
        assert!(bounded.load(4).is_some());
        assert!(bounded.load(1).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_graph_config_and_dimension() {
        let g1 = grid2d(3, 3);
        let g2 = grid2d(3, 4);
        let cfg = ParHdeConfig::default();
        let other_cfg = ParHdeConfig { seed: cfg.seed + 1, ..cfg.clone() };
        let base = cache_key(&g1, &cfg, 2);
        assert_ne!(base, cache_key(&g2, &cfg, 2));
        assert_ne!(base, cache_key(&g1, &other_cfg, 2));
        assert_ne!(base, cache_key(&g1, &cfg, 3));
    }
}
