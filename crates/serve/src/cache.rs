//! The crash-safe, digest-keyed layout cache (DESIGN.md §13.4).
//!
//! Results are keyed by the FNV-1a digests the checkpoint layer already
//! computes — [`parhde::checkpoint::graph_digest`] of the preprocessed
//! graph combined with [`parhde::checkpoint::config_fingerprint`] and the
//! embedding dimension — so a cache hit is *definitionally* the layout an
//! uninterrupted run of that request would produce (the pipeline is
//! deterministic given graph + config + seed).
//!
//! Crash safety is the whole point of the design:
//!
//! * writes stage to a uniquely named `.tmp` in the cache directory and
//!   `rename(2)` into place — a crash mid-write leaves a `.tmp` readers
//!   ignore, never a torn entry under the canonical name;
//! * every entry carries a whole-file FNV-1a checksum; a corrupt or
//!   truncated entry (power loss after rename, disk rot, stray writes) is
//!   detected on load, **deleted**, and treated as a miss — the daemon
//!   recomputes rather than serving poison;
//! * alongside each entry key the cache owns a checkpoint subdirectory:
//!   a request that was cancelled or degraded after its BFS phase leaves a
//!   post-BFS checkpoint there, and the next identical request resumes
//!   from it (warm start) instead of repaying the BFS.

use parhde::checkpoint::{config_fingerprint, graph_digest, Fnv64};
use parhde::config::ParHdeConfig;
use parhde::CheckpointSpec;
use parhde_graph::CsrGraph;
use parhde_linalg::dense::ColMajorMatrix;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Magic bytes opening every cache entry.
pub const MAGIC: [u8; 8] = *b"PHDELAYT";
/// Current entry format version.
pub const FORMAT_VERSION: u32 = 1;

/// Staging-file uniquifier, so concurrent writers never collide.
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A cached layout: the coordinates plus the ladder rung that produced
/// them (reported to clients as provenance).
#[derive(Clone, Debug, PartialEq)]
pub struct CachedLayout {
    /// The `n×p` coordinates.
    pub coords: ColMajorMatrix,
    /// Rung label recorded at store time (`"full"`, `"phde"`, …).
    pub rung: String,
}

/// A directory of layout entries and per-key checkpoint subdirectories.
pub struct LayoutCache {
    dir: PathBuf,
}

/// The cache key of one (graph, config, dimension) request.
pub fn cache_key(g: &CsrGraph, cfg: &ParHdeConfig, p: usize) -> u64 {
    let mut h = Fnv64::new();
    h.update(&graph_digest(g).to_le_bytes());
    h.update(&config_fingerprint(cfg).to_le_bytes());
    h.update(&(p as u64).to_le_bytes());
    h.finish()
}

impl LayoutCache {
    /// Opens (creating if needed) a cache rooted at `dir`.
    ///
    /// # Errors
    /// [`std::io::Error`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<LayoutCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(LayoutCache { dir })
    }

    /// The cache's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Canonical entry path for `key`.
    pub fn entry_path(&self, key: u64) -> PathBuf {
        self.dir.join(format!("layout-{key:016x}.bin"))
    }

    /// The checkpoint spec identical requests share: a cold run writes its
    /// post-BFS checkpoint here, and later identical requests warm-start
    /// from it.
    pub fn checkpoint_spec(&self, key: u64) -> CheckpointSpec {
        CheckpointSpec::in_dir(self.dir.join(format!("ckpt-{key:016x}")))
    }

    /// Loads the entry for `key`. A missing entry is a miss; a corrupt or
    /// torn entry is deleted and reported as a miss (with a counter), so
    /// one bad file can never wedge the key.
    pub fn load(&self, key: u64) -> Option<CachedLayout> {
        let path = self.entry_path(key);
        let bytes = std::fs::read(&path).ok()?;
        match decode(&bytes, key) {
            Some(hit) => Some(hit),
            None => {
                parhde_trace::counter!("serve.cache.corrupt_evicted", 1);
                let _ = std::fs::remove_file(&path);
                None
            }
        }
    }

    /// Stores an entry atomically (unique `.tmp` + rename).
    ///
    /// # Errors
    /// [`std::io::Error`] from the write or rename; the staging file is
    /// removed on a failed rename.
    pub fn store(&self, key: u64, coords: &ColMajorMatrix, rung: &str) -> std::io::Result<()> {
        let bytes = encode(key, coords, rung);
        let final_path = self.entry_path(key);
        let tmp_path = self.dir.join(format!(
            "layout-{key:016x}.{}.{}.tmp",
            std::process::id(),
            TMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::write(&tmp_path, &bytes)?;
        std::fs::rename(&tmp_path, &final_path).inspect_err(|_| {
            let _ = std::fs::remove_file(&tmp_path);
        })?;
        parhde_trace::counter!("serve.cache.store", 1);
        Ok(())
    }

    /// Leftover `.tmp` staging files under the cache root (recursive) —
    /// the chaos harness's atomic-write probe. A clean daemon lifecycle
    /// leaves none.
    pub fn stray_tmp_files(&self) -> Vec<PathBuf> {
        fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
            let Ok(entries) = std::fs::read_dir(dir) else { return };
            for e in entries.flatten() {
                let p = e.path();
                if p.is_dir() {
                    walk(&p, out);
                } else if p.extension().is_some_and(|x| x == "tmp") {
                    out.push(p);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.dir, &mut out);
        out
    }
}

fn encode(key: u64, coords: &ColMajorMatrix, rung: &str) -> Vec<u8> {
    let n = coords.rows();
    let p = coords.cols();
    let mut out = Vec::with_capacity(64 + rung.len() + 8 * n * p);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(rung.len() as u32).to_le_bytes());
    out.extend_from_slice(&key.to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(p as u64).to_le_bytes());
    out.extend_from_slice(rung.as_bytes());
    for &x in coords.data() {
        out.extend_from_slice(&x.to_bits().to_le_bytes());
    }
    let mut h = Fnv64::new();
    h.update(&out);
    out.extend_from_slice(&h.finish().to_le_bytes());
    out
}

/// Decodes and fully validates an entry; `None` on any violation. The
/// checksum runs first, so the structural fields below it are trusted-ish;
/// the arithmetic is still checked — a colliding corruption must fail
/// closed, not wrap a bounds test.
fn decode(bytes: &[u8], want_key: u64) -> Option<CachedLayout> {
    if bytes.len() < MAGIC.len() + 8 || bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let mut h = Fnv64::new();
    h.update(payload);
    if h.finish() != u64::from_le_bytes(tail.try_into().ok()?) {
        return None;
    }
    let fixed = MAGIC.len() + 4 + 4 + 8 + 8 + 8;
    if payload.len() < fixed {
        return None;
    }
    let field_u32 = |at: usize| -> u32 {
        u32::from_le_bytes(payload[at..at + 4].try_into().unwrap_or_default())
    };
    let field_u64 = |at: usize| -> u64 {
        u64::from_le_bytes(payload[at..at + 8].try_into().unwrap_or_default())
    };
    if field_u32(8) != FORMAT_VERSION {
        return None;
    }
    let rung_len = field_u32(12) as usize;
    if field_u64(16) != want_key {
        return None;
    }
    let n = usize::try_from(field_u64(24)).ok()?;
    let p = usize::try_from(field_u64(32)).ok()?;
    let cells = n.checked_mul(p)?;
    let need = fixed
        .checked_add(rung_len)?
        .checked_add(cells.checked_mul(8)?)?;
    if payload.len() != need {
        return None;
    }
    let rung = std::str::from_utf8(&payload[fixed..fixed + rung_len]).ok()?.to_string();
    let mut data = Vec::with_capacity(cells);
    let mut at = fixed + rung_len;
    for _ in 0..cells {
        data.push(f64::from_bits(field_u64(at)));
        at += 8;
    }
    Some(CachedLayout { coords: ColMajorMatrix::from_data(n, p, data), rung })
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::gen::grid2d;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("parhde-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn sample_coords() -> ColMajorMatrix {
        let mut m = ColMajorMatrix::zeros(6, 2);
        for c in 0..2 {
            for r in 0..6 {
                m.set(r, c, (r * 2 + c) as f64 * 0.5 - 1.0);
            }
        }
        m
    }

    #[test]
    fn store_load_roundtrip_bit_identical() {
        let dir = scratch("roundtrip");
        let cache = LayoutCache::open(&dir).unwrap();
        let g = grid2d(2, 3);
        let key = cache_key(&g, &ParHdeConfig::default(), 2);
        assert!(cache.load(key).is_none());
        let coords = sample_coords();
        cache.store(key, &coords, "full").unwrap();
        let hit = cache.load(key).unwrap();
        assert_eq!(hit.coords.data(), coords.data());
        assert_eq!(hit.rung, "full");
        assert!(cache.stray_tmp_files().is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_evicted_not_served() {
        let dir = scratch("corrupt");
        let cache = LayoutCache::open(&dir).unwrap();
        let key = 0xdead_beef;
        cache.store(key, &sample_coords(), "full").unwrap();
        let path = cache.entry_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        for pos in (0..bytes.len()).step_by(7) {
            let mut evil = bytes.clone();
            evil[pos] ^= 0x10;
            std::fs::write(&path, &evil).unwrap();
            assert!(cache.load(key).is_none(), "corruption at {pos} served");
            // The poisoned entry was evicted.
            assert!(!path.exists(), "corruption at {pos} not evicted");
            cache.store(key, &sample_coords(), "full").unwrap();
            bytes = std::fs::read(&path).unwrap();
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_entries_are_misses() {
        let dir = scratch("trunc");
        let cache = LayoutCache::open(&dir).unwrap();
        let key = 7;
        cache.store(key, &sample_coords(), "trivial").unwrap();
        let path = cache.entry_path(key);
        let bytes = std::fs::read(&path).unwrap();
        for cut in [0, 5, 17, bytes.len() / 2, bytes.len() - 1] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(cache.load(key).is_none(), "cut at {cut} served");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wrong_key_under_right_name_is_a_miss() {
        // An entry renamed (or hash-collided) onto the wrong path must not
        // be served: the embedded key is validated against the request's.
        let dir = scratch("wrongkey");
        let cache = LayoutCache::open(&dir).unwrap();
        cache.store(1, &sample_coords(), "full").unwrap();
        std::fs::rename(cache.entry_path(1), cache.entry_path(2)).unwrap();
        assert!(cache.load(2).is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn keys_separate_graph_config_and_dimension() {
        let g1 = grid2d(3, 3);
        let g2 = grid2d(3, 4);
        let cfg = ParHdeConfig::default();
        let other_cfg = ParHdeConfig { seed: cfg.seed + 1, ..cfg.clone() };
        let base = cache_key(&g1, &cfg, 2);
        assert_ne!(base, cache_key(&g2, &cfg, 2));
        assert_ne!(base, cache_key(&g1, &other_cfg, 2));
        assert_ne!(base, cache_key(&g1, &cfg, 3));
    }
}
