//! Blocking clients for the daemon, used by `parhde-loadgen`, the chaos
//! harness, and tests.
//!
//! [`Client`] is the raw single-connection primitive; with the server's
//! keep-alive state machine (DESIGN.md §16.2) one connection now serves
//! many sequential [`Client::call`]s, and [`Client::pipeline`] sends a
//! burst of frames before reading any response. [`RetryingClient`] wraps
//! it with the retry contract (DESIGN.md §16.3): bounded retries on
//! transport errors and retryable statuses (429/503), exponential backoff
//! with decorrelated jitter, floored at the server's `retry-after-ms`
//! hint.

use crate::proto::{self, Request, Response};
use parhde_util::SplitMix64;
use std::net::TcpStream;
use std::time::Duration;

/// One connection to the daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7170`).
    ///
    /// # Errors
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Caps how long [`Client::call`] waits for the response. Layout
    /// requests should set this comfortably above their `deadline-ms`.
    ///
    /// # Errors
    /// Propagates socket option errors.
    pub fn set_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))
    }

    /// Sends one request and waits for its response. On a keep-alive
    /// connection this can be called repeatedly; the server closes after
    /// its per-connection cap (`connection: close` on the last response).
    ///
    /// # Errors
    /// Propagates frame I/O errors; `InvalidData` on an unparseable
    /// response.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        proto::write_frame(&mut self.stream, &req.encode())?;
        let payload = proto::read_frame(&mut self.stream)?;
        Response::parse(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Pipelines a burst: writes every request frame before reading any
    /// response, then reads exactly one response per request, in order.
    /// Exercises the server's ordered writeback — response `k` must
    /// answer request `k`.
    ///
    /// # Errors
    /// Propagates frame I/O errors; `InvalidData` on an unparseable
    /// response. A mid-burst failure loses the remaining responses (the
    /// server cancels buffered successors when a connection dies).
    pub fn pipeline(&mut self, reqs: &[Request]) -> std::io::Result<Vec<Response>> {
        for req in reqs {
            proto::write_frame(&mut self.stream, &req.encode())?;
        }
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            let payload = proto::read_frame(&mut self.stream)?;
            out.push(Response::parse(&payload).map_err(|e| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, e)
            })?);
        }
        Ok(out)
    }

    /// Sends one request and then drops the connection without reading
    /// the response — the chaos harness's "client vanished mid-run".
    ///
    /// # Errors
    /// Propagates frame write errors.
    pub fn fire_and_disconnect(mut self, req: &Request) -> std::io::Result<()> {
        proto::write_frame(&mut self.stream, &req.encode())
    }
}

/// Convenience: one connect → call → disconnect round trip.
///
/// # Errors
/// Propagates [`Client::connect`] and [`Client::call`] errors.
pub fn call_once(
    addr: &str,
    req: &Request,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(timeout)?;
    client.call(req)
}

/// The bounded-retry contract (DESIGN.md §16.3).
///
/// Sleep between attempts follows AWS-style *decorrelated jitter*:
/// `sleep = min(cap, uniform(base, prev_sleep * 3))`, then raised to the
/// server's `retry-after-ms` hint when the response carried one — the
/// server knows its queue better than any client-side formula. Jitter
/// decorrelates a thundering herd of shed clients; honoring the hint
/// keeps a polite client from returning before the server expects
/// capacity.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub max_retries: u32,
    /// Lower bound of every backoff sleep.
    pub base: Duration,
    /// Upper bound of every backoff sleep.
    pub cap: Duration,
    /// Seed of the jitter stream — retries are as reproducible as
    /// everything else in this workspace.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base: Duration::from_millis(25),
            cap: Duration::from_secs(5),
            seed: 0,
        }
    }
}

/// Whether a response status is worth retrying: overload (429) and drain
/// (503) are explicitly temporary; everything else is either success or
/// deterministic (400/408/413 would fail identically again).
pub fn retryable_status(code: u16) -> bool {
    code == proto::OVERLOADED || code == proto::DRAINING
}

/// What one [`RetryingClient::call`] did.
#[derive(Clone, Debug)]
pub struct CallOutcome {
    /// The final response.
    pub response: Response,
    /// Attempts beyond the first (0 = first try succeeded).
    pub retries: u32,
}

/// A [`Client`] wrapper that reuses one keep-alive connection across
/// calls, transparently reconnects when the server closes it (request
/// cap, idle timeout, drain), and retries failed attempts under a
/// [`RetryPolicy`].
pub struct RetryingClient {
    addr: String,
    timeout: Duration,
    policy: RetryPolicy,
    rng: SplitMix64,
    conn: Option<Client>,
    /// Previous backoff sleep, the "decorrelation memory" of the jitter.
    prev_sleep: Duration,
}

impl RetryingClient {
    /// A client for `addr` with a per-call response timeout.
    pub fn new(addr: &str, timeout: Duration, policy: RetryPolicy) -> RetryingClient {
        RetryingClient {
            addr: addr.to_string(),
            timeout,
            policy,
            rng: SplitMix64::new(policy.seed),
            conn: None,
            prev_sleep: Duration::ZERO,
        }
    }

    /// The next decorrelated-jitter sleep, raised to the server hint.
    fn next_sleep(&mut self, hint_ms: Option<u64>) -> Duration {
        let base = self.policy.base.max(Duration::from_millis(1));
        let upper = (self.prev_sleep.max(base)) * 3;
        let span = upper.saturating_sub(base).as_millis() as u64;
        let jittered = base
            + Duration::from_millis(if span == 0 { 0 } else { self.rng.next_u64() % span });
        let mut sleep = jittered.min(self.policy.cap);
        if let Some(hint) = hint_ms {
            sleep = sleep.max(Duration::from_millis(hint)).min(self.policy.cap);
        }
        self.prev_sleep = sleep;
        sleep
    }

    fn connect(&mut self) -> std::io::Result<&mut Client> {
        if self.conn.is_none() {
            let client = Client::connect(&self.addr)?;
            client.set_timeout(self.timeout)?;
            self.conn = Some(client);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    /// One attempt over the pooled connection. Any transport failure
    /// discards the connection so the next attempt reconnects fresh.
    fn attempt(&mut self, req: &Request) -> std::io::Result<Response> {
        let fresh = self.conn.is_none();
        let result = self.connect().and_then(|c| c.call(req));
        match result {
            Ok(resp) => {
                // The server announces the close; believe it rather than
                // discovering it as an error on the next call.
                if resp.header("connection") == Some("close") {
                    self.conn = None;
                }
                Ok(resp)
            }
            Err(e) if !fresh => {
                // A reused connection may have died between calls (idle
                // close racing our write). One immediate same-attempt
                // reconnect is safe and does NOT consume a retry: the
                // request cannot have been processed if the transport was
                // already dead. (A failure *after* processing started is
                // indistinguishable, which is why layout is idempotent —
                // deterministic + cached.)
                self.conn = None;
                let reconnected = self.connect().and_then(|c| c.call(req));
                if reconnected.is_err() {
                    self.conn = None;
                }
                reconnected.map_err(|_| e)
            }
            Err(e) => {
                self.conn = None;
                Err(e)
            }
        }
    }

    /// Calls with bounded retries: transport errors and retryable
    /// statuses (429/503) back off and try again, up to the policy limit.
    ///
    /// # Errors
    /// The *last* transport error once retries are exhausted.
    pub fn call(&mut self, req: &Request) -> std::io::Result<CallOutcome> {
        let mut retries = 0u32;
        loop {
            let outcome = self.attempt(req);
            let give_up = retries >= self.policy.max_retries;
            match outcome {
                Ok(resp) if !retryable_status(resp.code) || give_up => {
                    return Ok(CallOutcome { response: resp, retries });
                }
                Ok(resp) => {
                    let hint = resp
                        .header("retry-after-ms")
                        .and_then(|v| v.parse::<u64>().ok());
                    std::thread::sleep(self.next_sleep(hint));
                }
                Err(e) if give_up => return Err(e),
                Err(_) => {
                    std::thread::sleep(self.next_sleep(None));
                }
            }
            retries += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryable_statuses_are_exactly_the_temporary_ones() {
        assert!(retryable_status(proto::OVERLOADED));
        assert!(retryable_status(proto::DRAINING));
        for code in [
            proto::OK,
            proto::BAD_REQUEST,
            proto::TIMEOUT,
            proto::TOO_LARGE,
            proto::CANCELLED,
            proto::INTERNAL,
        ] {
            assert!(!retryable_status(code), "{code} must not be retried");
        }
    }

    #[test]
    fn jitter_is_bounded_seeded_and_honors_the_hint() {
        let policy = RetryPolicy {
            max_retries: 3,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(400),
            seed: 7,
        };
        let mut a = RetryingClient::new("127.0.0.1:1", Duration::from_secs(1), policy);
        let mut b = RetryingClient::new("127.0.0.1:1", Duration::from_secs(1), policy);
        let mut prev_upper = policy.base * 3;
        for _ in 0..32 {
            let sa = a.next_sleep(None);
            let sb = b.next_sleep(None);
            assert_eq!(sa, sb, "same seed, same jitter schedule");
            assert!(sa >= policy.base && sa <= policy.cap, "{sa:?} out of bounds");
            assert!(sa <= prev_upper.min(policy.cap), "{sa:?} over decorrelation bound");
            prev_upper = sa.max(policy.base) * 3;
        }
        // The server hint floors the sleep (still capped).
        let hinted = a.next_sleep(Some(250));
        assert!(hinted >= Duration::from_millis(250) && hinted <= policy.cap);
        let capped = a.next_sleep(Some(60_000));
        assert_eq!(capped, policy.cap, "hint must not exceed the cap");
    }

    #[test]
    fn different_seeds_decorrelate() {
        let mk = |seed| RetryPolicy { seed, ..RetryPolicy::default() };
        let mut a = RetryingClient::new("127.0.0.1:1", Duration::from_secs(1), mk(1));
        let mut b = RetryingClient::new("127.0.0.1:1", Duration::from_secs(1), mk(2));
        let sa: Vec<_> = (0..16).map(|_| a.next_sleep(None)).collect();
        let sb: Vec<_> = (0..16).map(|_| b.next_sleep(None)).collect();
        assert_ne!(sa, sb, "two herd members must not back off in lockstep");
    }
}
