//! A minimal blocking client for the daemon, used by `parhde-loadgen`,
//! the chaos harness, and tests. One request per connection.

use crate::proto::{self, Request, Response};
use std::net::TcpStream;
use std::time::Duration;

/// One connection to the daemon.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to `addr` (e.g. `127.0.0.1:7170`).
    ///
    /// # Errors
    /// Propagates connection errors.
    pub fn connect(addr: &str) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    /// Caps how long [`Client::call`] waits for the response. Layout
    /// requests should set this comfortably above their `deadline-ms`.
    ///
    /// # Errors
    /// Propagates socket option errors.
    pub fn set_timeout(&self, timeout: Duration) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(timeout))?;
        self.stream.set_write_timeout(Some(timeout))
    }

    /// Sends one request and waits for its response.
    ///
    /// # Errors
    /// Propagates frame I/O errors; `InvalidData` on an unparseable
    /// response.
    pub fn call(&mut self, req: &Request) -> std::io::Result<Response> {
        proto::write_frame(&mut self.stream, &req.encode())?;
        let payload = proto::read_frame(&mut self.stream)?;
        Response::parse(&payload)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }

    /// Sends one request and then drops the connection without reading
    /// the response — the chaos harness's "client vanished mid-run".
    ///
    /// # Errors
    /// Propagates frame write errors.
    pub fn fire_and_disconnect(mut self, req: &Request) -> std::io::Result<()> {
        proto::write_frame(&mut self.stream, &req.encode())
    }
}

/// Convenience: one connect → call → disconnect round trip.
///
/// # Errors
/// Propagates [`Client::connect`] and [`Client::call`] errors.
pub fn call_once(
    addr: &str,
    req: &Request,
    timeout: Duration,
) -> std::io::Result<Response> {
    let mut client = Client::connect(addr)?;
    client.set_timeout(timeout)?;
    client.call(req)
}
