//! Layout-as-a-service: a length-prefixed TCP daemon around the supervised
//! ParHDE pipeline (DESIGN.md §13).
//!
//! The ROADMAP's north star is serving layouts to many tenants from one
//! machine. The pieces built by earlier PRs — fail-soft typed errors, the
//! [`parhde_util::supervisor`] run budgets, the degraded-retry ladder, and
//! post-BFS checkpoints — were all designed for that regime; this crate is
//! the service shell that exercises them under *concurrent* requests:
//!
//! * [`proto`] — the `u32`-length-prefixed framed wire protocol: a text
//!   request (op line, headers, optional inline graph body) and a text
//!   response (status line, headers, coordinate CSV body).
//! * [`budget`] — the shared soft memory budget: concurrent requests
//!   reserve their estimated working set before running; admission halves
//!   a request's subspace until it fits what is *currently* free, sheds
//!   with a typed 429 + retry-after hint when nothing fits now, and with
//!   413 when the request could never fit the configured budget.
//! * [`cache`] — the crash-safe digest-keyed result cache: layouts are
//!   keyed by the FNV-1a graph digest + config fingerprint the checkpoint
//!   layer already computes, written atomically (`.tmp` + rename), and
//!   self-verifying (whole-file checksum) so a torn or corrupted entry is
//!   deleted and treated as a miss, never served.
//! * [`server`] — the daemon: a bounded accept queue feeding a worker
//!   pool; every request runs under its own [`parhde_util::RunBudget`]
//!   (deadline slice armed from the moment of acceptance, cancel flag set
//!   by a client-disconnect watchdog) and degrades through the retry
//!   ladder instead of failing; first SIGINT/SIGTERM drains, the second
//!   force-exits 130.
//! * [`client`] — blocking clients used by `parhde-loadgen`, the chaos
//!   harness, and tests: the raw [`client::Client`] plus
//!   [`client::RetryingClient`], which reuses a keep-alive connection and
//!   retries under the bounded decorrelated-jitter contract of
//!   DESIGN.md §16.3.
//!
//! PR 9 hardened the connection lifecycle (DESIGN.md §16): connections
//! are keep-alive with request pipelining under a per-connection state
//! machine with staged read deadlines, request caps, and idle timeouts;
//! the whole serving path is threaded with deterministic
//! [`parhde_util::failpoint`] sites so chaos runs are seeded and
//! reproducible.

#![warn(missing_docs)]

pub mod budget;
pub mod cache;
pub mod client;
pub mod proto;
pub mod server;

pub use budget::SharedSoftBudget;
pub use cache::LayoutCache;
pub use client::{Client, RetryPolicy, RetryingClient};
pub use proto::{Request, Response};
pub use server::{Server, ServerConfig};
