//! The framed wire protocol (DESIGN.md §13.1).
//!
//! Every message — request or response — is one frame: a little-endian
//! `u32` payload length followed by that many bytes of UTF-8 text. The
//! text payload is HTTP-shaped but deliberately not HTTP:
//!
//! ```text
//! PARHDE/1 LAYOUT          PARHDE/1 200 ok
//! graph: gen:grid:30:30    n: 900
//! deadline-ms: 2000        rung: full
//!                          cache: cold
//! <optional body>          <coordinate CSV body>
//! ```
//!
//! A `u32` length prefix capped at [`MAX_FRAME`] keeps a hostile or
//! corrupted peer from inducing an unbounded allocation, and framing
//! (rather than delimiter scanning) means a slow or truncated write is
//! detected as a short read, never misparsed as a smaller message.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Hard cap on one frame's payload: large enough for a multi-million-edge
/// inline edge list or coordinate set, small enough that a hostile length
/// prefix cannot exhaust memory.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Protocol identifier opening every message.
pub const PROTO: &str = "PARHDE/1";

/// Success.
pub const OK: u16 = 200;
/// Malformed request, unparseable graph, or a graph the pipeline rejects.
pub const BAD_REQUEST: u16 = 400;
/// The request's deadline elapsed before a worker could start it.
pub const TIMEOUT: u16 = 408;
/// The request can never fit the server's total memory budget.
pub const TOO_LARGE: u16 = 413;
/// Overloaded: the queue or the shared memory budget is full *right now*;
/// retry after the hinted backoff.
pub const OVERLOADED: u16 = 429;
/// The client disconnected while its request was in flight.
pub const CANCELLED: u16 = 499;
/// An internal error the typed error layer classifies as a bug.
pub const INTERNAL: u16 = 500;
/// The daemon is draining and accepts no new work.
pub const DRAINING: u16 = 503;

/// Writes one frame.
///
/// # Errors
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing [`MAX_FRAME`] *before* allocating.
///
/// # Errors
/// Propagates I/O errors (including `UnexpectedEof` on truncation) and
/// rejects oversized length prefixes as `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Staged deadlines for [`read_frame_staged`] (DESIGN.md §16.2).
///
/// A keep-alive connection has two distinct waiting regimes: *idle*
/// (between frames — nothing has arrived, waiting is normal and cheap)
/// and *mid-frame* (the first byte of a length prefix has arrived — the
/// peer owes us a whole frame). The old flat
/// `set_read_timeout(2s)` + `read_exact` conflated them: each received
/// byte reset the clock, so a byte-dripping client could hold a worker
/// forever at one byte per 2 s. Here the frame clock starts at the first
/// byte and never resets.
#[derive(Clone, Copy, Debug)]
pub struct ReadBudget {
    /// How long to wait for the *first byte* of the next frame.
    pub idle: Duration,
    /// Wall-clock budget for one whole frame (prefix + payload), counted
    /// from its first byte.
    pub frame: Duration,
}

/// Why [`read_frame_staged`] returned without a frame.
#[derive(Debug)]
pub enum FrameError {
    /// No byte arrived within the idle budget. Close quietly.
    Idle,
    /// The abort condition (drain) became true while idle. Close quietly.
    Aborted,
    /// Clean EOF on a frame boundary. Close quietly.
    Eof,
    /// EOF after the frame started: the peer died mid-frame.
    TruncatedEof,
    /// The frame's first byte arrived but the whole frame did not land
    /// within the frame budget (byte-dripping or a stalled peer).
    Timeout,
    /// The length prefix exceeds [`MAX_FRAME`]; payload never allocated.
    TooLarge(u32),
    /// A real transport error.
    Io(std::io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Idle => write!(f, "idle timeout waiting for next frame"),
            FrameError::Aborted => write!(f, "aborted while idle"),
            FrameError::Eof => write!(f, "clean EOF on frame boundary"),
            FrameError::TruncatedEof => write!(f, "EOF mid-frame"),
            FrameError::Timeout => write!(f, "frame budget exhausted mid-frame"),
            FrameError::TooLarge(len) => {
                write!(f, "frame length {len} exceeds cap {MAX_FRAME}")
            }
            FrameError::Io(e) => write!(f, "transport error: {e}"),
        }
    }
}

/// Granularity of the poll loop inside [`read_frame_staged`]. Small
/// enough that drain aborts and deadline checks stay responsive, large
/// enough that an idle connection costs a handful of syscalls per second.
const POLL_SLICE: Duration = Duration::from_millis(100);

/// One bounded poll: sets the stream's read timeout to the remaining
/// slice and reads whatever is available. Returns the byte count.
fn poll_read(
    stream: &TcpStream,
    buf: &mut [u8],
    budget: &ReadBudget,
    idle_start: Instant,
    frame_start: Option<Instant>,
    abort: &impl Fn() -> bool,
) -> Result<usize, FrameError> {
    loop {
        // Recompute the governing deadline every slice: the regime flips
        // from idle to frame once the first byte lands, and the frame
        // clock must never reset on progress.
        let remaining = match frame_start {
            None => budget
                .idle
                .checked_sub(idle_start.elapsed())
                .ok_or(FrameError::Idle)?,
            Some(t0) => budget
                .frame
                .checked_sub(t0.elapsed())
                .ok_or(FrameError::Timeout)?,
        };
        // set_read_timeout rejects zero; clamp the slice to ≥ 1 ms. This
        // must be (re)set before every read: the disconnect watchdog's
        // `try_clone` shares the file description, so its 1 ms probe
        // timeout would otherwise stick to this stream.
        let slice = remaining.min(POLL_SLICE).max(Duration::from_millis(1));
        stream.set_read_timeout(Some(slice)).map_err(FrameError::Io)?;
        match Read::read(&mut { stream }, buf) {
            Ok(0) => {
                return Err(match frame_start {
                    None => FrameError::Eof,
                    Some(_) => FrameError::TruncatedEof,
                })
            }
            Ok(n) => return Ok(n),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                // Abort is checked only after an *empty* slice: bytes the
                // peer already sent always win over the abort condition,
                // so a draining server still reads — and answers — a
                // request that was fully buffered before drain began.
                if frame_start.is_none() && abort() {
                    return Err(FrameError::Aborted);
                }
                continue;
            }
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
}

/// Reads one frame under staged deadlines (DESIGN.md §16.2).
///
/// Waits up to `budget.idle` for the first byte; from that byte on, the
/// entire frame must land within `budget.frame` of wall clock — progress
/// does not extend the deadline, which is what defeats byte-dripping
/// (slowloris) clients. `abort` is polled (≈ every [`POLL_SLICE`]) only
/// while idle, so a draining server reclaims parked keep-alive workers
/// promptly but still finishes — and answers — a frame already in
/// flight.
///
/// On success returns the payload and the instant the frame's first byte
/// arrived, which the server uses as the queue-admission timestamp for
/// pipelined requests.
///
/// # Errors
/// A typed [`FrameError`]; `Idle`, `Aborted`, and `Eof` are the quiet
/// close paths of a healthy keep-alive connection.
pub fn read_frame_staged(
    stream: &TcpStream,
    budget: &ReadBudget,
    abort: impl Fn() -> bool,
) -> Result<(Vec<u8>, Instant), FrameError> {
    let idle_start = Instant::now();
    let mut frame_start: Option<Instant> = None;
    let mut prefix = [0u8; 4];
    let mut got = 0usize;
    while got < 4 {
        let n = poll_read(stream, &mut prefix[got..], budget, idle_start, frame_start, &abort)?;
        if frame_start.is_none() {
            frame_start = Some(Instant::now());
        }
        got += n;
    }
    let t0 = frame_start.unwrap_or(idle_start);
    let len = u32::from_le_bytes(prefix);
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let mut payload = vec![0u8; len as usize];
    let mut got = 0usize;
    while got < payload.len() {
        let n = poll_read(
            stream,
            &mut payload[got..],
            budget,
            idle_start,
            frame_start,
            &abort,
        )?;
        got += n;
    }
    Ok((payload, t0))
}

/// Operations a client can request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Lay out a graph.
    Layout,
    /// Health probe; never queued, never sheds.
    Ping,
    /// Telemetry scrape: a metrics-registry snapshot (Prometheus text by
    /// default, NDJSON with `format: ndjson`). Never takes the layout lock.
    Stats,
}

/// A parsed request frame.
#[derive(Clone, Debug)]
pub struct Request {
    /// The requested operation.
    pub op: Op,
    /// Header key–value pairs, keys lowercased.
    pub headers: Vec<(String, String)>,
    /// Everything after the blank line (inline graph text for `LAYOUT`).
    pub body: String,
}

impl Request {
    /// A bare request with no headers or body.
    pub fn new(op: Op) -> Self {
        Request { op, headers: Vec::new(), body: String::new() }
    }

    /// Appends a header.
    pub fn with(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.headers.push((key.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of `key`, if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Encodes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let op = match self.op {
            Op::Layout => "LAYOUT",
            Op::Ping => "PING",
            Op::Stats => "STATS",
        };
        let mut out = format!("{PROTO} {op}\n");
        for (k, v) in &self.headers {
            out.push_str(&format!("{k}: {v}\n"));
        }
        out.push('\n');
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Parses a request payload.
    ///
    /// # Errors
    /// A description of the first structural violation.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?;
        let (head, body) = split_head(text);
        let mut lines = head.lines();
        let first = lines.next().ok_or("empty request")?;
        let mut words = first.split_whitespace();
        if words.next() != Some(PROTO) {
            return Err(format!("unknown protocol in {first:?}"));
        }
        let op = match words.next() {
            Some("LAYOUT") => Op::Layout,
            Some("PING") => Op::Ping,
            Some("STATS") => Op::Stats,
            other => return Err(format!("unknown op {other:?}")),
        };
        let headers = parse_headers(lines)?;
        Ok(Request { op, headers, body: body.to_string() })
    }
}

/// A parsed response frame.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (HTTP-flavored, see this module's constants).
    pub code: u16,
    /// Short human-readable reason.
    pub reason: String,
    /// Header key–value pairs, keys lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body (coordinate CSV on success, empty otherwise).
    pub body: String,
}

impl Response {
    /// A response with the given status and reason.
    pub fn new(code: u16, reason: &str) -> Self {
        Response {
            code,
            reason: reason.to_string(),
            headers: Vec::new(),
            body: String::new(),
        }
    }

    /// Appends a header.
    pub fn with(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.headers.push((key.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of `key`, if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether the status code is 200.
    pub fn is_ok(&self) -> bool {
        self.code == OK
    }

    /// Encodes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("{PROTO} {} {}\n", self.code, self.reason);
        for (k, v) in &self.headers {
            out.push_str(&format!("{k}: {v}\n"));
        }
        out.push('\n');
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Parses a response payload.
    ///
    /// # Errors
    /// A description of the first structural violation.
    pub fn parse(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?;
        let (head, body) = split_head(text);
        let mut lines = head.lines();
        let first = lines.next().ok_or("empty response")?;
        let mut words = first.split_whitespace();
        if words.next() != Some(PROTO) {
            return Err(format!("unknown protocol in {first:?}"));
        }
        let code: u16 = words
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| format!("bad status line {first:?}"))?;
        let reason = words.collect::<Vec<_>>().join(" ");
        let headers = parse_headers(lines)?;
        Ok(Response { code, reason, headers, body: body.to_string() })
    }
}

/// Splits a text payload at the first blank line into (head, body).
fn split_head(text: &str) -> (&str, &str) {
    match text.find("\n\n") {
        Some(i) => (&text[..i], &text[i + 2..]),
        None => (text, ""),
    }
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, String> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| format!("bad header {line:?}"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::new(Op::Layout)
            .with("graph", "gen:grid:4:5")
            .with("Deadline-Ms", 250)
            .with("subspace", 8);
        let parsed = Request::parse(&req.encode()).unwrap();
        assert_eq!(parsed.op, Op::Layout);
        assert_eq!(parsed.header("graph"), Some("gen:grid:4:5"));
        assert_eq!(parsed.header("deadline-ms"), Some("250"));
        assert_eq!(parsed.body, "");
    }

    #[test]
    fn request_with_body_roundtrip() {
        let mut req = Request::new(Op::Layout).with("graph", "inline");
        req.body = "0 1\n1 2\n2 0\n".into();
        let parsed = Request::parse(&req.encode()).unwrap();
        assert_eq!(parsed.body, "0 1\n1 2\n2 0\n");
    }

    #[test]
    fn stats_roundtrip() {
        let req = Request::new(Op::Stats).with("format", "ndjson");
        let parsed = Request::parse(&req.encode()).unwrap();
        assert_eq!(parsed.op, Op::Stats);
        assert_eq!(parsed.header("format"), Some("ndjson"));
    }

    #[test]
    fn response_roundtrip() {
        let mut resp = Response::new(OK, "ok").with("n", 9).with("rung", "full");
        resp.body = "0,1\n2,3\n".into();
        let parsed = Response::parse(&resp.encode()).unwrap();
        assert!(parsed.is_ok());
        assert_eq!(parsed.header("n"), Some("9"));
        assert_eq!(parsed.body, "0,1\n2,3\n");
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), b"hello");

        // A hostile length prefix is rejected before allocation.
        let evil = (MAX_FRAME + 1).to_le_bytes();
        let err = read_frame(&mut evil.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_short_reads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncate me").unwrap();
        let cut = &buf[..buf.len() - 3];
        let err = read_frame(&mut &cut[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_parses_to_typed_errors() {
        assert!(Request::parse(b"HTTP/1.1 GET /").is_err());
        assert!(Request::parse(b"PARHDE/1 FROBNICATE\n\n").is_err());
        assert!(Response::parse(b"PARHDE/1 notanumber ok\n\n").is_err());
        assert!(Request::parse(&[0xff, 0xfe, 0x00]).is_err());
    }

    #[test]
    fn zero_length_frame_reads_but_parses_to_typed_error() {
        // A 0-byte payload is a legal *frame* (the prefix is honest) but
        // an illegal *request*: it must surface as a parse error the
        // server answers with 400, never as a panic or a hang.
        let mut buf = Vec::new();
        write_frame(&mut buf, b"").unwrap();
        assert_eq!(buf, vec![0, 0, 0, 0]);
        let payload = read_frame(&mut buf.as_slice()).unwrap();
        assert!(payload.is_empty());
        assert!(Request::parse(&payload).unwrap_err().contains("empty request"));
    }

    #[test]
    fn frame_cap_is_exact_at_the_boundary() {
        // Exactly MAX_FRAME is accepted; MAX_FRAME + 1 is rejected
        // before the payload allocation.
        let head = MAX_FRAME.to_le_bytes();
        let mut r = head.chain(std::io::repeat(0x2a).take(u64::from(MAX_FRAME)));
        let payload = read_frame(&mut r).unwrap();
        assert_eq!(payload.len(), MAX_FRAME as usize);
        assert_eq!(payload[MAX_FRAME as usize - 1], 0x2a);
        drop(payload);

        let head = (MAX_FRAME + 1).to_le_bytes();
        let mut r = head.chain(std::io::repeat(0).take(u64::from(MAX_FRAME) + 1));
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    /// Loopback socket pair for the staged-reader tests.
    fn socket_pair() -> (TcpStream, TcpStream) {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        (client, server)
    }

    #[test]
    fn staged_read_reassembles_header_split_across_segments() {
        let (client, server) = socket_pair();
        let body = Request::new(Op::Ping).encode();
        let mut frame = Vec::new();
        write_frame(&mut frame, &body).unwrap();
        let writer = std::thread::spawn(move || {
            let mut c = &client;
            // Drip the length prefix two bytes at a time, then the
            // payload in two segments, with real gaps between writes.
            c.write_all(&frame[..2]).unwrap();
            std::thread::sleep(Duration::from_millis(40));
            c.write_all(&frame[2..4]).unwrap();
            std::thread::sleep(Duration::from_millis(40));
            let mid = 4 + (frame.len() - 4) / 2;
            c.write_all(&frame[4..mid]).unwrap();
            std::thread::sleep(Duration::from_millis(40));
            c.write_all(&frame[mid..]).unwrap();
        });
        let budget = ReadBudget {
            idle: Duration::from_secs(2),
            frame: Duration::from_secs(2),
        };
        let (payload, _t0) = read_frame_staged(&server, &budget, || false).unwrap();
        assert_eq!(payload, body);
        writer.join().unwrap();
    }

    #[test]
    fn staged_read_times_out_on_byte_drip_without_resetting() {
        let (client, server) = socket_pair();
        let writer = std::thread::spawn(move || {
            let mut c = &client;
            // One byte every 60 ms would satisfy a per-read timeout
            // forever; the whole-frame budget must still trip.
            for b in 0u8..20 {
                if c.write_all(&[b]).is_err() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(60));
            }
        });
        let budget = ReadBudget {
            idle: Duration::from_secs(5),
            frame: Duration::from_millis(250),
        };
        let t0 = Instant::now();
        let err = read_frame_staged(&server, &budget, || false).unwrap_err();
        assert!(matches!(err, FrameError::Timeout), "got {err}");
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_secs(2),
            "budget must not reset per byte (took {elapsed:?})"
        );
        drop(server);
        writer.join().unwrap();
    }

    #[test]
    fn staged_read_idle_and_abort_paths() {
        let (_client, server) = socket_pair();
        let budget = ReadBudget {
            idle: Duration::from_millis(120),
            frame: Duration::from_secs(1),
        };
        let err = read_frame_staged(&server, &budget, || false).unwrap_err();
        assert!(matches!(err, FrameError::Idle), "got {err}");

        let long = ReadBudget { idle: Duration::from_secs(10), frame: Duration::from_secs(1) };
        let t0 = Instant::now();
        let err = read_frame_staged(&server, &long, || true).unwrap_err();
        assert!(matches!(err, FrameError::Aborted), "got {err}");
        assert!(t0.elapsed() < Duration::from_secs(2), "abort must be prompt");
    }

    #[test]
    fn staged_read_reports_clean_vs_truncated_eof() {
        let (client, server) = socket_pair();
        drop(client);
        let budget = ReadBudget {
            idle: Duration::from_secs(1),
            frame: Duration::from_secs(1),
        };
        let err = read_frame_staged(&server, &budget, || false).unwrap_err();
        assert!(matches!(err, FrameError::Eof), "got {err}");

        let (client, server) = socket_pair();
        {
            let mut c = &client;
            c.write_all(&[7, 0]).unwrap(); // half a length prefix
        }
        drop(client);
        let err = read_frame_staged(&server, &budget, || false).unwrap_err();
        assert!(matches!(err, FrameError::TruncatedEof), "got {err}");
    }

    #[test]
    fn staged_read_rejects_hostile_length_before_allocating() {
        let (client, server) = socket_pair();
        {
            let mut c = &client;
            c.write_all(&(MAX_FRAME + 1).to_le_bytes()).unwrap();
        }
        let budget = ReadBudget {
            idle: Duration::from_secs(1),
            frame: Duration::from_secs(1),
        };
        let err = read_frame_staged(&server, &budget, || false).unwrap_err();
        assert!(matches!(err, FrameError::TooLarge(l) if l == MAX_FRAME + 1), "got {err}");
    }
}
