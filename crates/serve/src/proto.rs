//! The framed wire protocol (DESIGN.md §13.1).
//!
//! Every message — request or response — is one frame: a little-endian
//! `u32` payload length followed by that many bytes of UTF-8 text. The
//! text payload is HTTP-shaped but deliberately not HTTP:
//!
//! ```text
//! PARHDE/1 LAYOUT          PARHDE/1 200 ok
//! graph: gen:grid:30:30    n: 900
//! deadline-ms: 2000        rung: full
//!                          cache: cold
//! <optional body>          <coordinate CSV body>
//! ```
//!
//! A `u32` length prefix capped at [`MAX_FRAME`] keeps a hostile or
//! corrupted peer from inducing an unbounded allocation, and framing
//! (rather than delimiter scanning) means a slow or truncated write is
//! detected as a short read, never misparsed as a smaller message.

use std::io::{Read, Write};

/// Hard cap on one frame's payload: large enough for a multi-million-edge
/// inline edge list or coordinate set, small enough that a hostile length
/// prefix cannot exhaust memory.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Protocol identifier opening every message.
pub const PROTO: &str = "PARHDE/1";

/// Success.
pub const OK: u16 = 200;
/// Malformed request, unparseable graph, or a graph the pipeline rejects.
pub const BAD_REQUEST: u16 = 400;
/// The request's deadline elapsed before a worker could start it.
pub const TIMEOUT: u16 = 408;
/// The request can never fit the server's total memory budget.
pub const TOO_LARGE: u16 = 413;
/// Overloaded: the queue or the shared memory budget is full *right now*;
/// retry after the hinted backoff.
pub const OVERLOADED: u16 = 429;
/// The client disconnected while its request was in flight.
pub const CANCELLED: u16 = 499;
/// An internal error the typed error layer classifies as a bug.
pub const INTERNAL: u16 = 500;
/// The daemon is draining and accepts no new work.
pub const DRAINING: u16 = 503;

/// Writes one frame.
///
/// # Errors
/// Propagates I/O errors; rejects payloads over [`MAX_FRAME`].
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= MAX_FRAME)
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame, enforcing [`MAX_FRAME`] *before* allocating.
///
/// # Errors
/// Propagates I/O errors (including `UnexpectedEof` on truncation) and
/// rejects oversized length prefixes as `InvalidData`.
pub fn read_frame(r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len_bytes = [0u8; 4];
    r.read_exact(&mut len_bytes)?;
    let len = u32::from_le_bytes(len_bytes);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Operations a client can request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Lay out a graph.
    Layout,
    /// Health probe; never queued, never sheds.
    Ping,
    /// Telemetry scrape: a metrics-registry snapshot (Prometheus text by
    /// default, NDJSON with `format: ndjson`). Never takes the layout lock.
    Stats,
}

/// A parsed request frame.
#[derive(Clone, Debug)]
pub struct Request {
    /// The requested operation.
    pub op: Op,
    /// Header key–value pairs, keys lowercased.
    pub headers: Vec<(String, String)>,
    /// Everything after the blank line (inline graph text for `LAYOUT`).
    pub body: String,
}

impl Request {
    /// A bare request with no headers or body.
    pub fn new(op: Op) -> Self {
        Request { op, headers: Vec::new(), body: String::new() }
    }

    /// Appends a header.
    pub fn with(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.headers.push((key.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of `key`, if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Encodes the request payload.
    pub fn encode(&self) -> Vec<u8> {
        let op = match self.op {
            Op::Layout => "LAYOUT",
            Op::Ping => "PING",
            Op::Stats => "STATS",
        };
        let mut out = format!("{PROTO} {op}\n");
        for (k, v) in &self.headers {
            out.push_str(&format!("{k}: {v}\n"));
        }
        out.push('\n');
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Parses a request payload.
    ///
    /// # Errors
    /// A description of the first structural violation.
    pub fn parse(payload: &[u8]) -> Result<Request, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?;
        let (head, body) = split_head(text);
        let mut lines = head.lines();
        let first = lines.next().ok_or("empty request")?;
        let mut words = first.split_whitespace();
        if words.next() != Some(PROTO) {
            return Err(format!("unknown protocol in {first:?}"));
        }
        let op = match words.next() {
            Some("LAYOUT") => Op::Layout,
            Some("PING") => Op::Ping,
            Some("STATS") => Op::Stats,
            other => return Err(format!("unknown op {other:?}")),
        };
        let headers = parse_headers(lines)?;
        Ok(Request { op, headers, body: body.to_string() })
    }
}

/// A parsed response frame.
#[derive(Clone, Debug)]
pub struct Response {
    /// Status code (HTTP-flavored, see this module's constants).
    pub code: u16,
    /// Short human-readable reason.
    pub reason: String,
    /// Header key–value pairs, keys lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body (coordinate CSV on success, empty otherwise).
    pub body: String,
}

impl Response {
    /// A response with the given status and reason.
    pub fn new(code: u16, reason: &str) -> Self {
        Response {
            code,
            reason: reason.to_string(),
            headers: Vec::new(),
            body: String::new(),
        }
    }

    /// Appends a header.
    pub fn with(mut self, key: &str, value: impl std::fmt::Display) -> Self {
        self.headers.push((key.to_ascii_lowercase(), value.to_string()));
        self
    }

    /// First value of `key`, if present.
    pub fn header(&self, key: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether the status code is 200.
    pub fn is_ok(&self) -> bool {
        self.code == OK
    }

    /// Encodes the response payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = format!("{PROTO} {} {}\n", self.code, self.reason);
        for (k, v) in &self.headers {
            out.push_str(&format!("{k}: {v}\n"));
        }
        out.push('\n');
        out.push_str(&self.body);
        out.into_bytes()
    }

    /// Parses a response payload.
    ///
    /// # Errors
    /// A description of the first structural violation.
    pub fn parse(payload: &[u8]) -> Result<Response, String> {
        let text = std::str::from_utf8(payload).map_err(|e| format!("not UTF-8: {e}"))?;
        let (head, body) = split_head(text);
        let mut lines = head.lines();
        let first = lines.next().ok_or("empty response")?;
        let mut words = first.split_whitespace();
        if words.next() != Some(PROTO) {
            return Err(format!("unknown protocol in {first:?}"));
        }
        let code: u16 = words
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| format!("bad status line {first:?}"))?;
        let reason = words.collect::<Vec<_>>().join(" ");
        let headers = parse_headers(lines)?;
        Ok(Response { code, reason, headers, body: body.to_string() })
    }
}

/// Splits a text payload at the first blank line into (head, body).
fn split_head(text: &str) -> (&str, &str) {
    match text.find("\n\n") {
        Some(i) => (&text[..i], &text[i + 2..]),
        None => (text, ""),
    }
}

fn parse_headers<'a>(
    lines: impl Iterator<Item = &'a str>,
) -> Result<Vec<(String, String)>, String> {
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (k, v) = line.split_once(':').ok_or_else(|| format!("bad header {line:?}"))?;
        headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string()));
    }
    Ok(headers)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrip() {
        let req = Request::new(Op::Layout)
            .with("graph", "gen:grid:4:5")
            .with("Deadline-Ms", 250)
            .with("subspace", 8);
        let parsed = Request::parse(&req.encode()).unwrap();
        assert_eq!(parsed.op, Op::Layout);
        assert_eq!(parsed.header("graph"), Some("gen:grid:4:5"));
        assert_eq!(parsed.header("deadline-ms"), Some("250"));
        assert_eq!(parsed.body, "");
    }

    #[test]
    fn request_with_body_roundtrip() {
        let mut req = Request::new(Op::Layout).with("graph", "inline");
        req.body = "0 1\n1 2\n2 0\n".into();
        let parsed = Request::parse(&req.encode()).unwrap();
        assert_eq!(parsed.body, "0 1\n1 2\n2 0\n");
    }

    #[test]
    fn stats_roundtrip() {
        let req = Request::new(Op::Stats).with("format", "ndjson");
        let parsed = Request::parse(&req.encode()).unwrap();
        assert_eq!(parsed.op, Op::Stats);
        assert_eq!(parsed.header("format"), Some("ndjson"));
    }

    #[test]
    fn response_roundtrip() {
        let mut resp = Response::new(OK, "ok").with("n", 9).with("rung", "full");
        resp.body = "0,1\n2,3\n".into();
        let parsed = Response::parse(&resp.encode()).unwrap();
        assert!(parsed.is_ok());
        assert_eq!(parsed.header("n"), Some("9"));
        assert_eq!(parsed.body, "0,1\n2,3\n");
    }

    #[test]
    fn frames_roundtrip_and_reject_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        assert_eq!(read_frame(&mut buf.as_slice()).unwrap(), b"hello");

        // A hostile length prefix is rejected before allocation.
        let evil = (MAX_FRAME + 1).to_le_bytes();
        let err = read_frame(&mut evil.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_frames_are_short_reads() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"truncate me").unwrap();
        let cut = &buf[..buf.len() - 3];
        let err = read_frame(&mut &cut[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn garbage_parses_to_typed_errors() {
        assert!(Request::parse(b"HTTP/1.1 GET /").is_err());
        assert!(Request::parse(b"PARHDE/1 FROBNICATE\n\n").is_err());
        assert!(Response::parse(b"PARHDE/1 notanumber ok\n\n").is_err());
        assert!(Request::parse(&[0xff, 0xfe, 0x00]).is_err());
    }
}
