//! The daemon: bounded accept queue, worker pool, per-request supervision,
//! disconnect watchdog, and graceful drain (DESIGN.md §13.2, §13.5).
//!
//! Request lifecycle:
//!
//! ```text
//! accept ── queue full? ──► 429 + retry-after          (shed, never queued)
//!    │
//!    ▼ queued (deadline clock already running)
//! worker: parse ─► 400 | resolve graph ─► 400 | deadline gone ─► 408
//!    │
//!    ▼ cache lookup ──► 200 cache:hit                  (no budget needed)
//!    │
//!    ▼ shared-budget admission ──► 413 never-fits | 429 busy + retry-after
//!    │
//!    ▼ run (own RunBudget: deadline slice, disconnect cancel flag)
//!    │     warm checkpoint? resume ─► 200 cache:warm
//!    │     else supervised ladder  ─► 200 cache:cold (rung: full…trivial)
//!    │     client vanished         ─► 499 (work checkpointed for resume)
//!    ▼
//! respond, release reservation, record service time, write run report
//! ```
//!
//! Draining: the first SIGINT/SIGTERM (or [`Server::request_drain`]) stops
//! the accept loop; queued-but-unstarted requests are answered `503`;
//! in-flight runs get [`ServerConfig::drain_grace`] to finish, then their
//! cancel flags fire — the post-BFS checkpoint already on disk makes the
//! interrupted work resumable by the next daemon. A second signal
//! force-exits 130 (see [`parhde_util::supervisor::install_two_stage_handlers`]).

use crate::budget::{AdmitError, ServiceClock, SharedSoftBudget};
use crate::cache::{cache_key, LayoutCache};
use crate::proto::{self, Op, Request, Response};
use parhde::config::ParHdeConfig;
use parhde::{
    try_par_hde_nd_supervised, Checkpoint, HdeError, HdeStats, SuperviseOptions,
};
use parhde_graph::gen;
use parhde_graph::io::{parse_edge_list, parse_matrix_market};
use parhde_graph::prep::largest_component;
use parhde_graph::store::GraphStore;
use parhde_graph::{CompressedCsr, CsrGraph};
use parhde_linalg::dense::ColMajorMatrix;
use parhde_trace::registry::{self, Counter, Gauge, Histogram, Registry};
use parhde_trace::{RunReport, TraceSession};
use parhde_util::supervisor::{self, cancel_flag, CancelFlag};
use parhde_util::RunBudget;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Knobs of one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Layout worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a connection arriving past it is shed with
    /// an immediate 429 — the queue never grows without bound.
    pub queue_capacity: usize,
    /// Total shared soft memory budget across concurrent requests.
    pub mem_budget_bytes: u64,
    /// Result-cache directory; `None` disables caching and warm resume.
    pub cache_dir: Option<PathBuf>,
    /// Byte budget over the result cache's entry files; oldest entries
    /// (and their warm-start checkpoints) are evicted past it. `None`
    /// leaves the cache unbounded.
    pub cache_max_bytes: Option<u64>,
    /// Per-request run-report directory (`req-<trace-id>.json`); `None`
    /// disables.
    pub report_dir: Option<PathBuf>,
    /// Deadline applied when the client does not send `deadline-ms`.
    pub default_deadline: Duration,
    /// Upper clamp for client-requested deadlines.
    pub max_deadline: Duration,
    /// How long in-flight runs may keep working after drain starts before
    /// their cancel flags fire.
    pub drain_grace: Duration,
    /// Emit one NDJSON event line per answered request on stderr (trace
    /// ID, op, status, duration). Off by default so in-process test
    /// servers stay quiet; the binary turns it on.
    pub log_requests: bool,
    /// How long a fresh connection may sit silent before its *first*
    /// frame starts (replaces the old flat 2 s read timeout).
    pub header_timeout: Duration,
    /// Wall-clock budget for one whole frame counted from its first
    /// byte. Unlike a per-read timeout it never resets on progress, so a
    /// byte-dripping client is bounded by this, not by patience.
    pub frame_budget: Duration,
    /// How long a keep-alive connection may idle between frames before
    /// the server closes it.
    pub keepalive_idle: Duration,
    /// Requests served per connection before the server closes it
    /// (`connection: close` on the last response). Bounds how long one
    /// client can monopolize a worker; min 1.
    pub max_requests_per_conn: usize,
    /// Directory of packed `.phdegrf` snapshots servable via
    /// `graph: packed:<name>` (opened mmap-backed, so the graph may exceed
    /// RAM). `None` rejects `packed:` specs.
    pub graph_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 8,
            mem_budget_bytes: 2 << 30,
            cache_dir: None,
            cache_max_bytes: None,
            report_dir: None,
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            drain_grace: Duration::from_secs(2),
            log_requests: false,
            header_timeout: Duration::from_secs(2),
            frame_budget: Duration::from_secs(2),
            keepalive_idle: Duration::from_secs(5),
            max_requests_per_conn: 64,
            graph_dir: None,
        }
    }
}

/// Per-server handles into this daemon's metrics [`Registry`]. Counters
/// and histograms are maintained inline on the request path (lock-free
/// relaxed atomics); point-in-time gauges are sampled at scrape.
///
/// The layout lifecycle invariant every scrape must satisfy once traffic
/// quiesces: `requests_started_total` equals the sum of the eight
/// `layout_*_total` terminal counters — every layout request that enters
/// the pipeline leaves through exactly one exit.
struct Metrics {
    /// This server's own registry (NOT the process-global one: tests run
    /// several servers per process and each scrape must count only its
    /// own traffic; the global registry is merged in at scrape time).
    registry: Registry,
    // Connection-level events (before a request is even parsed).
    connections_accepted: Arc<Counter>,
    connections_shed_queue: Arc<Counter>,
    connections_unreadable: Arc<Counter>,
    requests_unparseable: Arc<Counter>,
    panics: Arc<Counter>,
    // Keep-alive connection lifecycle (DESIGN.md §16.2).
    keepalive_requests: Arc<Counter>,
    connections_closed_idle: Arc<Counter>,
    connections_closed_cap: Arc<Counter>,
    connections_closed_fair: Arc<Counter>,
    frame_timeouts: Arc<Counter>,
    pipeline_cancelled: Arc<Counter>,
    // Layout lifecycle: one start, exactly one terminal.
    layout_started: Arc<Counter>,
    layout_completed: Arc<Counter>,
    layout_rejected: Arc<Counter>,
    layout_timeout: Arc<Counter>,
    layout_too_large: Arc<Counter>,
    layout_busy: Arc<Counter>,
    layout_cancelled: Arc<Counter>,
    layout_failed: Arc<Counter>,
    layout_drained: Arc<Counter>,
    // Result-cache traffic and bounding.
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_warm: Arc<Counter>,
    cache_cold: Arc<Counter>,
    // Sampled at scrape time.
    queue_depth: Arc<Gauge>,
    inflight: Arc<Gauge>,
    budget_reserved_bytes: Arc<Gauge>,
    budget_total_bytes: Arc<Gauge>,
    cache_entries: Arc<Gauge>,
    cache_bytes: Arc<Gauge>,
    uptime_seconds: Arc<Gauge>,
    /// 1 when the active linalg backend is the SIMD one, 0 for scalar.
    backend_simd_active: Arc<Gauge>,
    /// 1 when the CPU supports the SIMD backend (AVX2+FMA), regardless of
    /// which backend is active — together the pair makes a silent scalar
    /// fallback (supported=1, active=0 under auto) visible in a scrape.
    cpu_simd_supported: Arc<Gauge>,
    // Latency distributions (log₂ buckets, lossless cross-thread merge).
    queue_wait_ms: Arc<Histogram>,
    request_duration_ms: Arc<Histogram>,
}

impl Metrics {
    fn new() -> Metrics {
        let registry = Registry::new();
        let c = |n: &str| registry.counter(n);
        let g = |n: &str| registry.gauge(n);
        Metrics {
            connections_accepted: c("parhde_connections_accepted_total"),
            connections_shed_queue: c("parhde_connections_shed_queue_total"),
            connections_unreadable: c("parhde_connections_unreadable_total"),
            requests_unparseable: c("parhde_requests_unparseable_total"),
            panics: c("parhde_panics_total"),
            keepalive_requests: c("parhde_keepalive_requests_total"),
            connections_closed_idle: c("parhde_connections_closed_idle_total"),
            connections_closed_cap: c("parhde_connections_closed_cap_total"),
            connections_closed_fair: c("parhde_connections_closed_fair_total"),
            frame_timeouts: c("parhde_frame_timeouts_total"),
            pipeline_cancelled: c("parhde_pipeline_cancelled_total"),
            layout_started: c("parhde_requests_started_total"),
            layout_completed: c("parhde_layout_completed_total"),
            layout_rejected: c("parhde_layout_rejected_total"),
            layout_timeout: c("parhde_layout_timeout_total"),
            layout_too_large: c("parhde_layout_too_large_total"),
            layout_busy: c("parhde_layout_busy_total"),
            layout_cancelled: c("parhde_layout_cancelled_total"),
            layout_failed: c("parhde_layout_failed_total"),
            layout_drained: c("parhde_layout_drained_total"),
            cache_hits: c("parhde_cache_hits_total"),
            cache_misses: c("parhde_cache_misses_total"),
            cache_evictions: c("parhde_cache_evictions_total"),
            cache_warm: c("parhde_cache_warm_total"),
            cache_cold: c("parhde_cache_cold_total"),
            queue_depth: g("parhde_queue_depth"),
            inflight: g("parhde_inflight"),
            budget_reserved_bytes: g("parhde_budget_reserved_bytes"),
            budget_total_bytes: g("parhde_budget_total_bytes"),
            cache_entries: g("parhde_cache_entries"),
            cache_bytes: g("parhde_cache_bytes"),
            uptime_seconds: g("parhde_uptime_seconds"),
            backend_simd_active: g("parhde_backend_simd_active"),
            cpu_simd_supported: g("parhde_cpu_simd_supported"),
            queue_wait_ms: registry.histogram("parhde_queue_wait_ms"),
            request_duration_ms: registry.histogram("parhde_request_duration_ms"),
            registry,
        }
    }

    /// The terminal counter a failed run maps to, keyed by wire status.
    fn terminal_for_error(&self, code: u16) -> &Arc<Counter> {
        match code {
            proto::CANCELLED => &self.layout_cancelled,
            proto::TIMEOUT => &self.layout_timeout,
            proto::TOO_LARGE => &self.layout_too_large,
            _ => &self.layout_failed,
        }
    }
}

/// A connection accepted but not yet picked up by a worker. The deadline
/// clock starts at `accepted`: queue wait burns the request's own time.
struct Pending {
    stream: TcpStream,
    accepted: Instant,
}

/// One in-flight request's entry in the disconnect watchdog's registry.
struct WatchEntry {
    id: u64,
    stream: TcpStream,
    flag: CancelFlag,
}

struct Shared {
    cfg: ServerConfig,
    budget: Arc<SharedSoftBudget>,
    cache: Option<LayoutCache>,
    clock: ServiceClock,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    drain: AtomicBool,
    stop_watchdog: AtomicBool,
    metrics: Metrics,
    /// Serializes trace sessions and ambient budget installs — both are
    /// process-exclusive, so layout execution is one-at-a-time per process
    /// (cache hits and all shedding paths bypass this).
    layout_lock: Mutex<()>,
    watch: Mutex<Vec<WatchEntry>>,
    req_seq: AtomicU64,
    watch_seq: AtomicU64,
    inflight: AtomicU64,
    /// When this daemon started (uptime gauge, PING header).
    started: Instant,
    /// Boot-unique half of every trace ID, derived from wall clock and
    /// PID at startup so IDs from different daemon incarnations don't
    /// collide in shared log streams.
    boot: u32,
}

impl Shared {
    /// Drain is the union of the in-process flag and the process-global
    /// signal-driven one.
    fn draining(&self) -> bool {
        self.drain.load(Ordering::Relaxed) || supervisor::drain_requested()
    }

    fn work_ahead(&self) -> usize {
        let queued = self.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
        queued + self.inflight.load(Ordering::Relaxed) as usize
    }

    /// Issues the next request trace ID: `<boot>-<seq>`, both fixed-width
    /// hex. The boot half joins log lines to a daemon incarnation; the
    /// sequence half is unique within it.
    fn next_trace_id(&self) -> String {
        let seq = self.req_seq.fetch_add(1, Ordering::Relaxed) as u32;
        format!("{:08x}-{seq:08x}", self.boot)
    }
}

/// A running daemon. Dropping it without calling [`Server::drain`] detaches
/// the threads (they exit with the process); tests should drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    watchdog_handle: Option<std::thread::JoinHandle<()>>,
}

/// Starts a daemon from `cfg`.
///
/// # Errors
/// [`std::io::Error`] if the listener cannot bind or the cache directory
/// cannot be created.
pub fn serve(cfg: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let cache = match &cfg.cache_dir {
        Some(dir) => Some(LayoutCache::open_bounded(dir, cfg.cache_max_bytes)?),
        None => None,
    };
    if let Some(dir) = &cfg.report_dir {
        std::fs::create_dir_all(dir)?;
    }
    let workers = cfg.workers.max(1);
    let budget = SharedSoftBudget::new(cfg.mem_budget_bytes);
    let metrics = Metrics::new();
    if let Some(cache) = &cache {
        // Entries trimmed while re-indexing a pre-existing directory.
        metrics.cache_evictions.add(cache.usage().evictions);
    }
    let boot = {
        let secs = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        (secs as u32).wrapping_mul(0x9e37_79b9) ^ std::process::id()
    };
    let shared = Arc::new(Shared {
        cfg,
        budget,
        cache,
        clock: ServiceClock::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        drain: AtomicBool::new(false),
        stop_watchdog: AtomicBool::new(false),
        metrics,
        layout_lock: Mutex::new(()),
        watch: Mutex::new(Vec::new()),
        req_seq: AtomicU64::new(0),
        watch_seq: AtomicU64::new(0),
        inflight: AtomicU64::new(0),
        started: Instant::now(),
        boot,
    });

    let accept_shared = Arc::clone(&shared);
    let accept_handle = std::thread::Builder::new()
        .name("parhde-accept".into())
        .spawn(move || accept_loop(listener, &accept_shared))?;

    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let worker_shared = Arc::clone(&shared);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("parhde-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))?,
        );
    }

    let watchdog_shared = Arc::clone(&shared);
    let watchdog_handle = std::thread::Builder::new()
        .name("parhde-watchdog".into())
        .spawn(move || watchdog_loop(&watchdog_shared))?;

    Ok(Server {
        addr,
        shared,
        accept_handle: Some(accept_handle),
        worker_handles,
        watchdog_handle: Some(watchdog_handle),
    })
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts draining without blocking: stop accepting, let workers wind
    /// down. Equivalent to the first SIGTERM.
    pub fn request_drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether the daemon is draining.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Leftover `.tmp` files under the cache directory (chaos probe).
    pub fn stray_tmp_files(&self) -> Vec<PathBuf> {
        self.shared.cache.as_ref().map(|c| c.stray_tmp_files()).unwrap_or_default()
    }

    /// Drains and joins: stops accepting, answers queued requests with
    /// 503, gives in-flight runs [`ServerConfig::drain_grace`] to finish,
    /// then fires their cancel flags (checkpoints make the interrupted
    /// work resumable) and joins every thread.
    pub fn drain(mut self) {
        self.request_drain();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Grace period for in-flight work.
        let deadline = Instant::now() + self.shared.cfg.drain_grace;
        while Instant::now() < deadline && self.shared.work_ahead() > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Past grace: cancel whatever is still running.
        for entry in self.shared.watch.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            entry.flag.store(true, Ordering::SeqCst);
        }
        self.shared.queue_cv.notify_all();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        self.shared.stop_watchdog.store(true, Ordering::SeqCst);
        if let Some(h) = self.watchdog_handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.metrics.connections_accepted.inc();
                let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if queue.len() >= shared.cfg.queue_capacity {
                    drop(queue);
                    shed_overloaded(shared, stream);
                } else {
                    queue.push_back(Pending { stream, accepted: Instant::now() });
                    drop(queue);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Sheds one connection with 429 + retry-after, without reading a byte of
/// its request — overload handling must not depend on the client's input.
fn shed_overloaded(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.metrics.connections_shed_queue.inc();
    parhde_trace::counter!("serve.shed.queue_full", 1);
    let trace_id = shared.next_trace_id();
    let hint = shared.clock.retry_after_ms(shared.work_ahead());
    let resp = Response::new(proto::OVERLOADED, "queue full")
        .with("retry-after-ms", hint)
        .with("trace-id", &trace_id);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = proto::write_frame(&mut stream, &resp.encode());
    if shared.cfg.log_requests {
        log_request_event(&trace_id, "SHED", proto::OVERLOADED, "queue full", 0.0);
    }
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let pending = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(p) = queue.pop_front() {
                    break Some(p);
                }
                if shared.draining() {
                    break None;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        };
        let Some(pending) = pending else { break };
        handle_connection(shared, pending);
    }
}

/// Why the per-connection loop decided to stop serving frames.
enum CloseCause {
    /// Clean EOF, idle timeout after ≥ 1 request, drain while idle, or a
    /// voluntary fairness close — nothing is owed to the peer.
    Quiet,
    /// The first frame never arrived or was unreadable (counts
    /// `connections_unreadable`, matching the pre-keep-alive daemon).
    Unreadable,
}

/// The per-connection protocol state machine (DESIGN.md §16.2). One
/// worker owns the connection and loops: staged frame read → dispatch →
/// ordered response write → next frame. Pipelined frames the client sent
/// ahead simply wait in the socket buffer and become the next iteration;
/// responses go back strictly in request order because the loop is
/// serial. The connection closes on: quiet EOF, idle timeout, the
/// per-connection request cap, drain, fairness (another connection is
/// queued while this one idles), a hostile frame, or a failed write — a
/// failed write also counts the pipelined successors already buffered as
/// cancelled, because they were received but will never be answered.
fn handle_connection(shared: &Arc<Shared>, pending: Pending) {
    let Pending { mut stream, accepted } = pending;
    shared
        .metrics
        .queue_wait_ms
        .record(accepted.elapsed().as_secs_f64() * 1e3);
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // Keep-alive responses must not queue behind Nagle: a pipelining peer
    // may not ACK promptly, and a delayed-ACK stall per response would
    // dominate sub-millisecond cache hits.
    let _ = stream.set_nodelay(true);
    let mut served: usize = 0;
    let cap = shared.cfg.max_requests_per_conn.max(1);
    let cause = loop {
        let is_first = served == 0;
        let budget = proto::ReadBudget {
            idle: if is_first {
                shared.cfg.header_timeout
            } else {
                shared.cfg.keepalive_idle
            },
            frame: shared.cfg.frame_budget,
        };
        // Fairness: an idle keep-alive connection yields its worker when
        // other connections are waiting in the queue (checked only after
        // an empty poll slice — buffered frames always win). The first
        // request is exempt: it was queued and popped fairly already.
        let abort = || {
            shared.draining()
                || (!is_first
                    && !shared.queue.lock().unwrap_or_else(|e| e.into_inner()).is_empty())
        };
        if let Some(fired) = parhde_util::failpoint::check("serve.read_frame") {
            if matches!(
                fired,
                parhde_util::failpoint::Fired::Err | parhde_util::failpoint::Fired::Partial
            ) {
                break if is_first { CloseCause::Unreadable } else { CloseCause::Quiet };
            }
        }
        let (payload, frame_start) = match proto::read_frame_staged(&stream, &budget, abort)
        {
            Ok(frame) => frame,
            Err(proto::FrameError::Eof) => {
                break if is_first { CloseCause::Unreadable } else { CloseCause::Quiet }
            }
            Err(proto::FrameError::Idle) => {
                if !is_first {
                    shared.metrics.connections_closed_idle.inc();
                }
                break if is_first { CloseCause::Unreadable } else { CloseCause::Quiet };
            }
            Err(proto::FrameError::Aborted) => {
                if !is_first && !shared.draining() {
                    shared.metrics.connections_closed_fair.inc();
                }
                break if is_first && !shared.draining() {
                    CloseCause::Unreadable
                } else {
                    CloseCause::Quiet
                };
            }
            Err(proto::FrameError::Timeout) => {
                // The peer started a frame and stalled: answer 408 (it
                // may still be listening) and close — the stream is no
                // longer frame-synchronized.
                shared.metrics.frame_timeouts.inc();
                parhde_trace::counter!("serve.frame.timeout", 1);
                let resp = Response::new(proto::TIMEOUT, "frame timeout")
                    .with("error", "whole-frame read budget exhausted")
                    .with("connection", "close")
                    .with("trace-id", shared.next_trace_id());
                let _ = write_response_frame(&mut stream, &resp.encode());
                break if is_first { CloseCause::Unreadable } else { CloseCause::Quiet };
            }
            Err(proto::FrameError::TooLarge(len)) => {
                // A hostile or desynchronized length prefix: best-effort
                // typed rejection, then close (the payload bytes were
                // never read, so the stream cannot be re-synchronized).
                let resp = Response::new(proto::BAD_REQUEST, "frame too large")
                    .with("error", format!("frame length {len} exceeds cap"))
                    .with("connection", "close")
                    .with("trace-id", shared.next_trace_id());
                let _ = write_response_frame(&mut stream, &resp.encode());
                break if is_first { CloseCause::Unreadable } else { CloseCause::Quiet };
            }
            Err(proto::FrameError::TruncatedEof | proto::FrameError::Io(_)) => {
                break if is_first { CloseCause::Unreadable } else { CloseCause::Quiet }
            }
        };
        // Pipelined deadlines are per-request: request k's clock starts
        // at its own first byte, not at connection accept — otherwise a
        // burst of pipelined frames would all age while their
        // predecessors run.
        let req_accepted = if is_first { accepted } else { frame_start };
        if !is_first {
            shared.metrics.keepalive_requests.inc();
        }
        let trace_id = shared.next_trace_id();
        let mut op_name = "INVALID";
        // Panic boundary: a panic anywhere in request handling must cost
        // the *request* (typed 500), never the worker thread — a daemon
        // that silently loses workers to hostile inputs eventually serves
        // nobody. (Layout requests carry their own inner boundary so
        // panics still land in a lifecycle terminal counter; this one
        // covers the rest.)
        let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match Request::parse(&payload) {
                Err(msg) => {
                    shared.metrics.requests_unparseable.inc();
                    Response::new(proto::BAD_REQUEST, "bad request").with("error", msg)
                }
                Ok(req) => {
                    op_name = match req.op {
                        Op::Ping => "PING",
                        Op::Stats => "STATS",
                        Op::Layout => "LAYOUT",
                    };
                    match req.op {
                        Op::Ping => ping_response(shared),
                        Op::Stats => stats_response(shared, &req),
                        Op::Layout => {
                            handle_layout(shared, &req, &stream, req_accepted, &trace_id)
                        }
                    }
                }
            }
        }))
        .unwrap_or_else(|panic| {
            shared.metrics.panics.inc();
            parhde_trace::counter!("serve.panic.request", 1);
            Response::new(proto::INTERNAL, "internal error (bug)")
                .with("error", panic_message(&panic))
        });
        served += 1;
        let close = shared.draining() || served >= cap;
        let response = response
            .with("trace-id", &trace_id)
            .with("connection", if close { "close" } else { "keep-alive" });
        let write = write_response_frame(&mut stream, &response.encode());
        let elapsed_ms = req_accepted.elapsed().as_secs_f64() * 1e3;
        if op_name == "LAYOUT" && response.code == proto::OK {
            // Full server-side latency of a successful layout: queue wait
            // through response write — the population `parhde-loadgen
            // --scrape` cross-checks against client-observed latencies.
            shared.metrics.request_duration_ms.record(elapsed_ms);
        }
        if shared.cfg.log_requests {
            log_request_event(&trace_id, op_name, response.code, &response.reason, elapsed_ms);
        }
        if let Err(e) = write {
            // The connection died with this response unsent. Pipelined
            // successors already buffered were *received* but will never
            // be answered: account them as cancelled so the pipeline's
            // books balance.
            let orphans = count_buffered_frames(&stream);
            if orphans > 0 {
                shared.metrics.pipeline_cancelled.add(orphans);
                parhde_trace::counter!("serve.pipeline.cancelled", orphans);
            }
            if shared.cfg.log_requests {
                log_warn_event("response-write-failed", &trace_id, &e.to_string());
            }
            break CloseCause::Quiet;
        }
        if close {
            if served >= cap && !shared.draining() {
                shared.metrics.connections_closed_cap.inc();
            }
            break CloseCause::Quiet;
        }
    };
    if matches!(cause, CloseCause::Unreadable) {
        shared.metrics.connections_unreadable.inc();
    }
}

/// Writes one response frame, honoring the `serve.write_response`
/// failpoint: `err` fails before any byte (the peer sees a clean close or
/// reset), `partial` writes the length prefix plus half the payload then
/// fails (the peer sees a torn frame and must treat it as a transport
/// error, never a response).
///
/// Prefix and payload go out in ONE write: two small writes on a reused
/// keep-alive connection trip Nagle + delayed-ACK (the prefix segment
/// sits unacknowledged, so the payload waits out the peer's ~40 ms
/// delayed ACK — invisible on fresh connections, where Linux starts in
/// quickack mode, which is why the one-request-per-connection server
/// never saw it).
fn write_response_frame(stream: &mut TcpStream, payload: &[u8]) -> std::io::Result<()> {
    use parhde_util::failpoint;
    use std::io::Write;
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&l| l <= proto::MAX_FRAME)
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large")
        })?;
    match failpoint::check("serve.write_response") {
        Some(failpoint::Fired::Err) => {
            return Err(failpoint::injected_io_error("serve.write_response"))
        }
        Some(failpoint::Fired::Partial) => {
            let mut torn = Vec::with_capacity(4 + payload.len() / 2);
            torn.extend_from_slice(&len.to_le_bytes());
            torn.extend_from_slice(&payload[..payload.len() / 2]);
            stream.write_all(&torn)?;
            let _ = stream.flush();
            return Err(failpoint::injected_io_error("serve.write_response"));
        }
        _ => {}
    }
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(payload);
    stream.write_all(&frame)?;
    stream.flush()
}

/// Counts complete frames already sitting in the connection's receive
/// buffer (best-effort, via a non-blocking `peek`): the pipelined
/// successors a dead connection strands.
fn count_buffered_frames(stream: &TcpStream) -> u64 {
    let mut buf = [0u8; 64 * 1024];
    let _ = stream.set_read_timeout(Some(Duration::from_millis(1)));
    let n = match stream.peek(&mut buf) {
        Ok(n) => n,
        Err(_) => return 0,
    };
    let mut frames = 0u64;
    let mut at = 0usize;
    while at + 4 <= n {
        let len = u32::from_le_bytes(buf[at..at + 4].try_into().unwrap_or_default());
        let Some(end) = at.checked_add(4).and_then(|s| s.checked_add(len as usize)) else {
            break;
        };
        if len > proto::MAX_FRAME || end > n {
            break;
        }
        frames += 1;
        at = end;
    }
    frames
}

/// Best-effort human text out of a caught panic payload.
fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| panic.downcast_ref::<&str>().copied())
        .unwrap_or("unknown panic")
}

/// One NDJSON event line on stderr: the daemon's request log. One line
/// per answered request, machine-splittable, replacing free-form prints.
fn log_request_event(trace_id: &str, op: &str, code: u16, reason: &str, ms: f64) {
    eprintln!(
        "{{\"event\":\"request\",\"trace_id\":\"{}\",\"op\":\"{}\",\"code\":{},\
         \"reason\":\"{}\",\"ms\":{}}}",
        parhde_trace::json::escape(trace_id),
        parhde_trace::json::escape(op),
        code,
        parhde_trace::json::escape(reason),
        parhde_trace::json::number(ms),
    );
}

/// A warning event in the same NDJSON stream (always emitted — these
/// replace the daemon's former ad-hoc `eprintln!` diagnostics).
fn log_warn_event(what: &str, trace_id: &str, detail: &str) {
    eprintln!(
        "{{\"event\":\"warn\",\"what\":\"{}\",\"trace_id\":\"{}\",\"detail\":\"{}\"}}",
        parhde_trace::json::escape(what),
        parhde_trace::json::escape(trace_id),
        parhde_trace::json::escape(detail),
    );
}

fn ping_response(shared: &Arc<Shared>) -> Response {
    let m = &shared.metrics;
    Response::new(proto::OK, "pong")
        .with("version", env!("CARGO_PKG_VERSION"))
        .with("uptime-s", shared.started.elapsed().as_secs())
        .with("draining", u8::from(shared.draining()))
        .with("queued", shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len())
        .with("inflight", shared.inflight.load(Ordering::Relaxed))
        .with("budget-total", shared.budget.total())
        .with("budget-reserved", shared.budget.reserved())
        .with("accepted", m.connections_accepted.get())
        .with("completed", m.layout_completed.get())
        .with("shed-queue", m.connections_shed_queue.get())
        .with("shed-busy", m.layout_busy.get())
        .with("rejected", m.layout_rejected.get())
        .with("cache-hit", m.cache_hits.get())
        .with("cache-warm", m.cache_warm.get())
        .with("cache-cold", m.cache_cold.get())
        .with("cancelled", m.layout_cancelled.get())
        .with("failed", m.layout_failed.get())
}

/// Answers a `STATS` scrape: refresh the point-in-time gauges, snapshot
/// this server's registry, fold in the process-global registry (ambient
/// supervisor counters), and encode. Never touches the layout lock, so a
/// scrape costs microseconds even while a layout is running.
fn stats_response(shared: &Arc<Shared>, req: &Request) -> Response {
    let m = &shared.metrics;
    m.queue_depth
        .set(shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len() as f64);
    m.inflight.set(shared.inflight.load(Ordering::Relaxed) as f64);
    m.budget_reserved_bytes.set(shared.budget.reserved() as f64);
    m.budget_total_bytes.set(shared.budget.total() as f64);
    m.uptime_seconds.set(shared.started.elapsed().as_secs_f64());
    m.backend_simd_active.set(f64::from(
        parhde_linalg::backend::active_name() == "simd",
    ));
    m.cpu_simd_supported
        .set(f64::from(parhde_linalg::backend::simd_supported()));
    if let Some(cache) = &shared.cache {
        let usage = cache.usage();
        m.cache_entries.set(usage.entries as f64);
        m.cache_bytes.set(usage.bytes as f64);
    }
    let mut snap = m.registry.snapshot();
    snap.merge_from(&registry::global().snapshot());
    let (format, body) = match req.header("format") {
        None | Some("prometheus") => ("prometheus", snap.to_prometheus()),
        Some("ndjson") => ("ndjson", snap.to_ndjson()),
        Some(other) => {
            return Response::new(proto::BAD_REQUEST, "bad request")
                .with("error", format!("unknown stats format {other:?}"));
        }
    };
    let mut resp = Response::new(proto::OK, "stats").with("format", format);
    resp.body = body;
    resp
}

/// Cap on the `hold-ms` chaos knob, so it cannot park a worker forever.
const MAX_HOLD_MS: u64 = 10_000;

/// Sleeps in short slices so the disconnect watchdog and the deadline
/// still interrupt a held request exactly like a running one.
fn cooperative_hold(
    ms: u64,
    flag: &CancelFlag,
    hard_deadline: Instant,
) -> Result<(), HdeError> {
    let until = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < until {
        if flag.load(Ordering::Relaxed) {
            return Err(HdeError::Cancelled { phase: "hold" });
        }
        if Instant::now() >= hard_deadline {
            return Err(HdeError::DeadlineExceeded { phase: "hold" });
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Ok(())
}

/// Caps on `gen:` pseudo-inputs, so a hostile request cannot ask the
/// server to generate an astronomically large graph.
const MAX_GEN_KRON_SCALE: u32 = 20;
const MAX_GEN_GRID_SIDE: usize = 4096;
const MAX_GEN_PREF_N: usize = 2_000_000;

/// A resolved request graph: parsed/generated plain CSR, or a packed
/// snapshot opened mmap-backed from the server's `graph_dir`.
enum ResolvedGraph {
    Plain(CsrGraph),
    Packed(CompressedCsr),
}

/// Resolves the request's graph: `gen:` specs, `packed:<name>` snapshots
/// (when `--graph-dir` is configured), or the inline body.
fn resolve_graph(shared: &Arc<Shared>, req: &Request) -> Result<ResolvedGraph, String> {
    let spec = req.header("graph").unwrap_or("inline");
    let parts: Vec<&str> = spec.split(':').collect();
    if let ["packed", name] = parts.as_slice() {
        let Some(dir) = &shared.cfg.graph_dir else {
            return Err("packed graphs not enabled (start with --graph-dir)".into());
        };
        // The name is a single path component chosen by the client; keep it
        // to a conservative charset and never let it traverse.
        let ok = !name.is_empty()
            && !name.starts_with('.')
            && !name.contains("..")
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || matches!(c, '-' | '_' | '.'));
        if !ok {
            return Err(format!("bad packed graph name {name:?}"));
        }
        let file = if name.ends_with(".phdegrf") {
            name.to_string()
        } else {
            format!("{name}.phdegrf")
        };
        let g = CompressedCsr::open_mmap(&dir.join(file)).map_err(|e| e.to_string())?;
        return Ok(ResolvedGraph::Packed(g));
    }
    let parsed = match parts.as_slice() {
        ["inline"] => {
            if req.body.trim_start().starts_with("%%MatrixMarket") {
                parse_matrix_market(&req.body).map_err(|e| e.to_string())?
            } else {
                parse_edge_list(&req.body, 0).map_err(|e| e.to_string())?
            }
        }
        ["gen", "grid", r, c] => {
            let (r, c) = (dim(r)?, dim(c)?);
            if r == 0 || c == 0 || r > MAX_GEN_GRID_SIDE || c > MAX_GEN_GRID_SIDE {
                return Err(format!("grid {r}x{c} out of range"));
            }
            gen::grid2d(r, c)
        }
        ["gen", "kron", scale, ef, seed] => {
            let scale: u32 = scale.parse().map_err(|_| "bad kron scale")?;
            if scale > MAX_GEN_KRON_SCALE {
                return Err(format!("kron scale {scale} over cap {MAX_GEN_KRON_SCALE}"));
            }
            gen::kron(scale, dim(ef)?, seed.parse().map_err(|_| "bad seed")?)
        }
        ["gen", "pref", n, k, seed] => {
            let n = dim(n)?;
            if !(2..=MAX_GEN_PREF_N).contains(&n) {
                return Err(format!("pref n {n} out of range"));
            }
            gen::pref_attach(n, dim(k)?, seed.parse().map_err(|_| "bad seed")?)
        }
        _ => return Err(format!("unknown graph spec {spec:?}")),
    };
    Ok(ResolvedGraph::Plain(parsed))
}

fn dim(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad dimension {s:?}"))
}

fn parse_u64(req: &Request, key: &str) -> Result<Option<u64>, String> {
    match req.header(key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("bad {key} {v:?}")),
    }
}

/// The layout entry point: counts the start, then guarantees exactly one
/// lifecycle terminal counter fires no matter how the request leaves —
/// including by panicking. Without the inner panic boundary a panic would
/// unwind past every terminal and break the scrape invariant
/// `requests_started == Σ layout_*_total`.
fn handle_layout(
    shared: &Arc<Shared>,
    req: &Request,
    stream: &TcpStream,
    accepted: Instant,
    trace_id: &str,
) -> Response {
    shared.metrics.layout_started.inc();
    let inner = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        handle_layout_inner(shared, req, stream, accepted, trace_id)
    }));
    inner.unwrap_or_else(|panic| {
        shared.metrics.layout_failed.inc();
        shared.metrics.panics.inc();
        parhde_trace::counter!("serve.panic.request", 1);
        Response::new(proto::INTERNAL, "internal error (bug)")
            .with("error", panic_message(&panic))
    })
}

fn handle_layout_inner(
    shared: &Arc<Shared>,
    req: &Request,
    stream: &TcpStream,
    accepted: Instant,
    trace_id: &str,
) -> Response {
    if shared.draining() {
        shared.metrics.layout_drained.inc();
        return Response::new(proto::DRAINING, "draining");
    }

    // ---- Parse knobs -----------------------------------------------------
    let parsed = (|| -> Result<_, String> {
        let p = parse_u64(req, "dim")?.unwrap_or(2) as usize;
        if !(1..=16).contains(&p) {
            return Err(format!("dim {p} out of range 1..=16"));
        }
        let deadline_ms = parse_u64(req, "deadline-ms")?;
        let subspace = parse_u64(req, "subspace")?.map(|s| s as usize);
        let seed = parse_u64(req, "seed")?;
        let no_cache = req.header("no-cache") == Some("1");
        // Chaos/testing knob: hold the worker (cooperatively — cancel and
        // deadline still fire) before running, to make races reproducible.
        let hold_ms = parse_u64(req, "hold-ms")?.unwrap_or(0).min(MAX_HOLD_MS);
        Ok((p, deadline_ms, subspace, seed, no_cache, hold_ms))
    })();
    let (p, deadline_ms, subspace, seed, no_cache, hold_ms) = match parsed {
        Ok(v) => v,
        Err(msg) => {
            shared.metrics.layout_rejected.inc();
            return Response::new(proto::BAD_REQUEST, "bad request").with("error", msg);
        }
    };
    let deadline = deadline_ms
        .map(|ms| Duration::from_millis(ms).min(shared.cfg.max_deadline))
        .unwrap_or(shared.cfg.default_deadline);

    // ---- Resolve the graph ----------------------------------------------
    let resolved = match resolve_graph(shared, req) {
        Ok(g) => g,
        Err(msg) => {
            shared.metrics.layout_rejected.inc();
            return Response::new(proto::BAD_REQUEST, "bad graph").with("error", msg);
        }
    };
    match resolved {
        ResolvedGraph::Plain(g) => {
            // Same preprocessing as the CLI: lay out the largest component.
            // An empty parse (e.g. an empty body) must reject here —
            // `largest_component` requires at least one vertex.
            if g.num_vertices() == 0 {
                shared.metrics.layout_rejected.inc();
                return Response::new(proto::BAD_REQUEST, "bad graph")
                    .with("error", "graph has no vertices");
            }
            let g = largest_component(&g).graph;
            if g.num_vertices() < 2 {
                shared.metrics.layout_rejected.inc();
                return Response::new(proto::BAD_REQUEST, "bad graph").with(
                    "error",
                    format!(
                        "largest component has {} vertices; need >= 2",
                        g.num_vertices()
                    ),
                );
            }
            layout_resolved(
                shared, &g, stream, accepted, trace_id, p, deadline, subspace, seed,
                no_cache, hold_ms,
            )
        }
        ResolvedGraph::Packed(g) => {
            // parhde-pack already extracted the largest component (the
            // compressed pipeline cannot re-extract one); a disconnected
            // snapshot surfaces as a typed Disconnected error from the run.
            if g.num_vertices() < 2 {
                shared.metrics.layout_rejected.inc();
                return Response::new(proto::BAD_REQUEST, "bad graph")
                    .with("error", "packed graph has < 2 vertices");
            }
            shared
                .metrics
                .registry
                .gauge("parhde_graph_compression_ratio")
                .set(g.compression_ratio());
            let resp = layout_resolved(
                shared, &g, stream, accepted, trace_id, p, deadline, subspace, seed,
                no_cache, hold_ms,
            );
            // Decode-buffer telemetry: how much varint decoding this
            // request's traversals and row scans actually did.
            let (calls, arcs) = g.decode_stats();
            shared.metrics.registry.counter("parhde_graph_decode_calls_total").add(calls);
            shared.metrics.registry.counter("parhde_graph_decoded_arcs_total").add(arcs);
            resp
        }
    }
}

/// The storage-generic tail of a layout request: config clamp, cache
/// lookup, shared-budget admission, and the supervised run.
#[allow(clippy::too_many_arguments)]
fn layout_resolved<G: GraphStore>(
    shared: &Arc<Shared>,
    g: &G,
    stream: &TcpStream,
    accepted: Instant,
    trace_id: &str,
    p: usize,
    deadline: Duration,
    subspace: Option<usize>,
    seed: Option<u64>,
    no_cache: bool,
    hold_ms: u64,
) -> Response {
    let n = g.num_vertices();
    let m = g.num_edges();
    // Residency gauges: what the graph itself costs this process in RAM
    // versus what rides behind a file mapping the kernel pages on demand.
    shared
        .metrics
        .registry
        .gauge("parhde_graph_bytes_resident")
        .set(g.resident_bytes() as f64);
    shared
        .metrics
        .registry
        .gauge("parhde_graph_bytes_mapped")
        .set(g.mapped_bytes() as f64);

    // Post-clamp config, exactly as an uninterrupted CLI run would see it.
    let mut cfg = ParHdeConfig::for_graph(n);
    // The daemon pins the process-wide compute backend at startup (from
    // $PARHDE_BACKEND, or auto-detection on first touch); a request must
    // not flip it, so mirror the pin into the request config — the
    // pipeline's own install() then re-asserts the same backend.
    cfg.backend = match parhde_linalg::backend::active_name() {
        "simd" => parhde::config::LinalgBackend::Simd,
        _ => parhde::config::LinalgBackend::Scalar,
    };
    if let Some(s) = subspace {
        cfg.subspace = s.clamp(1, n.saturating_sub(1)).max(p.min(n - 1));
    }
    if let Some(seed) = seed {
        cfg.seed = seed;
    }

    // ---- Deadline already burned in the queue? ---------------------------
    let hard_deadline = accepted + deadline;
    if Instant::now() >= hard_deadline {
        shared.metrics.layout_timeout.inc();
        parhde_trace::counter!("serve.timeout.queued", 1);
        return Response::new(proto::TIMEOUT, "deadline exhausted in queue")
            .with("deadline-ms", deadline.as_millis());
    }

    // ---- Cache lookup ----------------------------------------------------
    let key = cache_key(g, &cfg, p);
    if !no_cache && shared.cache.is_some() {
        if let Some(hit) = shared.cache.as_ref().and_then(|c| c.load(key)) {
            shared.metrics.cache_hits.inc();
            shared.metrics.layout_completed.inc();
            parhde_trace::counter!("serve.cache.hit", 1);
            let elapsed = accepted.elapsed();
            shared.clock.record_ms(elapsed.as_secs_f64() * 1e3);
            return ok_response(&hit.coords, n, m, &hit.rung, "hit", elapsed, &[]);
        }
        shared.metrics.cache_misses.inc();
    }

    // ---- Shared-budget admission ----------------------------------------
    let reservation = match shared.budget.admit_stored(g, &cfg, p) {
        Ok(r) => r,
        Err(AdmitError::NeverFits { min_bytes, total }) => {
            shared.metrics.layout_too_large.inc();
            parhde_trace::counter!("serve.reject.too_large", 1);
            return Response::new(proto::TOO_LARGE, "exceeds memory budget")
                .with("estimated-bytes", min_bytes)
                .with("budget-bytes", total);
        }
        Err(AdmitError::Busy { min_bytes, free }) => {
            shared.metrics.layout_busy.inc();
            parhde_trace::counter!("serve.shed.budget_busy", 1);
            let hint = shared.clock.retry_after_ms(shared.work_ahead());
            return Response::new(proto::OVERLOADED, "memory budget busy")
                .with("estimated-bytes", min_bytes)
                .with("free-bytes", free)
                .with("retry-after-ms", hint);
        }
    };
    let mut admission_note: Vec<String> = Vec::new();
    if reservation.downscaled {
        admission_note.push(format!(
            "admission downscaled subspace {} -> {} (shared budget)",
            cfg.subspace, reservation.subspace
        ));
        cfg.subspace = reservation.subspace;
    }

    // ---- Run -------------------------------------------------------------
    let flag = cancel_flag();
    // RAII: even a panicking run (caught at the layout boundary) must
    // unregister its watchdog entry and decrement the in-flight count.
    let watch_id = shared.watch_seq.fetch_add(1, Ordering::Relaxed);
    let _inflight = InflightGuard::enter(shared, watch_id, stream, &flag);
    let result = run_layout(
        shared, trace_id, g, &cfg, p, hard_deadline, &flag, key, no_cache, hold_ms,
    );
    drop(_inflight);
    drop(reservation);

    let elapsed = accepted.elapsed();
    shared.clock.record_ms(elapsed.as_secs_f64() * 1e3);
    match result {
        Ok(done) => {
            shared.metrics.layout_completed.inc();
            match done.cache_tag {
                "warm" => shared.metrics.cache_warm.inc(),
                _ => shared.metrics.cache_cold.inc(),
            };
            let mut notes = admission_note;
            notes.extend(done.warnings);
            ok_response(&done.coords, n, m, done.rung, done.cache_tag, elapsed, &notes)
        }
        Err(e) => {
            let (code, reason) = classify_error(&e);
            shared.metrics.terminal_for_error(code).inc();
            Response::new(code, reason)
                .with("error", e.to_string())
                .with("hde-exit-code", e.exit_code())
        }
    }
}

/// Maps a typed pipeline error to a wire status.
fn classify_error(e: &HdeError) -> (u16, &'static str) {
    match e {
        HdeError::Cancelled { .. } => (proto::CANCELLED, "cancelled"),
        HdeError::DeadlineExceeded { .. } => (proto::TIMEOUT, "deadline exceeded"),
        HdeError::MemoryBudgetExceeded { .. } => (proto::TOO_LARGE, "memory budget"),
        HdeError::Internal(_) => (proto::INTERNAL, "internal error"),
        // Disk trouble (checkpoint write, cache I/O) is the server's
        // fault, not the request's.
        HdeError::Io(_) => (proto::INTERNAL, "io error"),
        // Parse/config/degenerate/non-finite: the *request* was bad.
        _ => (proto::BAD_REQUEST, "layout failed"),
    }
}

struct Done {
    coords: ColMajorMatrix,
    rung: &'static str,
    cache_tag: &'static str,
    warnings: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn run_layout<G: GraphStore>(
    shared: &Arc<Shared>,
    trace_id: &str,
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    hard_deadline: Instant,
    flag: &CancelFlag,
    key: u64,
    no_cache: bool,
    hold_ms: u64,
) -> Result<Done, HdeError> {
    // Trace sessions and ambient budget installs are process-exclusive:
    // one layout at a time, everything else queues here. The wait burns
    // the request's own deadline.
    let _exclusive = shared.layout_lock.lock().unwrap_or_else(|e| e.into_inner());
    let remaining = hard_deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(HdeError::DeadlineExceeded { phase: "queued" });
    }
    if flag.load(Ordering::Relaxed) {
        return Err(HdeError::Cancelled { phase: "queued" });
    }
    cooperative_hold(hold_ms, flag, hard_deadline)?;

    let session = shared.cfg.report_dir.is_some().then(TraceSession::begin);
    let started = Instant::now();
    let outcome =
        run_layout_inner(shared, trace_id, g, cfg, p, hard_deadline, flag, key, no_cache);
    if let Some(session) = session {
        let trace = session.finish();
        write_report(shared, trace_id, g, cfg, p, &trace, started.elapsed(), &outcome);
    }
    outcome
}

/// The actual layout: warm-resume from a cached checkpoint when possible,
/// else the full supervised ladder.
#[allow(clippy::too_many_arguments)]
fn run_layout_inner<G: GraphStore>(
    shared: &Arc<Shared>,
    trace_id: &str,
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    hard_deadline: Instant,
    flag: &CancelFlag,
    key: u64,
    no_cache: bool,
) -> Result<Done, HdeError> {
    let ckpt_spec = shared.cache.as_ref().map(|c| c.checkpoint_spec(key));

    // ---- Warm start: resume a post-BFS checkpoint an earlier identical
    // request left behind (cancelled, degraded, or drained mid-run).
    if !no_cache {
        if let Some(spec) = &ckpt_spec {
            let path = spec.file_path();
            if path.exists() {
                if let Ok(ckpt) = Checkpoint::read(&path) {
                    let budget = RunBudget::unbounded()
                        .with_external_cancel(Arc::clone(flag))
                        .with_trace_id(trace_id);
                    budget.arm_deadline_at(hard_deadline);
                    let installed = supervisor::install(&budget);
                    let resumed = parhde::try_par_hde_resume(g, cfg, p, &ckpt);
                    drop(installed);
                    match resumed {
                        Ok((coords, stats)) => {
                            parhde_trace::counter!("serve.cache.warm_resume", 1);
                            record_phase_histograms(&shared.metrics, &stats);
                            store_result(shared, trace_id, key, &coords, "full", no_cache);
                            return Ok(Done {
                                coords,
                                rung: "full",
                                cache_tag: "warm",
                                warnings: warning_strings(&stats),
                            });
                        }
                        // Cancellation aborts the request; anything else
                        // (mismatch, corrupt, deadline) falls back to cold.
                        Err(e @ HdeError::Cancelled { .. }) => return Err(e),
                        Err(_) => {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                } else {
                    // Unreadable/corrupt checkpoint: evict, run cold.
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
    }

    // ---- Cold: the full supervised ladder under this request's budget.
    let remaining = hard_deadline.saturating_duration_since(Instant::now());
    let opts = SuperviseOptions {
        deadline: Some(remaining.max(Duration::from_millis(1))),
        mem_budget_bytes: None, // admission already happened, shared
        checkpoint: ckpt_spec,
        honor_global_cancel: false, // drain handles signals; see DESIGN §13.5
        cancel_flag: Some(Arc::clone(flag)),
        trace_id: Some(trace_id.to_string()),
    };
    let sup = try_par_hde_nd_supervised(g, cfg, p, &opts)?;
    record_phase_histograms(&shared.metrics, &sup.stats);
    // Only full-quality layouts are cached: a degraded rung's output is an
    // artifact of *this* request's budget, not of the (graph, config) key.
    if sup.rung == "full" {
        store_result(shared, trace_id, key, &sup.coords, sup.rung, no_cache);
    }
    let mut warnings = warning_strings(&sup.stats);
    warnings.extend(
        sup.ladder.iter().map(|s| format!("rung {} abandoned: {}", s.rung, s.cause)),
    );
    Ok(Done { coords: sup.coords, rung: sup.rung, cache_tag: "cold", warnings })
}

/// Folds one run's fine-grained phase times into per-phase latency
/// histograms (`parhde_phase_<name>_seconds`), so a scrape shows where
/// served requests actually spend their time across the whole daemon
/// lifetime, not just in the last run report.
fn record_phase_histograms(metrics: &Metrics, stats: &HdeStats) {
    for (name, dur) in stats.phases.iter() {
        let hist = format!("parhde_phase_{}_seconds", registry::sanitize_name(name));
        metrics.registry.histogram(&hist).record(dur.as_secs_f64());
    }
}

fn store_result(
    shared: &Arc<Shared>,
    trace_id: &str,
    key: u64,
    coords: &ColMajorMatrix,
    rung: &str,
    no_cache: bool,
) {
    if no_cache {
        return;
    }
    if let Some(cache) = &shared.cache {
        match cache.store(key, coords, rung) {
            Ok(evicted) => shared.metrics.cache_evictions.add(evicted),
            // Cache failures degrade to "no cache", never to request failure.
            Err(e) => {
                log_warn_event("cache-store-failed", trace_id, &e.to_string());
            }
        }
    }
}

fn warning_strings(stats: &HdeStats) -> Vec<String> {
    stats.warnings.iter().map(|w| w.to_string()).collect()
}

fn ok_response(
    coords: &ColMajorMatrix,
    n: usize,
    m: usize,
    rung: &str,
    cache_tag: &str,
    elapsed: Duration,
    notes: &[String],
) -> Response {
    let mut resp = Response::new(proto::OK, "ok")
        .with("n", n)
        .with("m", m)
        .with("dim", coords.cols())
        .with("rung", rung)
        .with("cache", cache_tag)
        .with("elapsed-ms", elapsed.as_millis());
    if !notes.is_empty() {
        resp = resp.with("warnings", notes.len());
        for note in notes {
            resp = resp.with("warning", note);
        }
    }
    resp.body = coords_csv(coords);
    resp
}

/// The coordinate CSV body: one row per vertex, shortest-roundtrip float
/// formatting — bit-identical coordinates produce byte-identical bodies,
/// which the cache-consistency tests rely on.
fn coords_csv(coords: &ColMajorMatrix) -> String {
    let (n, p) = (coords.rows(), coords.cols());
    let mut out = String::with_capacity(n * p * 20);
    for r in 0..n {
        for c in 0..p {
            if c > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}", coords.col(c)[r]));
        }
        out.push('\n');
    }
    out
}

/// Scopes one request's in-flight accounting and watchdog registration;
/// the drop path runs even when the request panics.
struct InflightGuard<'a> {
    shared: &'a Arc<Shared>,
    id: u64,
}

impl<'a> InflightGuard<'a> {
    fn enter(
        shared: &'a Arc<Shared>,
        id: u64,
        stream: &TcpStream,
        flag: &CancelFlag,
    ) -> Self {
        register_watch(shared, id, stream, flag);
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { shared, id }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
        unregister_watch(self.shared, self.id);
    }
}

fn register_watch(shared: &Arc<Shared>, id: u64, stream: &TcpStream, flag: &CancelFlag) {
    let Ok(clone) = stream.try_clone() else { return };
    // Short peek timeout: the watchdog must never stall on one socket.
    let _ = clone.set_read_timeout(Some(Duration::from_millis(1)));
    shared.watch.lock().unwrap_or_else(|e| e.into_inner()).push(WatchEntry {
        id,
        stream: clone,
        flag: Arc::clone(flag),
    });
}

fn unregister_watch(shared: &Arc<Shared>, id: u64) {
    shared
        .watch
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|e| e.id != id);
}

/// Polls every in-flight request's socket; a clean EOF or a hard error
/// means the client is gone → fire that request's cancel flag. `peek`
/// never consumes bytes, so a pipelined frame the client sent ahead
/// stays buffered and becomes the connection loop's next request once
/// the current one answers. Runs until the server fully drains.
///
/// The watchdog's 1 ms probe timeout is set on a `try_clone` of the
/// connection, which shares the underlying file description — the staged
/// frame reader therefore re-asserts its own timeout before every read
/// rather than trusting a previously set one.
fn watchdog_loop(shared: &Arc<Shared>) {
    let mut buf = [0u8; 1];
    while !shared.stop_watchdog.load(Ordering::Relaxed) {
        {
            let watch = shared.watch.lock().unwrap_or_else(|e| e.into_inner());
            for entry in watch.iter() {
                match entry.stream.peek(&mut buf) {
                    Ok(0) => {
                        if !entry.flag.swap(true, Ordering::SeqCst) {
                            parhde_trace::counter!("serve.cancel.disconnect", 1);
                        }
                    }
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => {
                        if !entry.flag.swap(true, Ordering::SeqCst) {
                            parhde_trace::counter!("serve.cancel.disconnect", 1);
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[allow(clippy::too_many_arguments)]
fn write_report<G: GraphStore>(
    shared: &Arc<Shared>,
    trace_id: &str,
    g: &G,
    cfg: &ParHdeConfig,
    p: usize,
    trace: &parhde_trace::Trace,
    total: Duration,
    outcome: &Result<Done, HdeError>,
) {
    let Some(dir) = &shared.cfg.report_dir else { return };
    let (exit_code, error, rung, cache_tag, warnings) = match outcome {
        Ok(done) => (0, None, done.rung, done.cache_tag, done.warnings.clone()),
        Err(e) => (e.exit_code(), Some(e.to_string()), "none", "cold", Vec::new()),
    };
    let mut report = RunReport {
        binary: "parhde-serve".into(),
        algo: "parhde".into(),
        graph_n: g.num_vertices() as u64,
        graph_m: g.num_edges() as u64,
        config: vec![
            ("request_id".into(), trace_id.to_string()),
            ("trace_id".into(), trace_id.to_string()),
            ("subspace".into(), cfg.subspace.to_string()),
            ("dim".into(), p.to_string()),
            ("seed".into(), cfg.seed.to_string()),
            ("rung".into(), rung.into()),
            ("cache".into(), cache_tag.into()),
            ("backend".into(), cfg.backend.label().into()),
            (
                "backend_executed".into(),
                parhde_linalg::backend::active_name().into(),
            ),
        ],
        phases: trace.phase_seconds(),
        warnings,
        exit_code,
        error,
        total_seconds: total.as_secs_f64(),
        ..RunReport::default()
    };
    report.counters = trace.counter_totals();
    report.gauges = trace.gauge_finals();
    // The trace ID in the filename joins the on-disk artifact to the
    // response header and the NDJSON request log.
    let path = dir.join(format!("req-{trace_id}.json"));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        log_warn_event("report-write-failed", trace_id, &e.to_string());
    }
}
