//! The daemon: bounded accept queue, worker pool, per-request supervision,
//! disconnect watchdog, and graceful drain (DESIGN.md §13.2, §13.5).
//!
//! Request lifecycle:
//!
//! ```text
//! accept ── queue full? ──► 429 + retry-after          (shed, never queued)
//!    │
//!    ▼ queued (deadline clock already running)
//! worker: parse ─► 400 | resolve graph ─► 400 | deadline gone ─► 408
//!    │
//!    ▼ cache lookup ──► 200 cache:hit                  (no budget needed)
//!    │
//!    ▼ shared-budget admission ──► 413 never-fits | 429 busy + retry-after
//!    │
//!    ▼ run (own RunBudget: deadline slice, disconnect cancel flag)
//!    │     warm checkpoint? resume ─► 200 cache:warm
//!    │     else supervised ladder  ─► 200 cache:cold (rung: full…trivial)
//!    │     client vanished         ─► 499 (work checkpointed for resume)
//!    ▼
//! respond, release reservation, record service time, write run report
//! ```
//!
//! Draining: the first SIGINT/SIGTERM (or [`Server::request_drain`]) stops
//! the accept loop; queued-but-unstarted requests are answered `503`;
//! in-flight runs get [`ServerConfig::drain_grace`] to finish, then their
//! cancel flags fire — the post-BFS checkpoint already on disk makes the
//! interrupted work resumable by the next daemon. A second signal
//! force-exits 130 (see [`parhde_util::supervisor::install_two_stage_handlers`]).

use crate::budget::{AdmitError, ServiceClock, SharedSoftBudget};
use crate::cache::{cache_key, LayoutCache};
use crate::proto::{self, Op, Request, Response};
use parhde::config::ParHdeConfig;
use parhde::{
    try_par_hde_nd_supervised, Checkpoint, HdeError, HdeStats, SuperviseOptions,
};
use parhde_graph::gen;
use parhde_graph::io::{parse_edge_list, parse_matrix_market};
use parhde_graph::prep::largest_component;
use parhde_graph::CsrGraph;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_trace::{RunReport, TraceSession};
use parhde_util::supervisor::{self, cancel_flag, CancelFlag};
use parhde_util::RunBudget;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Knobs of one daemon instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Listen address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Layout worker threads.
    pub workers: usize,
    /// Bounded queue capacity; a connection arriving past it is shed with
    /// an immediate 429 — the queue never grows without bound.
    pub queue_capacity: usize,
    /// Total shared soft memory budget across concurrent requests.
    pub mem_budget_bytes: u64,
    /// Result-cache directory; `None` disables caching and warm resume.
    pub cache_dir: Option<PathBuf>,
    /// Per-request run-report directory (`req-<id>.json`); `None` disables.
    pub report_dir: Option<PathBuf>,
    /// Deadline applied when the client does not send `deadline-ms`.
    pub default_deadline: Duration,
    /// Upper clamp for client-requested deadlines.
    pub max_deadline: Duration,
    /// How long in-flight runs may keep working after drain starts before
    /// their cancel flags fire.
    pub drain_grace: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            queue_capacity: 8,
            mem_budget_bytes: 2 << 30,
            cache_dir: None,
            report_dir: None,
            default_deadline: Duration::from_secs(10),
            max_deadline: Duration::from_secs(60),
            drain_grace: Duration::from_secs(2),
        }
    }
}

/// Monotonically increasing request counters (all relaxed; observability
/// only).
#[derive(Default)]
struct Stats {
    accepted: AtomicU64,
    completed: AtomicU64,
    shed_queue: AtomicU64,
    shed_busy: AtomicU64,
    rejected: AtomicU64,
    cache_hit: AtomicU64,
    cache_warm: AtomicU64,
    cache_cold: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
}

/// A connection accepted but not yet picked up by a worker. The deadline
/// clock starts at `accepted`: queue wait burns the request's own time.
struct Pending {
    stream: TcpStream,
    accepted: Instant,
}

/// One in-flight request's entry in the disconnect watchdog's registry.
struct WatchEntry {
    id: u64,
    stream: TcpStream,
    flag: CancelFlag,
}

struct Shared {
    cfg: ServerConfig,
    budget: Arc<SharedSoftBudget>,
    cache: Option<LayoutCache>,
    clock: ServiceClock,
    queue: Mutex<VecDeque<Pending>>,
    queue_cv: Condvar,
    drain: AtomicBool,
    stop_watchdog: AtomicBool,
    stats: Stats,
    /// Serializes trace sessions and ambient budget installs — both are
    /// process-exclusive, so layout execution is one-at-a-time per process
    /// (cache hits and all shedding paths bypass this).
    layout_lock: Mutex<()>,
    watch: Mutex<Vec<WatchEntry>>,
    req_seq: AtomicU64,
    inflight: AtomicU64,
}

impl Shared {
    /// Drain is the union of the in-process flag and the process-global
    /// signal-driven one.
    fn draining(&self) -> bool {
        self.drain.load(Ordering::Relaxed) || supervisor::drain_requested()
    }

    fn work_ahead(&self) -> usize {
        let queued = self.queue.lock().unwrap_or_else(|e| e.into_inner()).len();
        queued + self.inflight.load(Ordering::Relaxed) as usize
    }
}

/// A running daemon. Dropping it without calling [`Server::drain`] detaches
/// the threads (they exit with the process); tests should drain.
pub struct Server {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    worker_handles: Vec<std::thread::JoinHandle<()>>,
    watchdog_handle: Option<std::thread::JoinHandle<()>>,
}

/// Starts a daemon from `cfg`.
///
/// # Errors
/// [`std::io::Error`] if the listener cannot bind or the cache directory
/// cannot be created.
pub fn serve(cfg: ServerConfig) -> std::io::Result<Server> {
    let listener = TcpListener::bind(&cfg.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let cache = match &cfg.cache_dir {
        Some(dir) => Some(LayoutCache::open(dir)?),
        None => None,
    };
    if let Some(dir) = &cfg.report_dir {
        std::fs::create_dir_all(dir)?;
    }
    let workers = cfg.workers.max(1);
    let budget = SharedSoftBudget::new(cfg.mem_budget_bytes);
    let shared = Arc::new(Shared {
        cfg,
        budget,
        cache,
        clock: ServiceClock::new(),
        queue: Mutex::new(VecDeque::new()),
        queue_cv: Condvar::new(),
        drain: AtomicBool::new(false),
        stop_watchdog: AtomicBool::new(false),
        stats: Stats::default(),
        layout_lock: Mutex::new(()),
        watch: Mutex::new(Vec::new()),
        req_seq: AtomicU64::new(0),
        inflight: AtomicU64::new(0),
    });

    let accept_shared = Arc::clone(&shared);
    let accept_handle = std::thread::Builder::new()
        .name("parhde-accept".into())
        .spawn(move || accept_loop(listener, &accept_shared))?;

    let mut worker_handles = Vec::with_capacity(workers);
    for i in 0..workers {
        let worker_shared = Arc::clone(&shared);
        worker_handles.push(
            std::thread::Builder::new()
                .name(format!("parhde-worker-{i}"))
                .spawn(move || worker_loop(&worker_shared))?,
        );
    }

    let watchdog_shared = Arc::clone(&shared);
    let watchdog_handle = std::thread::Builder::new()
        .name("parhde-watchdog".into())
        .spawn(move || watchdog_loop(&watchdog_shared))?;

    Ok(Server {
        addr,
        shared,
        accept_handle: Some(accept_handle),
        worker_handles,
        watchdog_handle: Some(watchdog_handle),
    })
}

impl Server {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Starts draining without blocking: stop accepting, let workers wind
    /// down. Equivalent to the first SIGTERM.
    pub fn request_drain(&self) {
        self.shared.drain.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
    }

    /// Whether the daemon is draining.
    pub fn is_draining(&self) -> bool {
        self.shared.draining()
    }

    /// Leftover `.tmp` files under the cache directory (chaos probe).
    pub fn stray_tmp_files(&self) -> Vec<PathBuf> {
        self.shared.cache.as_ref().map(|c| c.stray_tmp_files()).unwrap_or_default()
    }

    /// Drains and joins: stops accepting, answers queued requests with
    /// 503, gives in-flight runs [`ServerConfig::drain_grace`] to finish,
    /// then fires their cancel flags (checkpoints make the interrupted
    /// work resumable) and joins every thread.
    pub fn drain(mut self) {
        self.request_drain();
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        // Grace period for in-flight work.
        let deadline = Instant::now() + self.shared.cfg.drain_grace;
        while Instant::now() < deadline && self.shared.work_ahead() > 0 {
            std::thread::sleep(Duration::from_millis(10));
        }
        // Past grace: cancel whatever is still running.
        for entry in self.shared.watch.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            entry.flag.store(true, Ordering::SeqCst);
        }
        self.shared.queue_cv.notify_all();
        for h in self.worker_handles.drain(..) {
            let _ = h.join();
        }
        self.shared.stop_watchdog.store(true, Ordering::SeqCst);
        if let Some(h) = self.watchdog_handle.take() {
            let _ = h.join();
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>) {
    loop {
        if shared.draining() {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.accepted.fetch_add(1, Ordering::Relaxed);
                let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
                if queue.len() >= shared.cfg.queue_capacity {
                    drop(queue);
                    shed_overloaded(shared, stream);
                } else {
                    queue.push_back(Pending { stream, accepted: Instant::now() });
                    drop(queue);
                    shared.queue_cv.notify_one();
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

/// Sheds one connection with 429 + retry-after, without reading a byte of
/// its request — overload handling must not depend on the client's input.
fn shed_overloaded(shared: &Arc<Shared>, mut stream: TcpStream) {
    shared.stats.shed_queue.fetch_add(1, Ordering::Relaxed);
    parhde_trace::counter!("serve.shed.queue_full", 1);
    let hint = shared.clock.retry_after_ms(shared.work_ahead());
    let resp = Response::new(proto::OVERLOADED, "queue full")
        .with("retry-after-ms", hint);
    let _ = stream.set_write_timeout(Some(Duration::from_millis(250)));
    let _ = proto::write_frame(&mut stream, &resp.encode());
}

fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let pending = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(p) = queue.pop_front() {
                    break Some(p);
                }
                if shared.draining() {
                    break None;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(100))
                    .unwrap_or_else(|e| e.into_inner());
                queue = q;
            }
        };
        let Some(pending) = pending else { break };
        handle_connection(shared, pending);
    }
}

fn handle_connection(shared: &Arc<Shared>, pending: Pending) {
    let Pending { mut stream, accepted } = pending;
    // A worker must not hang on a half-sent request (slowloris).
    let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
    let payload = match proto::read_frame(&mut stream) {
        Ok(p) => p,
        Err(_) => return, // nothing parseable arrived; no reply possible
    };
    let _ = stream.set_write_timeout(Some(Duration::from_secs(5)));
    // Panic boundary: a panic anywhere in request handling must cost the
    // *request* (typed 500), never the worker thread — a daemon that
    // silently loses workers to hostile inputs eventually serves nobody.
    let response = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        match Request::parse(&payload) {
            Err(msg) => {
                shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
                Response::new(proto::BAD_REQUEST, "bad request").with("error", msg)
            }
            Ok(req) => match req.op {
                Op::Ping => ping_response(shared),
                Op::Layout => handle_layout(shared, &req, &stream, accepted),
            },
        }
    }))
    .unwrap_or_else(|payload| {
        shared.stats.failed.fetch_add(1, Ordering::Relaxed);
        parhde_trace::counter!("serve.panic.request", 1);
        let msg = payload
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| payload.downcast_ref::<&str>().copied())
            .unwrap_or("unknown panic");
        Response::new(proto::INTERNAL, "internal error (bug)").with("error", msg)
    });
    let _ = proto::write_frame(&mut stream, &response.encode());
}

fn ping_response(shared: &Arc<Shared>) -> Response {
    let s = &shared.stats;
    Response::new(proto::OK, "pong")
        .with("draining", u8::from(shared.draining()))
        .with("queued", shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len())
        .with("inflight", shared.inflight.load(Ordering::Relaxed))
        .with("budget-total", shared.budget.total())
        .with("budget-reserved", shared.budget.reserved())
        .with("accepted", s.accepted.load(Ordering::Relaxed))
        .with("completed", s.completed.load(Ordering::Relaxed))
        .with("shed-queue", s.shed_queue.load(Ordering::Relaxed))
        .with("shed-busy", s.shed_busy.load(Ordering::Relaxed))
        .with("rejected", s.rejected.load(Ordering::Relaxed))
        .with("cache-hit", s.cache_hit.load(Ordering::Relaxed))
        .with("cache-warm", s.cache_warm.load(Ordering::Relaxed))
        .with("cache-cold", s.cache_cold.load(Ordering::Relaxed))
        .with("cancelled", s.cancelled.load(Ordering::Relaxed))
        .with("failed", s.failed.load(Ordering::Relaxed))
}

/// Cap on the `hold-ms` chaos knob, so it cannot park a worker forever.
const MAX_HOLD_MS: u64 = 10_000;

/// Sleeps in short slices so the disconnect watchdog and the deadline
/// still interrupt a held request exactly like a running one.
fn cooperative_hold(
    ms: u64,
    flag: &CancelFlag,
    hard_deadline: Instant,
) -> Result<(), HdeError> {
    let until = Instant::now() + Duration::from_millis(ms);
    while Instant::now() < until {
        if flag.load(Ordering::Relaxed) {
            return Err(HdeError::Cancelled { phase: "hold" });
        }
        if Instant::now() >= hard_deadline {
            return Err(HdeError::DeadlineExceeded { phase: "hold" });
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    Ok(())
}

/// Caps on `gen:` pseudo-inputs, so a hostile request cannot ask the
/// server to generate an astronomically large graph.
const MAX_GEN_KRON_SCALE: u32 = 20;
const MAX_GEN_GRID_SIDE: usize = 4096;
const MAX_GEN_PREF_N: usize = 2_000_000;

/// Resolves the request's graph: `gen:` specs or the inline body.
fn resolve_graph(req: &Request) -> Result<CsrGraph, String> {
    let spec = req.header("graph").unwrap_or("inline");
    let parts: Vec<&str> = spec.split(':').collect();
    let parsed = match parts.as_slice() {
        ["inline"] => {
            if req.body.trim_start().starts_with("%%MatrixMarket") {
                parse_matrix_market(&req.body).map_err(|e| e.to_string())?
            } else {
                parse_edge_list(&req.body, 0).map_err(|e| e.to_string())?
            }
        }
        ["gen", "grid", r, c] => {
            let (r, c) = (dim(r)?, dim(c)?);
            if r == 0 || c == 0 || r > MAX_GEN_GRID_SIDE || c > MAX_GEN_GRID_SIDE {
                return Err(format!("grid {r}x{c} out of range"));
            }
            gen::grid2d(r, c)
        }
        ["gen", "kron", scale, ef, seed] => {
            let scale: u32 = scale.parse().map_err(|_| "bad kron scale")?;
            if scale > MAX_GEN_KRON_SCALE {
                return Err(format!("kron scale {scale} over cap {MAX_GEN_KRON_SCALE}"));
            }
            gen::kron(scale, dim(ef)?, seed.parse().map_err(|_| "bad seed")?)
        }
        ["gen", "pref", n, k, seed] => {
            let n = dim(n)?;
            if !(2..=MAX_GEN_PREF_N).contains(&n) {
                return Err(format!("pref n {n} out of range"));
            }
            gen::pref_attach(n, dim(k)?, seed.parse().map_err(|_| "bad seed")?)
        }
        _ => return Err(format!("unknown graph spec {spec:?}")),
    };
    Ok(parsed)
}

fn dim(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("bad dimension {s:?}"))
}

fn parse_u64(req: &Request, key: &str) -> Result<Option<u64>, String> {
    match req.header(key) {
        None => Ok(None),
        Some(v) => v.parse().map(Some).map_err(|_| format!("bad {key} {v:?}")),
    }
}

fn handle_layout(
    shared: &Arc<Shared>,
    req: &Request,
    stream: &TcpStream,
    accepted: Instant,
) -> Response {
    if shared.draining() {
        return Response::new(proto::DRAINING, "draining");
    }
    let id = shared.req_seq.fetch_add(1, Ordering::Relaxed);

    // ---- Parse knobs -----------------------------------------------------
    let parsed = (|| -> Result<_, String> {
        let p = parse_u64(req, "dim")?.unwrap_or(2) as usize;
        if !(1..=16).contains(&p) {
            return Err(format!("dim {p} out of range 1..=16"));
        }
        let deadline_ms = parse_u64(req, "deadline-ms")?;
        let subspace = parse_u64(req, "subspace")?.map(|s| s as usize);
        let seed = parse_u64(req, "seed")?;
        let no_cache = req.header("no-cache") == Some("1");
        // Chaos/testing knob: hold the worker (cooperatively — cancel and
        // deadline still fire) before running, to make races reproducible.
        let hold_ms = parse_u64(req, "hold-ms")?.unwrap_or(0).min(MAX_HOLD_MS);
        Ok((p, deadline_ms, subspace, seed, no_cache, hold_ms))
    })();
    let (p, deadline_ms, subspace, seed, no_cache, hold_ms) = match parsed {
        Ok(v) => v,
        Err(msg) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Response::new(proto::BAD_REQUEST, "bad request").with("error", msg);
        }
    };
    let deadline = deadline_ms
        .map(|ms| Duration::from_millis(ms).min(shared.cfg.max_deadline))
        .unwrap_or(shared.cfg.default_deadline);

    // ---- Resolve the graph ----------------------------------------------
    let g = match resolve_graph(req) {
        Ok(g) => g,
        Err(msg) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            return Response::new(proto::BAD_REQUEST, "bad graph").with("error", msg);
        }
    };
    // Same preprocessing as the CLI: lay out the largest component. An
    // empty parse (e.g. an empty body) must reject here —
    // `largest_component` requires at least one vertex.
    if g.num_vertices() == 0 {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::new(proto::BAD_REQUEST, "bad graph")
            .with("error", "graph has no vertices");
    }
    let g = largest_component(&g).graph;
    let n = g.num_vertices();
    let m = g.num_edges();
    if n < 2 {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        return Response::new(proto::BAD_REQUEST, "bad graph")
            .with("error", format!("largest component has {n} vertices; need >= 2"));
    }

    // Post-clamp config, exactly as an uninterrupted CLI run would see it.
    let mut cfg = ParHdeConfig::for_graph(n);
    if let Some(s) = subspace {
        cfg.subspace = s.clamp(1, n.saturating_sub(1)).max(p.min(n - 1));
    }
    if let Some(seed) = seed {
        cfg.seed = seed;
    }

    // ---- Deadline already burned in the queue? ---------------------------
    let hard_deadline = accepted + deadline;
    if Instant::now() >= hard_deadline {
        shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
        parhde_trace::counter!("serve.timeout.queued", 1);
        return Response::new(proto::TIMEOUT, "deadline exhausted in queue")
            .with("deadline-ms", deadline.as_millis());
    }

    // ---- Cache lookup ----------------------------------------------------
    let key = cache_key(&g, &cfg, p);
    if !no_cache {
        if let Some(hit) = shared.cache.as_ref().and_then(|c| c.load(key)) {
            shared.stats.cache_hit.fetch_add(1, Ordering::Relaxed);
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            parhde_trace::counter!("serve.cache.hit", 1);
            let elapsed = accepted.elapsed();
            shared.clock.record_ms(elapsed.as_secs_f64() * 1e3);
            return ok_response(&hit.coords, n, m, &hit.rung, "hit", elapsed, &[]);
        }
    }

    // ---- Shared-budget admission ----------------------------------------
    let reservation = match shared.budget.admit(n, m, &cfg, p) {
        Ok(r) => r,
        Err(AdmitError::NeverFits { min_bytes, total }) => {
            shared.stats.rejected.fetch_add(1, Ordering::Relaxed);
            parhde_trace::counter!("serve.reject.too_large", 1);
            return Response::new(proto::TOO_LARGE, "exceeds memory budget")
                .with("estimated-bytes", min_bytes)
                .with("budget-bytes", total);
        }
        Err(AdmitError::Busy { min_bytes, free }) => {
            shared.stats.shed_busy.fetch_add(1, Ordering::Relaxed);
            parhde_trace::counter!("serve.shed.budget_busy", 1);
            let hint = shared.clock.retry_after_ms(shared.work_ahead());
            return Response::new(proto::OVERLOADED, "memory budget busy")
                .with("estimated-bytes", min_bytes)
                .with("free-bytes", free)
                .with("retry-after-ms", hint);
        }
    };
    let mut admission_note: Vec<String> = Vec::new();
    if reservation.downscaled {
        admission_note.push(format!(
            "admission downscaled subspace {} -> {} (shared budget)",
            cfg.subspace, reservation.subspace
        ));
        cfg.subspace = reservation.subspace;
    }

    // ---- Run -------------------------------------------------------------
    let flag = cancel_flag();
    // RAII: even a panicking run (caught at the connection boundary) must
    // unregister its watchdog entry and decrement the in-flight count.
    let _inflight = InflightGuard::enter(shared, id, stream, &flag);
    let result =
        run_layout(shared, id, &g, &cfg, p, hard_deadline, &flag, key, no_cache, hold_ms);
    drop(_inflight);
    drop(reservation);

    let elapsed = accepted.elapsed();
    shared.clock.record_ms(elapsed.as_secs_f64() * 1e3);
    match result {
        Ok(done) => {
            shared.stats.completed.fetch_add(1, Ordering::Relaxed);
            match done.cache_tag {
                "warm" => shared.stats.cache_warm.fetch_add(1, Ordering::Relaxed),
                _ => shared.stats.cache_cold.fetch_add(1, Ordering::Relaxed),
            };
            let mut notes = admission_note;
            notes.extend(done.warnings);
            ok_response(&done.coords, n, m, done.rung, done.cache_tag, elapsed, &notes)
        }
        Err(e) => {
            let (code, reason) = classify_error(&e);
            if code == proto::CANCELLED {
                shared.stats.cancelled.fetch_add(1, Ordering::Relaxed);
            } else {
                shared.stats.failed.fetch_add(1, Ordering::Relaxed);
            }
            Response::new(code, reason)
                .with("error", e.to_string())
                .with("hde-exit-code", e.exit_code())
        }
    }
}

/// Maps a typed pipeline error to a wire status.
fn classify_error(e: &HdeError) -> (u16, &'static str) {
    match e {
        HdeError::Cancelled { .. } => (proto::CANCELLED, "cancelled"),
        HdeError::DeadlineExceeded { .. } => (proto::TIMEOUT, "deadline exceeded"),
        HdeError::MemoryBudgetExceeded { .. } => (proto::TOO_LARGE, "memory budget"),
        HdeError::Internal(_) => (proto::INTERNAL, "internal error"),
        // Parse/config/degenerate/non-finite: the *request* was bad.
        _ => (proto::BAD_REQUEST, "layout failed"),
    }
}

struct Done {
    coords: ColMajorMatrix,
    rung: &'static str,
    cache_tag: &'static str,
    warnings: Vec<String>,
}

#[allow(clippy::too_many_arguments)]
fn run_layout(
    shared: &Arc<Shared>,
    id: u64,
    g: &CsrGraph,
    cfg: &ParHdeConfig,
    p: usize,
    hard_deadline: Instant,
    flag: &CancelFlag,
    key: u64,
    no_cache: bool,
    hold_ms: u64,
) -> Result<Done, HdeError> {
    // Trace sessions and ambient budget installs are process-exclusive:
    // one layout at a time, everything else queues here. The wait burns
    // the request's own deadline.
    let _exclusive = shared.layout_lock.lock().unwrap_or_else(|e| e.into_inner());
    let remaining = hard_deadline.saturating_duration_since(Instant::now());
    if remaining.is_zero() {
        return Err(HdeError::DeadlineExceeded { phase: "queued" });
    }
    if flag.load(Ordering::Relaxed) {
        return Err(HdeError::Cancelled { phase: "queued" });
    }
    cooperative_hold(hold_ms, flag, hard_deadline)?;

    let session = shared.cfg.report_dir.is_some().then(TraceSession::begin);
    let started = Instant::now();
    let outcome = run_layout_inner(shared, g, cfg, p, hard_deadline, flag, key, no_cache);
    if let Some(session) = session {
        let trace = session.finish();
        write_report(shared, id, g, cfg, p, &trace, started.elapsed(), &outcome);
    }
    outcome
}

/// The actual layout: warm-resume from a cached checkpoint when possible,
/// else the full supervised ladder.
#[allow(clippy::too_many_arguments)]
fn run_layout_inner(
    shared: &Arc<Shared>,
    g: &CsrGraph,
    cfg: &ParHdeConfig,
    p: usize,
    hard_deadline: Instant,
    flag: &CancelFlag,
    key: u64,
    no_cache: bool,
) -> Result<Done, HdeError> {
    let ckpt_spec = shared.cache.as_ref().map(|c| c.checkpoint_spec(key));

    // ---- Warm start: resume a post-BFS checkpoint an earlier identical
    // request left behind (cancelled, degraded, or drained mid-run).
    if !no_cache {
        if let Some(spec) = &ckpt_spec {
            let path = spec.file_path();
            if path.exists() {
                if let Ok(ckpt) = Checkpoint::read(&path) {
                    let budget = RunBudget::unbounded()
                        .with_external_cancel(Arc::clone(flag));
                    budget.arm_deadline_at(hard_deadline);
                    let installed = supervisor::install(&budget);
                    let resumed = parhde::try_par_hde_resume(g, cfg, p, &ckpt);
                    drop(installed);
                    match resumed {
                        Ok((coords, stats)) => {
                            parhde_trace::counter!("serve.cache.warm_resume", 1);
                            store_result(shared, key, &coords, "full", no_cache);
                            return Ok(Done {
                                coords,
                                rung: "full",
                                cache_tag: "warm",
                                warnings: warning_strings(&stats),
                            });
                        }
                        // Cancellation aborts the request; anything else
                        // (mismatch, corrupt, deadline) falls back to cold.
                        Err(e @ HdeError::Cancelled { .. }) => return Err(e),
                        Err(_) => {
                            let _ = std::fs::remove_file(&path);
                        }
                    }
                } else {
                    // Unreadable/corrupt checkpoint: evict, run cold.
                    let _ = std::fs::remove_file(&path);
                }
            }
        }
    }

    // ---- Cold: the full supervised ladder under this request's budget.
    let remaining = hard_deadline.saturating_duration_since(Instant::now());
    let opts = SuperviseOptions {
        deadline: Some(remaining.max(Duration::from_millis(1))),
        mem_budget_bytes: None, // admission already happened, shared
        checkpoint: ckpt_spec,
        honor_global_cancel: false, // drain handles signals; see DESIGN §13.5
        cancel_flag: Some(Arc::clone(flag)),
    };
    let sup = try_par_hde_nd_supervised(g, cfg, p, &opts)?;
    // Only full-quality layouts are cached: a degraded rung's output is an
    // artifact of *this* request's budget, not of the (graph, config) key.
    if sup.rung == "full" {
        store_result(shared, key, &sup.coords, sup.rung, no_cache);
    }
    let mut warnings = warning_strings(&sup.stats);
    warnings.extend(
        sup.ladder.iter().map(|s| format!("rung {} abandoned: {}", s.rung, s.cause)),
    );
    Ok(Done { coords: sup.coords, rung: sup.rung, cache_tag: "cold", warnings })
}

fn store_result(
    shared: &Arc<Shared>,
    key: u64,
    coords: &ColMajorMatrix,
    rung: &str,
    no_cache: bool,
) {
    if no_cache {
        return;
    }
    if let Some(cache) = &shared.cache {
        if let Err(e) = cache.store(key, coords, rung) {
            // Cache failures degrade to "no cache", never to request failure.
            eprintln!("parhde-serve: cache store failed: {e}");
        }
    }
}

fn warning_strings(stats: &HdeStats) -> Vec<String> {
    stats.warnings.iter().map(|w| w.to_string()).collect()
}

fn ok_response(
    coords: &ColMajorMatrix,
    n: usize,
    m: usize,
    rung: &str,
    cache_tag: &str,
    elapsed: Duration,
    notes: &[String],
) -> Response {
    let mut resp = Response::new(proto::OK, "ok")
        .with("n", n)
        .with("m", m)
        .with("dim", coords.cols())
        .with("rung", rung)
        .with("cache", cache_tag)
        .with("elapsed-ms", elapsed.as_millis());
    if !notes.is_empty() {
        resp = resp.with("warnings", notes.len());
        for note in notes {
            resp = resp.with("warning", note);
        }
    }
    resp.body = coords_csv(coords);
    resp
}

/// The coordinate CSV body: one row per vertex, shortest-roundtrip float
/// formatting — bit-identical coordinates produce byte-identical bodies,
/// which the cache-consistency tests rely on.
fn coords_csv(coords: &ColMajorMatrix) -> String {
    let (n, p) = (coords.rows(), coords.cols());
    let mut out = String::with_capacity(n * p * 20);
    for r in 0..n {
        for c in 0..p {
            if c > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}", coords.col(c)[r]));
        }
        out.push('\n');
    }
    out
}

/// Scopes one request's in-flight accounting and watchdog registration;
/// the drop path runs even when the request panics.
struct InflightGuard<'a> {
    shared: &'a Arc<Shared>,
    id: u64,
}

impl<'a> InflightGuard<'a> {
    fn enter(
        shared: &'a Arc<Shared>,
        id: u64,
        stream: &TcpStream,
        flag: &CancelFlag,
    ) -> Self {
        register_watch(shared, id, stream, flag);
        shared.inflight.fetch_add(1, Ordering::Relaxed);
        InflightGuard { shared, id }
    }
}

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.shared.inflight.fetch_sub(1, Ordering::Relaxed);
        unregister_watch(self.shared, self.id);
    }
}

fn register_watch(shared: &Arc<Shared>, id: u64, stream: &TcpStream, flag: &CancelFlag) {
    let Ok(clone) = stream.try_clone() else { return };
    // Short peek timeout: the watchdog must never stall on one socket.
    let _ = clone.set_read_timeout(Some(Duration::from_millis(1)));
    shared.watch.lock().unwrap_or_else(|e| e.into_inner()).push(WatchEntry {
        id,
        stream: clone,
        flag: Arc::clone(flag),
    });
}

fn unregister_watch(shared: &Arc<Shared>, id: u64) {
    shared
        .watch
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .retain(|e| e.id != id);
}

/// Polls every in-flight request's socket; a clean EOF or a hard error
/// means the client is gone → fire that request's cancel flag. `peek`
/// never consumes bytes, so a (protocol-violating) pipelined byte stays
/// readable. Runs until the server fully drains.
fn watchdog_loop(shared: &Arc<Shared>) {
    let mut buf = [0u8; 1];
    while !shared.stop_watchdog.load(Ordering::Relaxed) {
        {
            let watch = shared.watch.lock().unwrap_or_else(|e| e.into_inner());
            for entry in watch.iter() {
                match entry.stream.peek(&mut buf) {
                    Ok(0) => {
                        if !entry.flag.swap(true, Ordering::SeqCst) {
                            parhde_trace::counter!("serve.cancel.disconnect", 1);
                        }
                    }
                    Ok(_) => {}
                    Err(e)
                        if e.kind() == std::io::ErrorKind::WouldBlock
                            || e.kind() == std::io::ErrorKind::TimedOut => {}
                    Err(_) => {
                        if !entry.flag.swap(true, Ordering::SeqCst) {
                            parhde_trace::counter!("serve.cancel.disconnect", 1);
                        }
                    }
                }
            }
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[allow(clippy::too_many_arguments)]
fn write_report(
    shared: &Arc<Shared>,
    id: u64,
    g: &CsrGraph,
    cfg: &ParHdeConfig,
    p: usize,
    trace: &parhde_trace::Trace,
    total: Duration,
    outcome: &Result<Done, HdeError>,
) {
    let Some(dir) = &shared.cfg.report_dir else { return };
    let (exit_code, error, rung, cache_tag, warnings) = match outcome {
        Ok(done) => (0, None, done.rung, done.cache_tag, done.warnings.clone()),
        Err(e) => (e.exit_code(), Some(e.to_string()), "none", "cold", Vec::new()),
    };
    let mut report = RunReport {
        binary: "parhde-serve".into(),
        algo: "parhde".into(),
        graph_n: g.num_vertices() as u64,
        graph_m: g.num_edges() as u64,
        config: vec![
            ("request_id".into(), id.to_string()),
            ("subspace".into(), cfg.subspace.to_string()),
            ("dim".into(), p.to_string()),
            ("seed".into(), cfg.seed.to_string()),
            ("rung".into(), rung.into()),
            ("cache".into(), cache_tag.into()),
        ],
        phases: trace.phase_seconds(),
        warnings,
        exit_code,
        error,
        total_seconds: total.as_secs_f64(),
        ..RunReport::default()
    };
    report.counters = trace.counter_totals();
    report.gauges = trace.gauge_finals();
    let path = dir.join(format!("req-{id}.json"));
    if let Err(e) = std::fs::write(&path, report.to_json()) {
        eprintln!("parhde-serve: report write failed for {}: {e}", path.display());
    }
}
