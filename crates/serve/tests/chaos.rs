//! Chaos harness: an in-process daemon under hostile clients (DESIGN.md
//! §13.6). Every scenario asserts two things — the specific typed outcome,
//! and that the daemon keeps serving afterwards.
//!
//! The ambient run budget and the trace collector are process-exclusive,
//! so these tests serialize on one mutex (they still exercise *server*
//! concurrency: each spins up its own worker pool and client threads).

use parhde_serve::cache::{cache_key, LayoutCache};
use parhde_serve::client::{call_once, Client};
use parhde_serve::proto::{self, Op, Request, Response};
use parhde_serve::server::{serve, Server, ServerConfig};
use parhde_graph::gen::{self, poison};
use parhde_graph::prep::largest_component;
use parhde_trace::registry::{self, Snapshot};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A unique scratch dir per test, recreated empty.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("parhde-serve-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = serve(cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

fn layout_req(spec: &str) -> Request {
    Request::new(Op::Layout).with("graph", spec).with("deadline-ms", 30_000)
}

fn call(addr: &str, req: &Request) -> Response {
    call_once(addr, req, Duration::from_secs(60)).expect("well-formed exchange")
}

fn ping_stat(addr: &str, key: &str) -> u64 {
    let resp = call(addr, &Request::new(Op::Ping));
    assert!(resp.is_ok(), "ping failed: {}", resp.reason);
    resp.header(key).and_then(|v| v.parse().ok()).unwrap_or(0)
}

/// Scrape the daemon's NDJSON metrics snapshot (must succeed — only for
/// use when the queue cannot be full).
fn stats_snapshot(addr: &str) -> Snapshot {
    let resp = call(addr, &Request::new(Op::Stats).with("format", "ndjson"));
    assert!(resp.is_ok(), "stats failed: {} {}", resp.code, resp.reason);
    Snapshot::from_ndjson(&resp.body).expect("valid metrics ndjson")
}

/// The eight terminal layout counters; every started request must end in
/// exactly one of them.
const TERMINALS: [&str; 8] = [
    "parhde_layout_completed_total",
    "parhde_layout_rejected_total",
    "parhde_layout_timeout_total",
    "parhde_layout_too_large_total",
    "parhde_layout_busy_total",
    "parhde_layout_cancelled_total",
    "parhde_layout_failed_total",
    "parhde_layout_drained_total",
];

fn terminal_sum(snap: &Snapshot) -> u64 {
    TERMINALS.iter().map(|n| snap.counter(n).unwrap_or(0)).sum()
}

#[test]
fn round_trip_then_cache_hit_is_byte_identical() {
    let _guard = serialize();
    let dir = scratch("roundtrip");
    let (server, addr) = start(ServerConfig {
        cache_dir: Some(dir.join("cache")),
        report_dir: Some(dir.join("reports")),
        ..Default::default()
    });

    let cold = call(&addr, &layout_req("gen:grid:12:12"));
    assert!(cold.is_ok(), "cold: {} {}", cold.code, cold.reason);
    assert_eq!(cold.header("cache"), Some("cold"));
    assert_eq!(cold.header("n"), Some("144"));
    assert_eq!(cold.header("rung"), Some("full"));
    assert_eq!(cold.body.lines().count(), 144);
    for line in cold.body.lines() {
        for field in line.split(',') {
            let v: f64 = field.parse().expect("CSV field parses as f64");
            assert!(v.is_finite());
        }
    }

    let hit = call(&addr, &layout_req("gen:grid:12:12"));
    assert!(hit.is_ok());
    assert_eq!(hit.header("cache"), Some("hit"));
    // The cache must return exactly what the cold run computed.
    assert_eq!(hit.body, cold.body);

    // The per-request run reports validate against the trace schema.
    let reports: Vec<_> = std::fs::read_dir(dir.join("reports"))
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert!(!reports.is_empty(), "no run reports written");
    for path in &reports {
        let text = std::fs::read_to_string(path).unwrap();
        parhde_trace::RunReport::validate(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
    }

    assert!(server.stray_tmp_files().is_empty());
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn warm_resume_completes_from_a_planted_checkpoint() {
    let _guard = serialize();
    let dir = scratch("warm");
    // Build the graph exactly as the server will: gen → largest component.
    let g = largest_component(&gen::grid2d(20, 20)).graph;
    let cfg = parhde::config::ParHdeConfig::for_graph(g.num_vertices());
    let key = cache_key(&g, &cfg, 2);
    // Plant a post-BFS checkpoint where the server's cache will look,
    // simulating an identical earlier request that died mid-run.
    let cache = LayoutCache::open(dir.join("cache")).unwrap();
    let spec = cache.checkpoint_spec(key);
    parhde::try_par_hde_nd_checkpointed(&g, &cfg, 2, &spec).unwrap();
    assert!(spec.file_path().exists(), "planted checkpoint missing");

    let (server, addr) = start(ServerConfig {
        cache_dir: Some(dir.join("cache")),
        ..Default::default()
    });
    let resp = call(&addr, &layout_req("gen:grid:20:20"));
    assert!(resp.is_ok(), "{} {}", resp.code, resp.reason);
    assert_eq!(resp.header("cache"), Some("warm"), "expected warm resume");
    assert_eq!(resp.header("rung"), Some("full"));

    // The warm result was stored, so the next identical request is a hit.
    let hit = call(&addr, &layout_req("gen:grid:20:20"));
    assert_eq!(hit.header("cache"), Some("hit"));
    assert_eq!(hit.body, resp.body);

    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn overload_sheds_429_with_retry_after_and_recovers() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..Default::default()
    });

    // Saturate: one held request occupies the worker, one fills the
    // queue, the rest must be shed with a typed 429 before being read.
    let mut handles = Vec::new();
    for _ in 0..6 {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let req = layout_req("gen:grid:12:12")
                .with("no-cache", 1)
                .with("hold-ms", 1_500);
            call_once(&addr, &req, Duration::from_secs(120))
        }));
    }
    let responses: Vec<Response> =
        handles.into_iter().map(|h| h.join().unwrap().expect("exchange")).collect();

    let ok = responses.iter().filter(|r| r.is_ok()).count();
    let shed: Vec<&Response> =
        responses.iter().filter(|r| r.code == proto::OVERLOADED).collect();
    assert!(ok >= 1, "at least the in-flight request completes");
    assert!(!shed.is_empty(), "expected shedding with workers=1 queue=1");
    for r in &shed {
        let hint: u64 = r
            .header("retry-after-ms")
            .expect("429 carries retry-after-ms")
            .parse()
            .expect("retry-after-ms is numeric");
        assert!((50..=30_000).contains(&hint), "hint {hint} out of clamp");
    }

    // The daemon recovers once load passes.
    let after = call(&addr, &layout_req("gen:grid:8:8"));
    assert!(after.is_ok(), "post-overload request failed: {}", after.reason);
    server.drain();
}

#[test]
fn poison_graphs_get_typed_400s_and_the_daemon_survives() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig::default());

    // These must come back as typed 400s: unparseable or degenerate.
    let must_reject = [
        poison::truncated_matrix_market(2), // size line, zero entries
        poison::chopped_size_line(),        // the historical unwrap() crasher
        poison::garbage_tail_edge_list(16),
        String::new(),                     // empty body
        "0 0\n0 0\n".to_string(),          // self-loops only → degenerate
        "not a graph at all\n".to_string() // garbage
    ];
    for (i, body) in must_reject.iter().enumerate() {
        let mut req = Request::new(Op::Layout).with("graph", "inline");
        req.body = body.clone();
        let resp = call(&addr, &req);
        assert_eq!(
            resp.code,
            proto::BAD_REQUEST,
            "poison #{i} got {} {} (want 400)",
            resp.code,
            resp.reason
        );
        assert!(resp.header("error").is_some(), "poison #{i}: no error header");
    }
    // These are *partially* parseable by design (a truncated download can
    // still contain a valid prefix): the contract is a typed 200 or 400,
    // never a 5xx and never a dead daemon.
    let lenient = [poison::truncated_matrix_market(3), poison::nan_matrix_market()];
    for (i, body) in lenient.iter().enumerate() {
        let mut req = Request::new(Op::Layout).with("graph", "inline");
        req.body = body.clone();
        let resp = call(&addr, &req);
        assert!(
            resp.is_ok() || resp.code == proto::BAD_REQUEST,
            "lenient poison #{i} got {} {}",
            resp.code,
            resp.reason
        );
    }

    // Hostile knobs are 400s too, not panics.
    for bad in [
        layout_req("gen:grid:999999:999999"),
        layout_req("gen:kron:63:16:1"),
        layout_req("gen:pref:999999999:2:1"),
        layout_req("unknown:spec"),
        layout_req("gen:grid:10:10").with("dim", 99),
        Request::new(Op::Layout).with("graph", "gen:grid:10:10").with("deadline-ms", "soon"),
        Request::new(Op::Layout).with("graph", "gen:grid:10:10").with("hold-ms", "-5"),
    ] {
        let resp = call(&addr, &bad);
        assert_eq!(
            resp.code,
            proto::BAD_REQUEST,
            "request {:?} → {} {:?}",
            bad.headers,
            resp.code,
            resp.reason
        );
    }

    // A raw non-protocol frame gets a 400 as well.
    let resp = call(&addr, &{
        // Request::parse would reject this; build the frame by hand.
        let mut fake = Request::new(Op::Ping);
        fake.headers.push(("x".into(), "y".into()));
        fake
    });
    assert!(resp.is_ok());

    let good = call(&addr, &layout_req("gen:grid:9:9"));
    assert!(good.is_ok(), "daemon did not survive the poison sweep");
    assert_eq!(ping_stat(&addr, "failed"), 0, "poison must reject, not fail");
    server.drain();
}

#[test]
fn client_disconnect_cancels_the_inflight_run() {
    let _guard = serialize();
    let dir = scratch("disconnect");
    let (server, addr) = start(ServerConfig {
        cache_dir: Some(dir.join("cache")),
        ..Default::default()
    });

    // Hold the run long enough that the watchdog (25 ms poll) sees the
    // disconnect long before completion.
    let req = layout_req("gen:grid:40:40").with("no-cache", 1).with("hold-ms", 5_000);
    Client::connect(&addr).unwrap().fire_and_disconnect(&req).unwrap();

    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if ping_stat(&addr, "cancelled") >= 1 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "disconnect was never observed as a cancellation"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // The daemon is fully live afterwards.
    let after = call(&addr, &layout_req("gen:grid:10:10"));
    assert!(after.is_ok());
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn draining_answers_queued_work_with_503_and_leaves_no_tmp() {
    let _guard = serialize();
    let dir = scratch("drain");
    let (server, addr) = start(ServerConfig {
        workers: 1,
        queue_capacity: 4,
        cache_dir: Some(dir.join("cache")),
        drain_grace: Duration::from_secs(120),
        ..Default::default()
    });

    // Occupy the single worker with a held request, queue another behind
    // it, then drain: the queued one must be answered 503, not dropped.
    let slow_addr = addr.clone();
    let slow = std::thread::spawn(move || {
        let req = layout_req("gen:grid:12:12").with("no-cache", 1).with("hold-ms", 2_000);
        call_once(&slow_addr, &req, Duration::from_secs(120))
    });
    std::thread::sleep(Duration::from_millis(300)); // let it start holding
    let queued_addr = addr.clone();
    let queued = std::thread::spawn(move || {
        call_once(&queued_addr, &layout_req("gen:grid:30:30"), Duration::from_secs(120))
    });
    std::thread::sleep(Duration::from_millis(100)); // let it enqueue

    server.request_drain();
    let slow_resp = slow.join().unwrap().expect("slow exchange");
    let queued_resp = queued.join().unwrap().expect("queued exchange");
    // The in-flight request finishes normally (grace is generous here);
    // the queued one is refused with the draining status.
    assert!(slow_resp.is_ok(), "{} {}", slow_resp.code, slow_resp.reason);
    assert_eq!(queued_resp.code, proto::DRAINING);

    assert!(server.stray_tmp_files().is_empty(), "torn cache writes left behind");
    server.drain();

    // Post-drain: no partial files anywhere under the cache dir.
    let mut stack = vec![dir.clone()];
    while let Some(d) = stack.pop() {
        for entry in std::fs::read_dir(&d).into_iter().flatten().flatten() {
            let p = entry.path();
            if p.is_dir() {
                stack.push(p);
            } else {
                assert_ne!(
                    p.extension().and_then(|e| e.to_str()),
                    Some("tmp"),
                    "stray tmp file {}",
                    p.display()
                );
            }
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn concurrent_requests_share_the_memory_budget_and_release_it() {
    let _guard = serialize();
    // A budget sized so concurrent biggish requests contend: some must be
    // downscaled or shed busy, and afterwards the pool must drain to zero.
    let one = parhde::supervise::estimate_run_bytes(
        90_000,
        360_000,
        10,
        2,
        parhde::config::BfsMode::Auto,
        parhde::config::LinalgMode::Fused,
    );
    let (server, addr) = start(ServerConfig {
        workers: 4,
        queue_capacity: 8,
        mem_budget_bytes: one + one / 2,
        ..Default::default()
    });

    let mut handles = Vec::new();
    for _ in 0..4 {
        let addr = addr.clone();
        handles.push(std::thread::spawn(move || {
            let req = layout_req("gen:grid:300:300")
                .with("no-cache", 1)
                .with("subspace", 10)
                .with("hold-ms", 500); // keep the reservations overlapping
            call_once(&addr, &req, Duration::from_secs(120)).expect("exchange")
        }));
    }
    let responses: Vec<Response> =
        handles.into_iter().map(|h| h.join().unwrap()).collect();
    for r in &responses {
        assert!(
            r.is_ok() || r.code == proto::OVERLOADED || r.code == proto::TOO_LARGE,
            "unexpected {} {}",
            r.code,
            r.reason
        );
    }
    assert!(responses.iter().any(|r| r.is_ok()), "nothing completed");

    // Every reservation was released (RAII) once the dust settled.
    assert_eq!(ping_stat(&addr, "budget-reserved"), 0);
    server.drain();
}

#[test]
fn undersized_budget_rejects_413_before_any_work() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig {
        mem_budget_bytes: 64 * 1024, // nothing real fits
        ..Default::default()
    });
    let resp = call(&addr, &layout_req("gen:grid:200:200"));
    assert_eq!(resp.code, proto::TOO_LARGE);
    let est: u64 = resp.header("estimated-bytes").unwrap().parse().unwrap();
    let budget: u64 = resp.header("budget-bytes").unwrap().parse().unwrap();
    assert!(est > budget);
    server.drain();
}

#[test]
fn corrupt_cache_entries_are_evicted_not_served() {
    let _guard = serialize();
    let dir = scratch("corrupt");
    let (server, addr) = start(ServerConfig {
        cache_dir: Some(dir.join("cache")),
        ..Default::default()
    });
    let first = call(&addr, &layout_req("gen:grid:11:11"));
    assert!(first.is_ok());
    assert_eq!(first.header("cache"), Some("cold"));

    // Flip one byte in every cache entry on disk.
    let mut flipped = 0;
    for entry in std::fs::read_dir(dir.join("cache")).unwrap().flatten() {
        let p = entry.path();
        if p.is_file() {
            let mut bytes = std::fs::read(&p).unwrap();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x40;
            std::fs::write(&p, bytes).unwrap();
            flipped += 1;
        }
    }
    assert!(flipped >= 1, "no cache entries written");

    // The corrupted entry must be detected, evicted, and recomputed
    // (cold, or warm from the run's leftover checkpoint) — byte-identical
    // to the original run, never served corrupt.
    let again = call(&addr, &layout_req("gen:grid:11:11"));
    assert!(again.is_ok());
    assert_ne!(again.header("cache"), Some("hit"), "corrupt entry was served");
    assert_eq!(again.body, first.body);

    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn stats_scrape_is_consistent_under_load() {
    let _guard = serialize();
    let dir = scratch("stats");
    let (server, addr) = start(ServerConfig {
        workers: 2,
        queue_capacity: 8,
        cache_dir: Some(dir.join("cache")),
        ..Default::default()
    });

    // Three clients fire layouts (repeats → cache hits) while the main
    // thread scrapes STATS in both formats. STATS must stay answerable
    // and well-formed mid-load, and counters must never show a request
    // that finished without starting.
    let remaining = Arc::new(AtomicUsize::new(3));
    let mut handles = Vec::new();
    for t in 0..3 {
        let addr = addr.clone();
        let remaining = Arc::clone(&remaining);
        handles.push(std::thread::spawn(move || {
            let specs = ["gen:grid:10:10", "gen:grid:11:11", "gen:grid:12:12"];
            let mut ok = 0u64;
            for i in 0..4 {
                let resp = call_once(
                    &addr,
                    &layout_req(specs[(t + i) % specs.len()]),
                    Duration::from_secs(60),
                )
                .expect("exchange");
                assert!(
                    resp.header("trace-id").is_some(),
                    "response missing trace-id: {} {}",
                    resp.code,
                    resp.reason
                );
                if resp.is_ok() {
                    ok += 1;
                }
            }
            remaining.fetch_sub(1, Ordering::SeqCst);
            ok
        }));
    }

    // Mid-load scrapes: a full queue may shed the scrape connection with
    // a 429 — that is allowed; a malformed body or a 5xx is not.
    let mut scrapes = 0u32;
    while remaining.load(Ordering::SeqCst) > 0 {
        let prom = call(&addr, &Request::new(Op::Stats));
        if prom.is_ok() {
            assert_eq!(prom.header("format"), Some("prometheus"));
            registry::validate_prometheus(&prom.body)
                .unwrap_or_else(|e| panic!("mid-load prometheus invalid: {e}"));
        } else {
            assert_eq!(prom.code, proto::OVERLOADED, "{} {}", prom.code, prom.reason);
        }
        let nd = call(&addr, &Request::new(Op::Stats).with("format", "ndjson"));
        if nd.is_ok() {
            let snap = Snapshot::from_ndjson(&nd.body)
                .unwrap_or_else(|e| panic!("mid-load ndjson invalid: {e}"));
            let started =
                snap.counter("parhde_requests_started_total").unwrap_or(0);
            assert!(
                started >= terminal_sum(&snap),
                "more terminal outcomes than started requests"
            );
            scrapes += 1;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    let ok_total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(ok_total >= 1, "no layout succeeded under load");
    assert!(scrapes >= 1, "never managed a mid-load scrape");

    // Quiesced: every started request reached exactly one terminal, and
    // the completions match what the clients saw.
    let snap = stats_snapshot(&addr);
    let started = snap.counter("parhde_requests_started_total").unwrap_or(0);
    assert_eq!(
        started,
        terminal_sum(&snap),
        "lifecycle invariant broken: started != sum of terminals"
    );
    assert_eq!(snap.counter("parhde_layout_completed_total"), Some(ok_total));
    assert_eq!(snap.gauge("parhde_inflight"), Some(0.0));
    assert!(snap.histogram("parhde_request_duration_ms").is_some());

    // Backend visibility: both gauges are present, and the active backend
    // is the one the CPU supports (this suite runs with the auto default,
    // so supported ⇔ active — a silent scalar fallback would show here).
    let supported = snap.gauge("parhde_cpu_simd_supported");
    assert!(supported == Some(0.0) || supported == Some(1.0), "{supported:?}");
    assert_eq!(snap.gauge("parhde_backend_simd_active"), supported);

    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_is_bounded_and_evicts_oldest() {
    let _guard = serialize();
    let dir = scratch("bounded");
    // One 144-vertex 2-D entry is 64 + 144·2·8 = 2368 bytes on disk, so a
    // 5000-byte bound holds exactly two entries.
    let bound = 5_000u64;
    let (server, addr) = start(ServerConfig {
        cache_dir: Some(dir.join("cache")),
        cache_max_bytes: Some(bound),
        ..Default::default()
    });

    // Three distinct 144-vertex graphs, stored oldest → newest.
    let specs = ["gen:grid:12:12", "gen:grid:9:16", "gen:grid:8:18"];
    for spec in specs {
        let resp = call(&addr, &layout_req(spec));
        assert!(resp.is_ok(), "{spec}: {} {}", resp.code, resp.reason);
        assert_eq!(resp.header("cache"), Some("cold"));
    }

    // The third store pushed the oldest entry out; the newest two remain.
    let snap = stats_snapshot(&addr);
    assert!(
        snap.counter("parhde_cache_evictions_total").unwrap_or(0) >= 1,
        "no eviction recorded"
    );
    assert_eq!(snap.gauge("parhde_cache_entries"), Some(2.0));
    assert!(snap.gauge("parhde_cache_bytes").unwrap_or(f64::MAX) <= bound as f64);

    // Newest entry still serves from cache; the evicted oldest does not.
    let newest = call(&addr, &layout_req(specs[2]));
    assert_eq!(newest.header("cache"), Some("hit"));
    let oldest = call(&addr, &layout_req(specs[0]));
    assert!(oldest.is_ok());
    assert_ne!(oldest.header("cache"), Some("hit"), "evicted entry was served");

    // The bound holds on disk too, not just in the counters.
    let on_disk: u64 = std::fs::read_dir(dir.join("cache"))
        .unwrap()
        .flatten()
        .filter(|e| e.path().is_file())
        .map(|e| e.metadata().unwrap().len())
        .sum();
    assert!(on_disk <= bound, "cache dir holds {on_disk} bytes > bound {bound}");

    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}
