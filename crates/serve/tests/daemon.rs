//! Signal-driven lifecycle of the real `parhde-serve` binary: first
//! SIGTERM drains to exit 0, a second force-exits 130 (DESIGN.md §13.5).
//! Uses `/bin/kill` so the test needs no signal crate.

#![cfg(unix)]

use parhde_serve::client::call_once;
use parhde_serve::proto::{Op, Request};
use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

fn spawn_daemon(extra: &[&str]) -> (Child, String) {
    let bin = env!("CARGO_BIN_EXE_parhde-serve");
    let mut child = Command::new(bin)
        .arg("--listen")
        .arg("127.0.0.1:0")
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("daemon spawns");
    // The daemon prints `listening on <addr>` once bound.
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout).read_line(&mut line).expect("banner");
    let addr = line
        .trim()
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
        .to_string();
    (child, addr)
}

fn signal(pid: u32, sig: &str) {
    let status = Command::new("/bin/kill")
        .arg(format!("-{sig}"))
        .arg(pid.to_string())
        .status()
        .expect("kill runs");
    assert!(status.success(), "kill -{sig} {pid} failed");
}

fn wait_with_deadline(child: &mut Child, limit: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + limit;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("daemon did not exit within {limit:?}");
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

#[test]
fn sigterm_drains_and_exits_zero() {
    let (mut child, addr) = spawn_daemon(&[]);

    // It serves before the signal…
    let resp = call_once(
        &addr,
        &Request::new(Op::Layout).with("graph", "gen:grid:10:10"),
        Duration::from_secs(60),
    )
    .expect("layout round trip");
    assert!(resp.is_ok(), "{} {}", resp.code, resp.reason);

    // …and one SIGTERM drains it to a clean exit.
    signal(child.id(), "TERM");
    let status = wait_with_deadline(&mut child, Duration::from_secs(30));
    assert_eq!(status.code(), Some(0), "drain should exit 0, got {status:?}");
}

#[test]
fn second_signal_force_exits_130() {
    // A long drain grace so the first signal alone would keep the process
    // alive well past the point where we send the second.
    let (mut child, addr) = spawn_daemon(&["--drain-grace-ms", "60000", "--workers", "1"]);

    // Park a long-running layout on the single worker so draining has
    // in-flight work to wait for.
    let slow_addr = addr.clone();
    let slow = std::thread::spawn(move || {
        let req = Request::new(Op::Layout)
            .with("graph", "gen:grid:12:12")
            .with("deadline-ms", 120_000)
            .with("no-cache", 1)
            .with("hold-ms", 10_000);
        // Outcome irrelevant: the daemon may die mid-exchange.
        let _ = call_once(&slow_addr, &req, Duration::from_secs(120));
    });
    std::thread::sleep(Duration::from_millis(300)); // let the run start

    signal(child.id(), "TERM");
    std::thread::sleep(Duration::from_millis(300));
    // Still draining (grace is 60 s), so it must still be alive…
    assert!(child.try_wait().expect("try_wait").is_none(), "died on first signal");
    // …until the second signal force-exits 130.
    signal(child.id(), "TERM");
    let status = wait_with_deadline(&mut child, Duration::from_secs(10));
    assert_eq!(status.code(), Some(130), "second signal should exit 130");
    let _ = slow.join();
}
