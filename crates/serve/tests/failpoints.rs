//! Failpoint-armed integration tests (DESIGN.md §16.1): the daemon under
//! a *deterministic* fault schedule. These live in their own test binary
//! because failpoints are process-global — arming one would perturb any
//! test running concurrently in the same process. Every test serializes
//! on one mutex and disarms via an RAII guard so a panicking test cannot
//! leak its schedule into the next.

use parhde_serve::client::{call_once, Client, RetryPolicy, RetryingClient};
use parhde_serve::proto::{self, Op, Request};
use parhde_serve::server::{serve, Server, ServerConfig};
use parhde_trace::registry::Snapshot;
use parhde_util::failpoint;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes the test AND guarantees disarm on exit (even by panic).
struct Armed {
    _guard: MutexGuard<'static, ()>,
}

impl Armed {
    fn arm(spec: &str) -> Armed {
        let guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        failpoint::disarm(); // a previous panic may have leaked a schedule
        failpoint::arm(spec).expect("valid failpoint spec");
        Armed { _guard: guard }
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        failpoint::disarm();
    }
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("parhde-serve-failpoints-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = serve(cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

fn layout_req(spec: &str) -> Request {
    Request::new(Op::Layout).with("graph", spec).with("deadline-ms", 30_000)
}

/// A fast, aggressive retry policy so fault-heavy tests stay quick.
fn eager_retries(seed: u64) -> RetryPolicy {
    RetryPolicy {
        max_retries: 8,
        base: Duration::from_millis(2),
        cap: Duration::from_millis(50),
        seed,
    }
}

fn stats_snapshot(addr: &str) -> Snapshot {
    let req = Request::new(Op::Stats).with("format", "ndjson");
    let resp = call_once(addr, &req, Duration::from_secs(30)).expect("stats exchange");
    assert!(resp.is_ok(), "stats failed: {} {}", resp.code, resp.reason);
    Snapshot::from_ndjson(&resp.body).expect("valid metrics ndjson")
}

const TERMINALS: [&str; 8] = [
    "parhde_layout_completed_total",
    "parhde_layout_rejected_total",
    "parhde_layout_timeout_total",
    "parhde_layout_too_large_total",
    "parhde_layout_busy_total",
    "parhde_layout_cancelled_total",
    "parhde_layout_failed_total",
    "parhde_layout_drained_total",
];

fn assert_lifecycle_invariant(snap: &Snapshot) {
    let started = snap.counter("parhde_requests_started_total").unwrap_or(0);
    let terminals: u64 = TERMINALS.iter().map(|n| snap.counter(n).unwrap_or(0)).sum();
    assert_eq!(started, terminals, "lifecycle invariant broken under failpoints");
}

/// One deterministic sequential traffic mix: keep-alive layouts (cold,
/// then cache/warm repeats) plus pings, all through the retrying client.
/// Returns how many calls needed at least one retry.
fn fixed_traffic(addr: &str) -> u64 {
    let mut client = RetryingClient::new(addr, Duration::from_secs(60), eager_retries(7));
    let mut retried = 0u64;
    for i in 0..12 {
        let req = if i % 4 == 3 {
            Request::new(Op::Ping)
        } else {
            layout_req(if i % 2 == 0 { "gen:grid:8:8" } else { "gen:grid:9:9" })
        };
        let out = client
            .call(&req)
            .unwrap_or_else(|e| panic!("request {i} lost despite retries: {e}"));
        assert!(
            out.response.is_ok(),
            "request {i}: {} {}",
            out.response.code,
            out.response.reason
        );
        retried += u64::from(out.retries > 0);
    }
    retried
}

#[test]
fn same_seed_means_same_fire_schedule_and_zero_lost_requests() {
    const SPEC: &str = "seed=42,serve.read_frame=err:0.2";

    // Run A: every request must be answered despite a 20% per-read fault
    // rate — absorbed by reconnect + retry, never surfaced to the caller.
    let armed = Armed::arm(SPEC);
    let dir_a = scratch("repro-a");
    let (server_a, addr_a) = start(ServerConfig {
        cache_dir: Some(dir_a.join("cache")),
        ..Default::default()
    });
    fixed_traffic(&addr_a);
    let counts_a = failpoint::site_counts();
    server_a.drain();
    drop(armed);

    let fired_a: u64 = counts_a.iter().map(|(_, _, f)| f).sum();
    assert!(fired_a >= 1, "schedule never fired: {counts_a:?}");

    // Run B: same seed, same traffic → byte-identical evaluation/fire
    // counts per site, in the same first-evaluation order.
    let armed = Armed::arm(SPEC);
    let dir_b = scratch("repro-b");
    let (server_b, addr_b) = start(ServerConfig {
        cache_dir: Some(dir_b.join("cache")),
        ..Default::default()
    });
    fixed_traffic(&addr_b);
    let counts_b = failpoint::site_counts();
    server_b.drain();
    drop(armed);

    assert_eq!(counts_a, counts_b, "same seed produced a different schedule");
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn write_fault_cancels_buffered_pipeline_successors() {
    let armed = Armed::arm("seed=1,serve.write_response=err:1");
    let (server, addr) = start(ServerConfig::default());

    // Pipeline three pings. The server reads ping #1, its response write
    // fails before any byte, and the two buffered successors must be
    // accounted cancelled — received but never answerable.
    let mut stream = std::net::TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    for _ in 0..3 {
        proto::write_frame(&mut stream, &Request::new(Op::Ping).encode()).unwrap();
    }
    // A clean close or a reset are both fine — any transport error is.
    if let Ok(payload) = proto::read_frame(&mut stream) {
        panic!("got a response through a dead write path: {payload:?}");
    }
    drop(stream);
    drop(armed); // disarm so the scrape below can be answered

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let snap = stats_snapshot(&addr);
        if snap.counter("parhde_pipeline_cancelled_total") == Some(2) {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "buffered successors never accounted: {:?}",
            snap.counter("parhde_pipeline_cancelled_total")
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    server.drain();
}

#[test]
fn cache_rename_fault_leaves_no_torn_entry_and_recovery_is_clean() {
    let armed = Armed::arm("seed=3,cache.rename=err:1");
    let dir = scratch("rename");
    let (server, addr) = start(ServerConfig {
        cache_dir: Some(dir.join("cache")),
        ..Default::default()
    });

    // The layout itself succeeds — cache failures degrade to "no cache",
    // never to request failure — but the store dies at the rename, and
    // the staging file must not survive it.
    let first = call_once(&addr, &layout_req("gen:grid:10:10"), Duration::from_secs(60))
        .expect("exchange");
    assert!(first.is_ok(), "{} {}", first.code, first.reason);
    assert_eq!(first.header("cache"), Some("cold"));
    assert!(server.stray_tmp_files().is_empty(), "torn entry left on disk");

    // Nothing was published, so the repeat cannot be a cache hit (a warm
    // checkpoint resume is fine) — and it must be byte-identical.
    let again = call_once(&addr, &layout_req("gen:grid:10:10"), Duration::from_secs(60))
        .expect("exchange");
    assert!(again.is_ok());
    assert_ne!(again.header("cache"), Some("hit"), "unpublished entry was served");
    assert_eq!(again.body, first.body);
    assert!(server.stray_tmp_files().is_empty());

    // Disarmed, the store goes through and the next repeat is a hit.
    drop(armed);
    let stored = call_once(&addr, &layout_req("gen:grid:10:10"), Duration::from_secs(60))
        .expect("exchange");
    assert!(stored.is_ok());
    let hit = call_once(&addr, &layout_req("gen:grid:10:10"), Duration::from_secs(60))
        .expect("exchange");
    assert_eq!(hit.header("cache"), Some("hit"));
    assert_eq!(hit.body, first.body);

    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_read_fault_is_a_miss_not_an_eviction() {
    // Populate the cache with failpoints disarmed (the Armed guard both
    // serializes the test and guarantees disarm; re-arming below swaps
    // the schedule under the same guard).
    let armed = Armed::arm("seed=5");
    let dir = scratch("read");
    let (server, addr) = start(ServerConfig {
        cache_dir: Some(dir.join("cache")),
        ..Default::default()
    });
    let first = call_once(&addr, &layout_req("gen:grid:11:11"), Duration::from_secs(60))
        .expect("exchange");
    assert!(first.is_ok());
    let hit = call_once(&addr, &layout_req("gen:grid:11:11"), Duration::from_secs(60))
        .expect("exchange");
    assert_eq!(hit.header("cache"), Some("hit"));

    // An injected read fault must degrade to a miss (recompute) without
    // evicting the perfectly good entry underneath.
    failpoint::disarm();
    failpoint::arm("seed=5,cache.read_entry=err:1").unwrap();
    let missed = call_once(&addr, &layout_req("gen:grid:11:11"), Duration::from_secs(60))
        .expect("exchange");
    failpoint::disarm();
    assert!(missed.is_ok());
    assert_ne!(missed.header("cache"), Some("hit"), "fault did not miss");
    assert_eq!(missed.body, first.body);

    // The entry survived the injected fault: hits resume once it clears.
    let after = call_once(&addr, &layout_req("gen:grid:11:11"), Duration::from_secs(60))
        .expect("exchange");
    assert_eq!(after.header("cache"), Some("hit"), "entry was wrongly evicted");
    server.drain();
    drop(armed);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn checkpoint_write_fault_is_typed_500_with_no_strays() {
    let armed = Armed::arm("seed=11,checkpoint.write=err:1");
    let dir = scratch("ckpt");
    let (server, addr) = start(ServerConfig {
        cache_dir: Some(dir.join("cache")),
        ..Default::default()
    });

    // The checkpoint write sits inside the pipeline, so its failure fails
    // the run — typed as the *server's* fault (500, `layout_failed`
    // terminal), never a 400 blaming the request, and never a torn file.
    let resp = call_once(&addr, &layout_req("gen:grid:12:12"), Duration::from_secs(60))
        .expect("exchange");
    assert_eq!(resp.code, proto::INTERNAL, "{} {}", resp.code, resp.reason);
    assert!(
        resp.header("error").unwrap_or("").contains("checkpoint"),
        "error does not name the checkpoint stage: {:?}",
        resp.header("error")
    );
    assert!(server.stray_tmp_files().is_empty(), "torn checkpoint left on disk");

    // Disarmed, the identical request completes and the books balance.
    drop(armed);
    let ok = call_once(&addr, &layout_req("gen:grid:12:12"), Duration::from_secs(60))
        .expect("exchange");
    assert!(ok.is_ok(), "{} {}", ok.code, ok.reason);
    let snap = stats_snapshot(&addr);
    assert_eq!(snap.counter("parhde_layout_failed_total"), Some(1));
    assert_lifecycle_invariant(&snap);
    server.drain();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn budget_reserve_fault_sheds_typed_429_and_the_client_backs_off() {
    let armed = Armed::arm("seed=9,budget.reserve=err:1");
    let (server, addr) = start(ServerConfig::default());

    // Raw client: the injected admission failure is a typed 429 with a
    // retry hint, exactly like a genuinely full budget.
    let shed = call_once(&addr, &layout_req("gen:grid:10:10"), Duration::from_secs(60))
        .expect("exchange");
    assert_eq!(shed.code, proto::OVERLOADED, "{} {}", shed.code, shed.reason);
    let hint: u64 = shed
        .header("retry-after-ms")
        .expect("429 carries retry-after-ms")
        .parse()
        .expect("numeric hint");
    assert!(hint >= 50, "hint {hint} below the documented floor");

    // Retrying client: burns its full retry budget honoring the hint,
    // then reports the final 429 — a response, not a lost request.
    let policy = RetryPolicy {
        max_retries: 2,
        base: Duration::from_millis(1),
        cap: Duration::from_millis(60),
        seed: 13,
    };
    let mut client = RetryingClient::new(&addr, Duration::from_secs(60), policy);
    let out = client.call(&layout_req("gen:grid:10:10")).expect("exchange");
    assert_eq!(out.response.code, proto::OVERLOADED);
    assert_eq!(out.retries, 2, "retry budget not fully spent on 429s");

    // Clears instantly once the fault is disarmed.
    drop(armed);
    let ok = call_once(&addr, &layout_req("gen:grid:10:10"), Duration::from_secs(60))
        .expect("exchange");
    assert!(ok.is_ok(), "{} {}", ok.code, ok.reason);
    let snap = stats_snapshot(&addr);
    assert!(snap.counter("parhde_layout_busy_total").unwrap_or(0) >= 4);
    assert_lifecycle_invariant(&snap);
    server.drain();
}

#[test]
fn delay_rules_slow_requests_down_without_failing_them() {
    let armed = Armed::arm("seed=2,serve.read_frame=delay:80ms");
    let (server, addr) = start(ServerConfig::default());

    let t0 = Instant::now();
    let mut client = Client::connect(&addr).unwrap();
    client.set_timeout(Duration::from_secs(30)).unwrap();
    for _ in 0..3 {
        let resp = client.call(&Request::new(Op::Ping)).unwrap();
        assert!(resp.is_ok());
    }
    // Three reads, each delayed 80 ms before the frame is accepted.
    assert!(
        t0.elapsed() >= Duration::from_millis(240),
        "delays were not injected: {:?}",
        t0.elapsed()
    );
    let fired: u64 = failpoint::site_counts()
        .iter()
        .filter(|(site, _, _)| site == "serve.read_frame")
        .map(|(_, _, f)| f)
        .sum();
    assert!(fired >= 3, "delay fires not recorded");
    drop(armed);
    server.drain();
}
