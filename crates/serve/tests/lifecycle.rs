//! Connection-lifecycle tests for the keep-alive state machine
//! (DESIGN.md §16.2): pipelined ordered writeback, per-connection request
//! caps, idle reaping, staged read deadlines, and the lifecycle-counter
//! invariant under connection reuse.
//!
//! Like the chaos suite, these serialize on one mutex (the ambient run
//! budget and trace collector are process-exclusive).

use parhde_serve::client::{Client, RetryPolicy, RetryingClient};
use parhde_serve::proto::{self, Op, Request, Response};
use parhde_serve::server::{serve, Server, ServerConfig};
use parhde_trace::registry::Snapshot;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = serve(cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

fn layout_req(spec: &str) -> Request {
    Request::new(Op::Layout).with("graph", spec).with("deadline-ms", 30_000)
}

fn stats_snapshot(addr: &str) -> Snapshot {
    let req = Request::new(Op::Stats).with("format", "ndjson");
    let resp = parhde_serve::client::call_once(addr, &req, Duration::from_secs(30))
        .expect("stats exchange");
    assert!(resp.is_ok(), "stats failed: {} {}", resp.code, resp.reason);
    Snapshot::from_ndjson(&resp.body).expect("valid metrics ndjson")
}

fn counter(addr: &str, name: &str) -> u64 {
    stats_snapshot(addr).counter(name).unwrap_or(0)
}

const TERMINALS: [&str; 8] = [
    "parhde_layout_completed_total",
    "parhde_layout_rejected_total",
    "parhde_layout_timeout_total",
    "parhde_layout_too_large_total",
    "parhde_layout_busy_total",
    "parhde_layout_cancelled_total",
    "parhde_layout_failed_total",
    "parhde_layout_drained_total",
];

#[test]
fn one_connection_serves_many_requests() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig::default());

    let mut client = Client::connect(&addr).unwrap();
    client.set_timeout(Duration::from_secs(60)).unwrap();
    let specs = ["gen:grid:8:8", "gen:grid:9:9", "gen:grid:8:8", "gen:grid:10:10"];
    for (i, spec) in specs.iter().enumerate() {
        let resp = client.call(&layout_req(spec)).unwrap();
        assert!(resp.is_ok(), "request {i}: {} {}", resp.code, resp.reason);
        assert_eq!(resp.header("connection"), Some("keep-alive"));
    }
    drop(client);

    // Requests 2..4 rode the keep-alive connection; the invariant holds.
    let snap = stats_snapshot(&addr);
    assert!(
        snap.counter("parhde_keepalive_requests_total").unwrap_or(0) >= 3,
        "keep-alive requests not counted"
    );
    let started = snap.counter("parhde_requests_started_total").unwrap_or(0);
    let terminals: u64 = TERMINALS.iter().map(|n| snap.counter(n).unwrap_or(0)).sum();
    assert_eq!(started, terminals, "lifecycle invariant broken under keep-alive");
    server.drain();
}

#[test]
fn pipelined_burst_is_answered_in_order() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig::default());

    // Distinct vertex counts: response k must answer request k, and the
    // `n` header proves which request a response belongs to.
    let sides = [6usize, 9, 7, 10, 8];
    let reqs: Vec<Request> =
        sides.iter().map(|s| layout_req(&format!("gen:grid:{s}:{s}"))).collect();
    let mut client = Client::connect(&addr).unwrap();
    client.set_timeout(Duration::from_secs(120)).unwrap();
    let responses = client.pipeline(&reqs).expect("pipelined exchange");
    assert_eq!(responses.len(), sides.len());
    for (resp, side) in responses.iter().zip(sides) {
        assert!(resp.is_ok(), "{} {}", resp.code, resp.reason);
        assert_eq!(
            resp.header("n"),
            Some(format!("{}", side * side).as_str()),
            "responses arrived out of order"
        );
    }
    server.drain();
}

#[test]
fn request_cap_is_announced_and_enforced() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig {
        max_requests_per_conn: 2,
        ..Default::default()
    });

    let mut client = Client::connect(&addr).unwrap();
    client.set_timeout(Duration::from_secs(60)).unwrap();
    let first = client.call(&layout_req("gen:grid:8:8")).unwrap();
    assert_eq!(first.header("connection"), Some("keep-alive"));
    let second = client.call(&layout_req("gen:grid:8:8")).unwrap();
    assert_eq!(second.header("connection"), Some("close"), "cap not announced");
    // The server hung up after the announced close.
    let third = client.call(&layout_req("gen:grid:8:8"));
    assert!(third.is_err(), "server served past its per-connection cap");
    assert!(counter(&addr, "parhde_connections_closed_cap_total") >= 1);

    // The retrying client absorbs cap closes invisibly: 5 calls on a
    // cap-2 server all succeed through transparent reconnects.
    let mut retrying = RetryingClient::new(
        &addr,
        Duration::from_secs(60),
        RetryPolicy::default(),
    );
    for i in 0..5 {
        let out = retrying.call(&layout_req("gen:grid:9:9")).unwrap();
        assert!(out.response.is_ok(), "call {i} through cap closes failed");
        assert_eq!(out.retries, 0, "an announced close must not burn a retry");
    }
    server.drain();
}

#[test]
fn idle_keepalive_connections_are_reaped() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig {
        keepalive_idle: Duration::from_millis(200),
        ..Default::default()
    });

    let mut client = Client::connect(&addr).unwrap();
    client.set_timeout(Duration::from_secs(60)).unwrap();
    let first = client.call(&layout_req("gen:grid:8:8")).unwrap();
    assert!(first.is_ok());

    // Outlive the idle budget; the server must close, not wait forever.
    let deadline = Instant::now() + Duration::from_secs(30);
    while counter(&addr, "parhde_connections_closed_idle_total") == 0 {
        assert!(Instant::now() < deadline, "idle connection was never reaped");
        std::thread::sleep(Duration::from_millis(50));
    }
    let second = client.call(&layout_req("gen:grid:8:8"));
    assert!(second.is_err(), "reaped connection still answered");
    server.drain();
}

#[test]
fn byte_drip_exhausts_the_frame_budget_with_a_408() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig {
        frame_budget: Duration::from_millis(400),
        ..Default::default()
    });

    // A slowloris peer: start a frame, then drip one byte and stall. The
    // whole-frame clock (started at the first byte) must expire even
    // though the connection is never idle long enough to trip that limit.
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    stream.write_all(&[4u8]).unwrap(); // first byte of the length prefix
    std::thread::sleep(Duration::from_millis(150));
    stream.write_all(&[0u8]).unwrap(); // still three prefix bytes short

    let payload = proto::read_frame(&mut stream).expect("408 before close");
    let resp = Response::parse(&payload).unwrap();
    assert_eq!(resp.code, proto::TIMEOUT, "{} {}", resp.code, resp.reason);
    assert_eq!(resp.header("connection"), Some("close"));
    assert!(counter(&addr, "parhde_frame_timeouts_total") >= 1);

    // And the stream really is closed afterwards.
    let mut byte = [0u8; 1];
    assert_eq!(stream.read(&mut byte).unwrap_or(0), 0, "expected EOF after 408");
    server.drain();
}

#[test]
fn garbage_after_a_valid_frame_closes_with_a_typed_400() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig::default());

    // A valid PING followed by bytes that parse as an absurd length
    // prefix: the first request is answered, the garbage is rejected as a
    // too-large frame, and the connection closes (it cannot be
    // re-synchronized — the payload bytes were never read).
    let mut stream = TcpStream::connect(&addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    proto::write_frame(&mut stream, &Request::new(Op::Ping).encode()).unwrap();
    stream.write_all(&[0xFF; 8]).unwrap();

    let first = Response::parse(&proto::read_frame(&mut stream).unwrap()).unwrap();
    assert!(first.is_ok(), "valid frame before garbage must be answered");
    let second = Response::parse(&proto::read_frame(&mut stream).unwrap()).unwrap();
    assert_eq!(second.code, proto::BAD_REQUEST, "{} {}", second.code, second.reason);
    assert_eq!(second.header("connection"), Some("close"));
    let mut byte = [0u8; 1];
    assert_eq!(stream.read(&mut byte).unwrap_or(0), 0, "expected EOF after 400");
    server.drain();
}

