//! Serving packed `.phdegrf` snapshots (DESIGN.md §17): the `packed:`
//! graph source resolves against `--graph-dir`, the layout is bit-identical
//! to the same graph served inline, traversal-hostile names are rejected,
//! and the storage gauges/decode counters land in the scrape.
//!
//! Serialized on one mutex like the other suites: the ambient run budget
//! and trace collector are process-exclusive.

use parhde_serve::client::call_once;
use parhde_serve::proto::{Op, Request};
use parhde_serve::server::{serve, Server, ServerConfig};
use parhde_graph::gen;
use parhde_graph::CompressedCsr;
use parhde_trace::registry::Snapshot;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

static LOCK: Mutex<()> = Mutex::new(());

fn serialize() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn start(cfg: ServerConfig) -> (Server, String) {
    let server = serve(cfg).expect("server starts");
    let addr = server.addr().to_string();
    (server, addr)
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("parhde-packed-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn stats_snapshot(addr: &str) -> Snapshot {
    let req = Request::new(Op::Stats).with("format", "ndjson");
    let resp = call_once(addr, &req, Duration::from_secs(30)).expect("stats exchange");
    assert!(resp.is_ok(), "stats failed: {} {}", resp.code, resp.reason);
    Snapshot::from_ndjson(&resp.body).expect("valid metrics ndjson")
}

#[test]
fn packed_layout_is_bit_identical_to_inline() {
    let _guard = serialize();
    let dir = scratch("roundtrip");
    // A connected graph, so the inline path's largest-component extraction
    // is the identity and both requests lay out the same vertex set.
    let g = gen::grid2d(14, 11);
    CompressedCsr::from_csr(&g)
        .write_snapshot(&dir.join("grid.phdegrf"))
        .expect("snapshot written");
    let mut inline_body = String::new();
    for u in 0..g.num_vertices() as u32 {
        for &v in g.neighbors(u) {
            if u < v {
                inline_body.push_str(&format!("{u} {v}\n"));
            }
        }
    }

    let (server, addr) =
        start(ServerConfig { graph_dir: Some(dir.clone()), ..Default::default() });
    let packed = call_once(
        &addr,
        &Request::new(Op::Layout)
            .with("graph", "packed:grid")
            .with("no-cache", 1)
            .with("deadline-ms", 30_000),
        Duration::from_secs(60),
    )
    .expect("packed round trip");
    assert!(packed.is_ok(), "packed: {} {}", packed.code, packed.reason);
    assert_eq!(packed.header("n"), Some(&*(14 * 11).to_string()));

    let mut inline_req = Request::new(Op::Layout)
        .with("no-cache", 1)
        .with("deadline-ms", 30_000);
    inline_req.body = inline_body;
    let inline = call_once(&addr, &inline_req, Duration::from_secs(60))
        .expect("inline round trip");
    assert!(inline.is_ok(), "inline: {} {}", inline.code, inline.reason);

    // Same graph, same config, different storage: byte-identical bodies.
    assert_eq!(packed.body, inline.body, "packed and inline layouts differ");

    // Storage telemetry made it into the scrape.
    let snap = stats_snapshot(&addr);
    let ratio = snap.gauge("parhde_graph_compression_ratio").unwrap_or(0.0);
    assert!(ratio > 1.0, "compression ratio gauge missing or <= 1: {ratio}");
    assert!(
        snap.counter("parhde_graph_decode_calls_total").unwrap_or(0) > 0,
        "decode-call counter missing from scrape"
    );
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn hostile_and_missing_packed_names_are_rejected() {
    let _guard = serialize();
    let dir = scratch("hostile");
    let (server, addr) =
        start(ServerConfig { graph_dir: Some(dir.clone()), ..Default::default() });
    for name in ["packed:../etc/passwd", "packed:.hidden", "packed:", "packed:no/slash"] {
        let resp = call_once(
            &addr,
            &Request::new(Op::Layout).with("graph", name).with("deadline-ms", 5_000),
            Duration::from_secs(30),
        )
        .expect("exchange");
        assert_eq!(resp.code, parhde_serve::proto::BAD_REQUEST, "{name}: {}", resp.reason);
    }
    // A well-formed name that simply does not exist is also a bad request.
    let resp = call_once(
        &addr,
        &Request::new(Op::Layout).with("graph", "packed:missing").with("deadline-ms", 5_000),
        Duration::from_secs(30),
    )
    .expect("exchange");
    assert_eq!(resp.code, parhde_serve::proto::BAD_REQUEST, "{}", resp.reason);
    drop(server);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn packed_spec_without_graph_dir_is_rejected() {
    let _guard = serialize();
    let (server, addr) = start(ServerConfig::default());
    let resp = call_once(
        &addr,
        &Request::new(Op::Layout).with("graph", "packed:any").with("deadline-ms", 5_000),
        Duration::from_secs(30),
    )
    .expect("exchange");
    assert_eq!(resp.code, parhde_serve::proto::BAD_REQUEST, "{}", resp.reason);
    drop(server);
}
