//! Parallel Δ-stepping (Meyer & Sanders), GAP-style.
//!
//! Structure per the paper's description (§3.3): "Each iteration proceeds
//! in two phases. In the first phase each thread picks a vertex out of the
//! current shared bucket and tries to relax its neighbours. If they are
//! updated, the vertices are added to the thread-local bucket. In the next
//! phase, the threads add vertices in their local bucket to the
//! corresponding shared bucket. The implementation does not recycle the
//! buckets and ignores settled vertices."
//!
//! Distances live in an array of atomic `u64` bit-patterns of `f64` so
//! concurrent relaxations can CAS-minimize without locks. Stale bucket
//! entries (a vertex whose distance no longer falls in the bucket) are
//! skipped at deletion time.

use crate::{SsspResult, UNREACHABLE};
use parhde_graph::WeightedCsr;
use rayon::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

/// Grain for parallel bucket processing.
const BUCKET_CHUNK: usize = 128;

#[inline]
fn load_dist(cell: &AtomicU64) -> f64 {
    f64::from_bits(cell.load(Ordering::Relaxed))
}

/// CAS-minimize `cell` to `new`; returns true if this call improved it.
#[inline]
fn relax_min(cell: &AtomicU64, new: f64) -> bool {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(cur) <= new {
            return false;
        }
        match cell.compare_exchange_weak(
            cur,
            new.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return true,
            Err(actual) => cur = actual,
        }
    }
}

/// A reasonable Δ for a weighted graph: average edge weight × average
/// degree — the classic heuristic balancing bucket count against
/// re-relaxation (Δ = 1 recovers Dijkstra-like behaviour for unit weights;
/// Δ = ∞ degenerates to Bellman-Ford).
pub fn suggest_delta(g: &WeightedCsr) -> f64 {
    let arcs = g.graph().num_arcs();
    if arcs == 0 {
        return 1.0;
    }
    let avg_w: f64 = g.weights().iter().sum::<f64>() / arcs as f64;
    let avg_deg = g.graph().average_degree();
    (avg_w * avg_deg).max(f64::MIN_POSITIVE)
}

/// Execution statistics of a Δ-stepping run — the quantities that explain
/// the Δ sensitivity the paper observes ("the performance is dependent on
/// the setting for Δ", §4.4): small Δ ⇒ many buckets; large Δ ⇒ many
/// re-relaxations inside a bucket.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeltaStats {
    /// Distinct bucket indices processed.
    pub buckets_processed: usize,
    /// Inner light-edge rounds (bucket refills) summed over all buckets.
    pub light_rounds: usize,
    /// Successful light-edge relaxations.
    pub light_relaxations: usize,
    /// Successful heavy-edge relaxations.
    pub heavy_relaxations: usize,
    /// Bucket entries skipped as stale (vertex already settled elsewhere).
    pub stale_entries: usize,
}

/// Computes single-source shortest paths with parallel Δ-stepping.
///
/// # Panics
/// Panics if `source` is out of range or `delta` is not positive/finite.
pub fn delta_stepping(g: &WeightedCsr, source: u32, delta: f64) -> SsspResult {
    delta_stepping_with_stats(g, source, delta).0
}

/// [`delta_stepping`] also returning execution statistics.
///
/// # Panics
/// See [`delta_stepping`].
pub fn delta_stepping_with_stats(
    g: &WeightedCsr,
    source: u32,
    delta: f64,
) -> (SsspResult, DeltaStats) {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range");
    assert!(
        delta.is_finite() && delta > 0.0,
        "delta must be positive and finite"
    );

    let _span = parhde_trace::span!("sssp.delta_stepping");
    let dist: Vec<AtomicU64> = (0..n)
        .map(|_| AtomicU64::new(UNREACHABLE.to_bits()))
        .collect();
    dist[source as usize].store(0.0f64.to_bits(), Ordering::Relaxed);

    // Shared buckets, grown on demand; not recycled (GAP).
    let mut buckets: Vec<Vec<u32>> = vec![vec![source]];
    let bucket_of = |d: f64| (d / delta) as usize;
    let mut stats = DeltaStats::default();

    let mut i = 0usize;
    while i < buckets.len() {
        // Cooperative cancellation point (once per bucket): a tripped run
        // budget abandons the traversal, leaving unsettled vertices at
        // UNREACHABLE. Callers consult `supervisor::ambient_trip()` before
        // treating the partial tentative distances as final.
        if parhde_util::supervisor::should_stop() {
            break;
        }
        // Vertices removed from bucket i in this round (for heavy phase).
        let mut deleted: Vec<u32> = Vec::new();
        let mut bucket_was_active = false;

        // Light-edge phase: iterate until bucket i stops refilling.
        loop {
            let frontier = std::mem::take(&mut buckets[i]);
            if frontier.is_empty() {
                break;
            }
            bucket_was_active = true;
            stats.light_rounds += 1;
            // Phase 1: relax light edges into thread-local buckets.
            let locals: Vec<(Vec<(usize, u32)>, usize)> = frontier
                .par_chunks(BUCKET_CHUNK)
                .map(|chunk| {
                    let mut local: Vec<(usize, u32)> = Vec::new();
                    let mut stale = 0usize;
                    for &v in chunk {
                        let dv = load_dist(&dist[v as usize]);
                        // Settled elsewhere (stale entry): ignore.
                        if !dv.is_finite() || bucket_of(dv) != i {
                            stale += 1;
                            continue;
                        }
                        for (u, w) in g.neighbors(v) {
                            if w <= delta && relax_min(&dist[u as usize], dv + w) {
                                local.push((bucket_of(dv + w), u));
                            }
                        }
                    }
                    (local, stale)
                })
                .collect();
            deleted.extend_from_slice(&frontier);

            // Phase 2: merge thread-local buckets into shared buckets.
            for (local, stale) in locals {
                stats.stale_entries += stale;
                stats.light_relaxations += local.len();
                for (b, u) in local {
                    if b >= buckets.len() {
                        buckets.resize(b + 1, Vec::new());
                    }
                    buckets[b].push(u);
                }
            }
        }
        if bucket_was_active {
            stats.buckets_processed += 1;
        }

        // Heavy-edge phase over everything deleted from bucket i.
        deleted.sort_unstable();
        deleted.dedup();
        let locals: Vec<Vec<(usize, u32)>> = deleted
            .par_chunks(BUCKET_CHUNK)
            .map(|chunk| {
                let mut local: Vec<(usize, u32)> = Vec::new();
                for &v in chunk {
                    let dv = load_dist(&dist[v as usize]);
                    if !dv.is_finite() || bucket_of(dv) != i {
                        continue;
                    }
                    for (u, w) in g.neighbors(v) {
                        if w > delta && relax_min(&dist[u as usize], dv + w) {
                            local.push((bucket_of(dv + w), u));
                        }
                    }
                }
                local
            })
            .collect();
        for local in locals {
            stats.heavy_relaxations += local.len();
            for (b, u) in local {
                if b >= buckets.len() {
                    buckets.resize(b + 1, Vec::new());
                }
                buckets[b].push(u);
            }
        }

        i += 1;
    }

    let dist: Vec<f64> = dist
        .into_iter()
        .map(|c| f64::from_bits(c.into_inner()))
        .collect();
    let reached = dist.iter().filter(|d| d.is_finite()).count();
    if parhde_trace::enabled() {
        parhde_trace::counter!("sssp.buckets_processed", stats.buckets_processed as u64);
        parhde_trace::counter!("sssp.light_rounds", stats.light_rounds as u64);
        parhde_trace::counter!("sssp.light_relaxations", stats.light_relaxations as u64);
        parhde_trace::counter!("sssp.heavy_relaxations", stats.heavy_relaxations as u64);
        parhde_trace::counter!("sssp.stale_entries", stats.stale_entries as u64);
    }
    (SsspResult { dist, reached }, stats)
}

/// Δ-stepping writing distances into an `f64` embedding column; returns the
/// reached count (the SSSP analogue of the BFS column writers, §3.3).
pub fn delta_stepping_into_f64(
    g: &WeightedCsr,
    source: u32,
    delta: f64,
    out: &mut [f64],
) -> usize {
    let r = delta_stepping(g, source, delta);
    assert_eq!(out.len(), r.dist.len(), "output column length mismatch");
    out.copy_from_slice(&r.dist);
    r.reached
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dijkstra::dijkstra;
    use parhde_graph::builder::build_weighted_from_edges;
    use parhde_graph::gen::{chain, grid2d, pref_attach};
    use parhde_graph::WeightedCsr;
    use parhde_util::Xoshiro256StarStar;

    fn assert_matches_dijkstra(g: &WeightedCsr, source: u32, delta: f64) {
        let a = delta_stepping(g, source, delta);
        let b = dijkstra(g, source);
        assert_eq!(a.reached, b.reached);
        for (i, (x, y)) in a.dist.iter().zip(&b.dist).enumerate() {
            if x.is_finite() || y.is_finite() {
                assert!(
                    (x - y).abs() < 1e-9,
                    "vertex {i}: Δ-stepping {x} vs Dijkstra {y}"
                );
            }
        }
    }

    #[test]
    fn matches_dijkstra_on_unit_chain() {
        let g = WeightedCsr::unit_weights(chain(50));
        for delta in [0.5, 1.0, 3.0, 100.0] {
            assert_matches_dijkstra(&g, 0, delta);
        }
    }

    #[test]
    fn matches_dijkstra_on_weighted_grid() {
        let base = grid2d(12, 12);
        let mut rng = Xoshiro256StarStar::seed_from_u64(17);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, 0.1 + rng.next_f64() * 9.9))
            .collect();
        let g = build_weighted_from_edges(144, edges);
        for delta in [0.3, 2.0, suggest_delta(&g), 50.0] {
            assert_matches_dijkstra(&g, 0, delta);
            assert_matches_dijkstra(&g, 143, delta);
        }
    }

    #[test]
    fn matches_dijkstra_on_skewed_graph() {
        let base = pref_attach(800, 3, 4);
        let mut rng = Xoshiro256StarStar::seed_from_u64(23);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, (1 + rng.next_below(255)) as f64))
            .collect();
        let g = build_weighted_from_edges(800, edges);
        assert_matches_dijkstra(&g, 0, suggest_delta(&g));
    }

    #[test]
    fn disconnected_vertices_stay_unreachable() {
        let g = build_weighted_from_edges(5, vec![(0, 1, 2.0), (3, 4, 1.0)]);
        let r = delta_stepping(&g, 0, 1.0);
        assert_eq!(r.reached, 2);
        assert!(r.dist[3].is_infinite());
    }

    #[test]
    fn zero_weight_edges_share_bucket() {
        let g = build_weighted_from_edges(3, vec![(0, 1, 0.0), (1, 2, 3.0)]);
        let r = delta_stepping(&g, 0, 1.0);
        assert_eq!(r.dist, vec![0.0, 0.0, 3.0]);
    }

    #[test]
    fn stats_track_delta_tradeoff() {
        // More buckets for small Δ; at huge Δ everything lands in bucket 0.
        let base = grid2d(15, 15);
        let mut rng = Xoshiro256StarStar::seed_from_u64(41);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, 0.5 + rng.next_f64() * 4.5))
            .collect();
        let g = build_weighted_from_edges(225, edges);
        let (_, small) = delta_stepping_with_stats(&g, 0, 0.5);
        let (_, big) = delta_stepping_with_stats(&g, 0, 1e6);
        assert!(small.buckets_processed > big.buckets_processed);
        assert_eq!(big.buckets_processed, 1);
        assert_eq!(big.heavy_relaxations, 0, "no heavy edges at huge Δ");
        // Every vertex except the source is discovered by some relaxation.
        assert!(small.light_relaxations + small.heavy_relaxations >= 224);
    }

    #[test]
    fn unit_chain_stats_are_exact() {
        let g = WeightedCsr::unit_weights(chain(10));
        let (_, stats) = delta_stepping_with_stats(&g, 0, 1.0);
        // Each vertex beyond the source relaxed exactly once; one bucket
        // per distance value 0..=9 holds a frontier vertex.
        assert_eq!(stats.light_relaxations, 9);
        assert_eq!(stats.heavy_relaxations, 0);
        assert_eq!(stats.buckets_processed, 10);
    }

    #[test]
    fn suggest_delta_is_positive() {
        let g = WeightedCsr::unit_weights(chain(10));
        assert!(suggest_delta(&g) > 0.0);
        // Unit weights, avg degree ≈ 1.8 ⇒ Δ ≈ 1.8.
        assert!((suggest_delta(&g) - 1.8).abs() < 1e-9);
    }

    #[test]
    fn into_f64_column() {
        let g = WeightedCsr::unit_weights(chain(4));
        let mut col = vec![0.0; 4];
        let reached = delta_stepping_into_f64(&g, 0, 1.0, &mut col);
        assert_eq!(reached, 4);
        assert_eq!(col, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "delta must be positive")]
    fn bad_delta_panics() {
        let g = WeightedCsr::unit_weights(chain(3));
        delta_stepping(&g, 0, 0.0);
    }
}
