//! Sequential Dijkstra — the SSSP correctness oracle and baseline.

use crate::{SsspResult, UNREACHABLE};
use parhde_graph::WeightedCsr;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Min-heap entry ordered by distance.
struct Entry {
    dist: f64,
    vertex: u32,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.vertex == other.vertex
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for min-heap semantics on BinaryHeap (a max-heap).
        // Distances are finite non-NaN by construction.
        other
            .dist
            .partial_cmp(&self.dist)
            .expect("finite distances")
            .then_with(|| other.vertex.cmp(&self.vertex))
    }
}

/// Computes single-source shortest paths with binary-heap Dijkstra.
///
/// # Panics
/// Panics if `source` is out of range.
pub fn dijkstra(g: &WeightedCsr, source: u32) -> SsspResult {
    let n = g.num_vertices();
    assert!((source as usize) < n, "source {source} out of range");
    let mut dist = vec![UNREACHABLE; n];
    dist[source as usize] = 0.0;
    let mut heap = BinaryHeap::new();
    heap.push(Entry { dist: 0.0, vertex: source });
    let mut reached = 0usize;
    while let Some(Entry { dist: d, vertex: v }) = heap.pop() {
        if d > dist[v as usize] {
            continue; // stale entry
        }
        reached += 1;
        for (u, w) in g.neighbors(v) {
            let nd = d + w;
            if nd < dist[u as usize] {
                dist[u as usize] = nd;
                heap.push(Entry { dist: nd, vertex: u });
            }
        }
    }
    SsspResult { dist, reached }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parhde_graph::builder::build_weighted_from_edges;
    use parhde_graph::gen::chain;
    use parhde_graph::WeightedCsr;

    #[test]
    fn unit_chain_matches_hops() {
        let g = WeightedCsr::unit_weights(chain(6));
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(r.reached, 6);
    }

    #[test]
    fn takes_lighter_detour() {
        // 0-2 direct costs 10; 0-1-2 costs 3.
        let g = build_weighted_from_edges(
            3,
            vec![(0, 2, 10.0), (0, 1, 1.0), (1, 2, 2.0)],
        );
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist[2], 3.0);
    }

    #[test]
    fn unreachable_stays_infinite() {
        let g = build_weighted_from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]);
        let r = dijkstra(&g, 0);
        assert!(r.dist[2].is_infinite());
        assert_eq!(r.reached, 2);
        assert_eq!(r.max_distance(), 1.0);
    }

    #[test]
    fn zero_weight_edges_are_free() {
        let g = build_weighted_from_edges(3, vec![(0, 1, 0.0), (1, 2, 5.0)]);
        let r = dijkstra(&g, 0);
        assert_eq!(r.dist, vec![0.0, 0.0, 5.0]);
    }
}
