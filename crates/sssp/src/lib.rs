//! Single-source shortest paths for weighted ParHDE (§3.3).
//!
//! For weighted graphs, ParHDE replaces the BFS phase with SSSP. The paper
//! uses GAP's **Δ-stepping** (Meyer & Sanders): vertices are kept in
//! distance buckets of width Δ; each iteration settles the lowest non-empty
//! bucket by repeatedly relaxing its *light* edges (weight ≤ Δ, which can
//! re-insert into the same bucket) and then relaxing the *heavy* edges
//! (weight > Δ, which always land in later buckets) of everything deleted
//! from the bucket. Following GAP (and the paper's description of it), the
//! implementation "creates two types of buckets, shared buckets and
//! thread-local buckets": relaxations first accumulate per-thread, then
//! merge into the shared structure; buckets are not recycled and settled
//! (stale) entries are skipped rather than removed.
//!
//! [`dijkstra`] is the sequential correctness oracle and baseline.

#![warn(missing_docs)]

pub mod delta_stepping;
pub mod dijkstra;

pub use delta_stepping::{delta_stepping, suggest_delta};
pub use dijkstra::dijkstra;

/// Distance assigned to unreachable vertices.
pub const UNREACHABLE: f64 = f64::INFINITY;

/// Result of an SSSP computation.
#[derive(Clone, Debug, PartialEq)]
pub struct SsspResult {
    /// `dist[v]` is the shortest-path distance from the source
    /// ([`UNREACHABLE`] if no path exists).
    pub dist: Vec<f64>,
    /// Number of vertices with a finite distance.
    pub reached: usize,
}

impl SsspResult {
    /// Largest finite distance (0.0 when only the source is reached).
    pub fn max_distance(&self) -> f64 {
        self.dist
            .iter()
            .copied()
            .filter(|d| d.is_finite())
            .fold(0.0, f64::max)
    }
}
