//! Chrome `trace_event` JSON exporter.
//!
//! Writes the [JSON Array / object format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! consumed by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//! spans become `"X"` (complete) events with microsecond timestamps,
//! counters become `"C"` events (rendered as a stacked time series),
//! warnings become `"i"` (instant) events, and each thread gets a
//! `thread_name` metadata record. The output is deterministic for a given
//! [`Trace`], which the golden-file test pins down.

use crate::json::{escape, number};
use crate::session::{Trace, TraceEvent};
use std::io::{self, Write};

/// The fixed process id used for all events (one process per trace).
const PID: u64 = 1;

fn us(ns: u64) -> String {
    // Microseconds with nanosecond precision; fixed decimals keep the
    // output stable and diffable.
    format!("{:.3}", ns as f64 / 1e3)
}

/// Serializes `trace` in Chrome `trace_event` object format.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_chrome_trace<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(w, "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")?;
    let mut first = true;
    let mut emit = |w: &mut W, line: String| -> io::Result<()> {
        if first {
            first = false;
            write!(w, "{line}")
        } else {
            write!(w, ",\n{line}")
        }
    };
    emit(
        &mut w,
        format!(
            "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"parhde\"}}}}"
        ),
    )?;
    for th in &trace.threads {
        emit(
            &mut w,
            format!(
                "{{\"ph\":\"M\",\"pid\":{PID},\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"parhde-{}\"}}}}",
                th.tid, th.tid
            ),
        )?;
    }
    for th in &trace.threads {
        let tid = th.tid;
        for ev in &th.events {
            let line = match ev {
                TraceEvent::Span(s) => format!(
                    "{{\"ph\":\"X\",\"pid\":{PID},\"tid\":{tid},\"cat\":\"parhde\",\
                     \"name\":\"{}\",\"ts\":{},\"dur\":{}}}",
                    escape(&s.name),
                    us(s.begin_ns),
                    us(s.end_ns.saturating_sub(s.begin_ns)),
                ),
                TraceEvent::Counter(c) => format!(
                    "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{}\",\
                     \"ts\":{},\"args\":{{\"value\":{}}}}}",
                    escape(&c.name),
                    us(c.t_ns),
                    c.delta,
                ),
                TraceEvent::Gauge(g) => format!(
                    "{{\"ph\":\"C\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{}\",\
                     \"ts\":{},\"args\":{{\"value\":{}}}}}",
                    escape(&g.name),
                    us(g.t_ns),
                    number(g.value),
                ),
                TraceEvent::Warning(warn) => format!(
                    "{{\"ph\":\"i\",\"pid\":{PID},\"tid\":{tid},\"s\":\"t\",\
                     \"name\":\"warning\",\"ts\":{},\"args\":{{\"message\":\"{}\"}}}}",
                    us(warn.t_ns),
                    escape(&warn.message),
                ),
            };
            emit(&mut w, line)?;
        }
    }
    writeln!(w, "\n]}}")?;
    Ok(())
}

/// Serializes `trace` to a `String` (convenience over
/// [`write_chrome_trace`]).
pub fn to_string(trace: &Trace) -> String {
    let mut out = Vec::new();
    // Writing to a Vec cannot fail.
    let _ = write_chrome_trace(trace, &mut out);
    String::from_utf8(out).unwrap_or_default()
}

/// Validates that `text` parses as a Chrome trace object with a
/// `traceEvents` array whose members each carry the mandatory `ph`, `pid`,
/// `tid` and `name` fields, and that every `"X"` event has non-negative
/// `ts`/`dur`.
///
/// # Errors
/// A description of the first violation.
pub fn validate(text: &str) -> Result<(), String> {
    let doc = crate::json::parse(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("missing traceEvents")?
        .as_arr()
        .ok_or("traceEvents is not an array")?;
    for (i, ev) in events.iter().enumerate() {
        if !ev.is_obj() {
            return Err(format!("traceEvents[{i}] is not an object"));
        }
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("traceEvents[{i}] missing ph"))?;
        for field in ["pid", "tid"] {
            ev.get(field)
                .and_then(|v| v.as_f64())
                .ok_or_else(|| format!("traceEvents[{i}] missing numeric {field}"))?;
        }
        ev.get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("traceEvents[{i}] missing name"))?;
        if ph == "X" {
            for field in ["ts", "dur"] {
                let v = ev
                    .get(field)
                    .and_then(|v| v.as_f64())
                    .ok_or_else(|| format!("traceEvents[{i}] missing {field}"))?;
                if v < 0.0 {
                    return Err(format!("traceEvents[{i}] has negative {field}"));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{SpanEvent, ThreadTrace};

    #[test]
    fn export_is_valid_and_self_consistent() {
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 0,
                events: vec![TraceEvent::Span(SpanEvent {
                    name: "bfs".into(),
                    begin_ns: 1_000,
                    end_ns: 26_000,
                    depth: 0,
                })],
            }],
        };
        let text = to_string(&trace);
        validate(&text).unwrap();
        assert!(text.contains("\"ts\":1.000"), "{text}");
        assert!(text.contains("\"dur\":25.000"), "{text}");
    }

    #[test]
    fn validate_rejects_malformed_documents() {
        assert!(validate("{}").is_err());
        assert!(validate("{\"traceEvents\":3}").is_err());
        assert!(validate("{\"traceEvents\":[{\"ph\":\"X\"}]}").is_err());
        assert!(validate("not json").is_err());
    }
}
