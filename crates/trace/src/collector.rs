//! The global event collector: thread-local buffers behind one atomic.
//!
//! Recording must cost almost nothing when tracing is off (kernels are
//! instrumented unconditionally) and must not serialize rayon workers when
//! it is on. The design:
//!
//! * a global `ENABLED` flag — the *only* thing the disabled fast path
//!   touches (one relaxed load);
//! * per-thread buffers registered lazily with the global session; each
//!   thread appends to its own buffer under a mutex that is uncontended in
//!   steady state (only the draining session locks it from outside);
//! * an epoch counter so buffers from a finished session are never mixed
//!   into the next one — thread-locals survive in rayon's long-lived
//!   workers, so staleness is detected by epoch mismatch, not thread death.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// A raw event as recorded on the hot path. Span and metric names are
/// `&'static str` so recording never allocates (warnings, which are rare,
/// are the exception).
#[derive(Debug)]
pub(crate) enum Raw {
    /// A span opened at `t` nanoseconds after the session anchor.
    Begin {
        /// Span name.
        name: &'static str,
        /// Open time, ns since session start.
        t: u64,
    },
    /// The innermost open span on this thread closed at `t`.
    End {
        /// Close time, ns since session start.
        t: u64,
    },
    /// A counter delta.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
        /// Record time, ns since session start.
        t: u64,
    },
    /// A gauge sample.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// Sampled value.
        value: f64,
        /// Record time, ns since session start.
        t: u64,
    },
    /// A structured warning message (e.g. a pipeline degradation).
    Warn {
        /// Human-readable message.
        message: String,
        /// Record time, ns since session start.
        t: u64,
    },
}

/// One thread's event buffer for the current session.
pub(crate) struct ThreadBuf {
    /// Session-scoped thread ordinal (0 = first thread to record).
    pub tid: u64,
    /// Events in record order. Locked by the owning thread per push and by
    /// the session once at drain time.
    pub events: Mutex<Vec<Raw>>,
}

struct Global {
    epoch: u64,
    anchor: Instant,
    next_tid: u64,
    buffers: Vec<Arc<ThreadBuf>>,
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: AtomicU64 = AtomicU64::new(0);

fn global() -> &'static Mutex<Global> {
    static G: OnceLock<Mutex<Global>> = OnceLock::new();
    G.get_or_init(|| {
        Mutex::new(Global {
            epoch: 0,
            anchor: Instant::now(),
            next_tid: 0,
            buffers: Vec::new(),
        })
    })
}

fn lock_global() -> std::sync::MutexGuard<'static, Global> {
    // A panic while holding the registry lock cannot corrupt it (all
    // operations are Vec pushes/takes), so poisoning is ignored.
    global().lock().unwrap_or_else(|p| p.into_inner())
}

struct Handle {
    epoch: u64,
    anchor: Instant,
    buf: Option<Arc<ThreadBuf>>,
}

thread_local! {
    static HANDLE: RefCell<Handle> = RefCell::new(Handle {
        epoch: u64::MAX,
        anchor: Instant::now(),
        buf: None,
    });
}

/// True while a [`TraceSession`](crate::TraceSession) is active. The
/// disabled fast path of every recording call is exactly this load; callers
/// may also use it to gate derived-value computation.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Records one event, lazily (re-)registering this thread's buffer with the
/// current session. `make` receives the timestamp and is only invoked when
/// tracing is enabled.
#[inline]
fn record(make: impl FnOnce(u64) -> Raw) {
    if !enabled() {
        return;
    }
    record_slow(make);
}

fn record_slow(make: impl FnOnce(u64) -> Raw) {
    HANDLE.with(|h| {
        let mut h = h.borrow_mut();
        let cur = EPOCH.load(Ordering::Acquire);
        if h.epoch != cur || h.buf.is_none() {
            let mut g = lock_global();
            h.epoch = g.epoch;
            h.anchor = g.anchor;
            let buf = Arc::new(ThreadBuf { tid: g.next_tid, events: Mutex::new(Vec::new()) });
            g.next_tid += 1;
            g.buffers.push(Arc::clone(&buf));
            h.buf = Some(buf);
        }
        let t = h.anchor.elapsed().as_nanos() as u64;
        if let Some(buf) = &h.buf {
            buf.events
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(make(t));
        }
    });
}

/// RAII guard returned by [`span`]; records the span's end when dropped.
/// Inert (no end event) when tracing was disabled at open time.
#[must_use = "a span guard dropped immediately closes the span immediately"]
#[derive(Debug)]
pub struct SpanGuard {
    armed: bool,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.armed {
            record(|t| Raw::End { t });
        }
    }
}

/// Opens a span named `name` on the current thread; the returned guard
/// closes it on drop. Spans nest: a span opened while another is open on
/// the same thread becomes its child in the merged [`Trace`](crate::Trace).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { armed: false };
    }
    record_slow(|t| Raw::Begin { name, t });
    SpanGuard { armed: true }
}

/// Adds `delta` to counter `name`, attributed to the innermost open span on
/// this thread. Counter totals are sums of deltas across all threads.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    record(|t| Raw::Counter { name, delta, t });
}

/// Records a point sample of gauge `name`.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    record(|t| Raw::Gauge { name, value, t });
}

/// Records a structured warning event (pipeline degradations, fallbacks)
/// under the innermost open span. Allocates only when tracing is enabled.
#[inline]
pub fn warning(message: &str) {
    if !enabled() {
        return;
    }
    let owned = message.to_string();
    record_slow(move |t| Raw::Warn { message: owned, t });
}

/// Starts a fresh session: bumps the epoch (invalidating every thread's
/// cached buffer), resets the clock anchor, and enables recording.
pub(crate) fn begin_session() {
    let mut g = lock_global();
    g.epoch += 1;
    g.anchor = Instant::now();
    g.next_tid = 0;
    g.buffers.clear();
    EPOCH.store(g.epoch, Ordering::Release);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Stops recording and drains every registered buffer. Returns per-thread
/// `(tid, events)` in registration order. Threads racing a final event may
/// re-register after the drain; those stragglers are discarded by the next
/// `begin_session`.
pub(crate) fn end_session() -> Vec<(u64, Vec<Raw>)> {
    ENABLED.store(false, Ordering::SeqCst);
    let mut g = lock_global();
    g.epoch += 1;
    EPOCH.store(g.epoch, Ordering::Release);
    let buffers = std::mem::take(&mut g.buffers);
    buffers
        .into_iter()
        .map(|b| {
            let events = std::mem::take(&mut *b.events.lock().unwrap_or_else(|p| p.into_inner()));
            (b.tid, events)
        })
        .collect()
}

/// Disables recording without draining (used by `TraceSession::drop` when
/// `finish` was never called, so an abandoned session cannot leak events
/// into the next one — the epoch bump at the next begin discards them).
pub(crate) fn abort_session() {
    ENABLED.store(false, Ordering::SeqCst);
}
