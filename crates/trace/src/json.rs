//! Minimal JSON support: string escaping for the writers and a small
//! recursive-descent parser for the readers.
//!
//! The workspace builds in containers without network access, so the trace
//! sinks cannot assume `serde`/`serde_json`; the subset implemented here
//! (UTF-8 text, `f64` numbers, no `\u` surrogate-pair emission) is exactly
//! what the exporters produce and the validators consume.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string literal (no surrounding
/// quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` as a JSON number. JSON has no NaN/∞; they serialize as
/// `null` (the validators treat that as "absent").
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Shortest round-trip representation keeps files diffable.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number, as `f64`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in source order (keys may repeat; first wins on lookup).
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Member lookup on an object; `None` for other variants.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// True if this is an object.
    pub fn is_obj(&self) -> bool {
        matches!(self, Value::Obj(_))
    }
}

/// Parses one complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {} (found {:?})",
            c as char,
            *pos,
            b.get(*pos).map(|&x| x as char)
        ))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    if matches!(b.get(*pos), Some(b'-') | Some(b'+')) {
        *pos += 1;
    }
    while *pos < b.len()
        && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'-' | b'+')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogates are replaced, not paired — the writers
                        // never emit them.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().ok_or("empty string tail")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Arr(items));
            }
            other => return Err(format!("expected ',' or ']' in array, found {other:?}")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    expect(b, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, b':')?;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Obj(members));
            }
            other => return Err(format!("expected ',' or '}}' in object, found {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_escapes() {
        let s = "a\"b\\c\nd\te\u{1}é";
        let parsed = parse(&format!("\"{}\"", escape(s))).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":null,"d":true},"e":"x"}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].as_f64(), Some(-300.0));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Value::Bool(true)));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x"));
    }

    #[test]
    fn rejects_trailing_garbage_and_truncation() {
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("{\"a\":").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn number_formatting_is_parseable() {
        for v in [0.0, 1.5, -2.25e-8, 1e12, f64::NAN] {
            let text = number(v);
            let parsed = parse(&text).unwrap();
            if v.is_finite() {
                assert_eq!(parsed.as_f64(), Some(v));
            } else {
                assert_eq!(parsed, Value::Null);
            }
        }
    }
}
