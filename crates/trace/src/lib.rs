//! **parhde-trace** — structured observability for the ParHDE workspace.
//!
//! The paper's whole evaluation (Figures 3, 5, 6; Tables 3–5) is built on
//! *per-phase breakdowns*: how much of a run went to BFS, to
//! D-Orthogonalization, to the TripleProd products, to everything else.
//! This crate is the measurement substrate behind those numbers and every
//! future performance PR:
//!
//! * **Spans** — hierarchical RAII intervals ([`span!`]) recorded into
//!   thread-local buffers and merged into a per-run [`Trace`] by a
//!   [`TraceSession`]. When no session is active, recording is a single
//!   relaxed atomic load and nothing else — kernels stay instrumented at
//!   all times with negligible overhead.
//! * **Counters and gauges** — typed work metrics ([`counter!`],
//!   [`gauge!`]): edges scanned per BFS direction, Δ-stepping relaxations,
//!   Gram-Schmidt projection counts, GEMM/SpMM FLOPs, frontier sizes, peak
//!   RSS. Counters are deltas that sum; gauges are point samples.
//! * **Sinks** — a human-readable phase-breakdown table reproducing the
//!   paper's Figure-3 percentage splits ([`phases`]), an NDJSON event
//!   stream ([`ndjson`]), a Chrome `trace_event` JSON export viewable in
//!   `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) ([`chrome`]),
//!   and a machine-readable run report ([`report`]) that the bench harness
//!   and CI diff across commits.
//!
//! The crate is dependency-free; `parhde-util`'s `PhaseTimes` is a thin
//! adapter over [`phases::PhaseAccumulator`], so every pipeline that
//! accumulates phase times already feeds the same vocabulary.
//!
//! # Example
//!
//! ```
//! let session = parhde_trace::TraceSession::begin();
//! {
//!     let _outer = parhde_trace::span!("bfs");
//!     {
//!         let _inner = parhde_trace::span!("bfs.top_down");
//!         parhde_trace::counter!("bfs.top_down_edges", 128);
//!     }
//! }
//! let trace = session.finish();
//! let mut out = Vec::new();
//! parhde_trace::chrome::write_chrome_trace(&trace, &mut out).unwrap();
//! assert!(String::from_utf8(out).unwrap().contains("\"bfs.top_down\""));
//! ```

#![warn(missing_docs)]

mod collector;
mod session;

pub mod chrome;
pub mod json;
pub mod ndjson;
pub mod phases;
pub mod registry;
pub mod report;

pub use collector::{counter, enabled, gauge, span, warning, SpanGuard};
pub use phases::PhaseAccumulator;
pub use report::RunReport;
pub use session::{
    CounterEvent, GaugeEvent, SpanEvent, ThreadTrace, Trace, TraceEvent, TraceSession,
    WarningEvent,
};

/// Opens a hierarchical span named by a `&'static str`; returns an RAII
/// guard that closes the span when dropped. A no-op (and allocation-free)
/// when no [`TraceSession`] is active.
///
/// ```
/// let _g = parhde_trace::span!("dortho");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

/// Adds a delta to a named counter, attributed to the innermost open span
/// on the current thread. No-op when tracing is disabled.
///
/// ```
/// parhde_trace::counter!("gemm.flops", 1024);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr, $delta:expr) => {
        $crate::counter($name, $delta)
    };
}

/// Records a point sample of a named gauge (frontier size, bandwidth,
/// RSS…). No-op when tracing is disabled.
///
/// ```
/// parhde_trace::gauge!("bfs.frontier", 4096.0);
/// ```
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        $crate::gauge($name, $value)
    };
}

/// Peak resident set size of the current process in bytes, read from
/// `/proc/self/status` (`VmHWM`). Returns `None` off Linux or if the
/// pseudo-file is unreadable — callers treat the gauge as best-effort.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmHWM:")
}

/// Current resident set size of the current process in bytes, read from
/// `/proc/self/status` (`VmRSS`). Unlike [`peak_rss_bytes`] this can go
/// *down* when large allocations are returned to the OS, which is what the
/// run supervisor's phase-boundary memory polls need: after a
/// budget-tripped attempt frees its matrices, a cheaper retry must not be
/// condemned by the old attempt's high-water mark.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_bytes("VmRSS:")
}

fn proc_status_bytes(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix(field) {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    #[test]
    fn peak_rss_is_plausible_on_linux() {
        if let Some(rss) = super::peak_rss_bytes() {
            // More than a page, less than a terabyte.
            assert!(rss > 4096 && rss < (1 << 40), "implausible RSS {rss}");
        }
    }

    #[test]
    fn current_rss_is_at_most_peak() {
        if let (Some(cur), Some(peak)) =
            (super::current_rss_bytes(), super::peak_rss_bytes())
        {
            assert!(cur > 4096 && cur < (1 << 40), "implausible RSS {cur}");
            assert!(cur <= peak, "current {cur} above high-water mark {peak}");
        }
    }
}
