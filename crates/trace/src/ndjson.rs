//! NDJSON event-stream sink and its schema validator.
//!
//! One JSON object per line: a `meta` header followed by every resolved
//! event with its thread id, microsecond timestamps, and (for counters,
//! gauges and warnings) the span it occurred under. The stream is what CI
//! validates after a smoke run and what ad-hoc tooling (`jq`, spreadsheet
//! imports) consumes without needing the Chrome viewer.
//!
//! Schema, version 1 (field types as JSON types):
//!
//! | `ev` | required fields |
//! |---|---|
//! | `meta` | `schema` (str, `"parhde-trace-ndjson"`), `version` (num), `threads` (num) |
//! | `span` | `name` (str), `tid` (num), `t0_us` (num ≥ 0), `t1_us` (num ≥ t0), `depth` (num) |
//! | `counter` | `name` (str), `tid` (num), `t_us` (num), `value` (num); optional `span` (str) |
//! | `gauge` | `name` (str), `tid` (num), `t_us` (num), `value` (num); optional `span` (str) |
//! | `warning` | `message` (str), `tid` (num), `t_us` (num); optional `span` (str) |

use crate::json::{escape, number, parse, Value};
use crate::session::{Trace, TraceEvent};
use std::io::{self, Write};

/// Schema identifier emitted in (and required of) the `meta` line.
pub const SCHEMA: &str = "parhde-trace-ndjson";
/// Current schema version.
pub const VERSION: u32 = 1;

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

fn span_field(span: &Option<String>) -> String {
    match span {
        Some(s) => format!(",\"span\":\"{}\"", escape(s)),
        None => String::new(),
    }
}

/// Writes `trace` as NDJSON.
///
/// # Errors
/// Propagates I/O errors from `w`.
pub fn write_ndjson<W: Write>(trace: &Trace, mut w: W) -> io::Result<()> {
    writeln!(
        w,
        "{{\"ev\":\"meta\",\"schema\":\"{SCHEMA}\",\"version\":{VERSION},\"threads\":{}}}",
        trace.threads.len()
    )?;
    for th in &trace.threads {
        let tid = th.tid;
        for ev in &th.events {
            match ev {
                TraceEvent::Span(s) => writeln!(
                    w,
                    "{{\"ev\":\"span\",\"name\":\"{}\",\"tid\":{tid},\"t0_us\":{},\
                     \"t1_us\":{},\"depth\":{}}}",
                    escape(&s.name),
                    us(s.begin_ns),
                    us(s.end_ns),
                    s.depth
                )?,
                TraceEvent::Counter(c) => writeln!(
                    w,
                    "{{\"ev\":\"counter\",\"name\":\"{}\",\"tid\":{tid},\"t_us\":{},\
                     \"value\":{}{}}}",
                    escape(&c.name),
                    us(c.t_ns),
                    c.delta,
                    span_field(&c.span)
                )?,
                TraceEvent::Gauge(g) => writeln!(
                    w,
                    "{{\"ev\":\"gauge\",\"name\":\"{}\",\"tid\":{tid},\"t_us\":{},\
                     \"value\":{}{}}}",
                    escape(&g.name),
                    us(g.t_ns),
                    number(g.value),
                    span_field(&g.span)
                )?,
                TraceEvent::Warning(warn) => writeln!(
                    w,
                    "{{\"ev\":\"warning\",\"message\":\"{}\",\"tid\":{tid},\"t_us\":{}{}}}",
                    escape(&warn.message),
                    us(warn.t_ns),
                    span_field(&warn.span)
                )?,
            }
        }
    }
    Ok(())
}

/// Serializes `trace` to a `String` (convenience over [`write_ndjson`]).
pub fn to_string(trace: &Trace) -> String {
    let mut out = Vec::new();
    let _ = write_ndjson(trace, &mut out);
    String::from_utf8(out).unwrap_or_default()
}

fn require_str<'v>(obj: &'v Value, key: &str, line: usize) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("line {line}: missing string field {key:?}"))
}

fn require_num(obj: &Value, key: &str, line: usize) -> Result<f64, String> {
    obj.get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("line {line}: missing numeric field {key:?}"))
}

/// Validates a full NDJSON stream against the version-1 schema: a leading
/// `meta` line followed by well-typed event lines (blank lines allowed).
///
/// # Errors
/// A description of the first violation, prefixed with its 1-based line.
pub fn validate(text: &str) -> Result<(), String> {
    let mut saw_meta = false;
    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.trim();
        if line.is_empty() {
            continue;
        }
        let obj = parse(line).map_err(|e| format!("line {line_no}: {e}"))?;
        if !obj.is_obj() {
            return Err(format!("line {line_no}: not a JSON object"));
        }
        let ev = require_str(&obj, "ev", line_no)?;
        if !saw_meta {
            if ev != "meta" {
                return Err(format!("line {line_no}: first line must be a meta record"));
            }
            let schema = require_str(&obj, "schema", line_no)?;
            if schema != SCHEMA {
                return Err(format!("line {line_no}: unknown schema {schema:?}"));
            }
            let version = require_num(&obj, "version", line_no)?;
            if version != f64::from(VERSION) {
                return Err(format!("line {line_no}: unsupported version {version}"));
            }
            require_num(&obj, "threads", line_no)?;
            saw_meta = true;
            continue;
        }
        match ev {
            "meta" => return Err(format!("line {line_no}: duplicate meta record")),
            "span" => {
                require_str(&obj, "name", line_no)?;
                require_num(&obj, "tid", line_no)?;
                let t0 = require_num(&obj, "t0_us", line_no)?;
                let t1 = require_num(&obj, "t1_us", line_no)?;
                require_num(&obj, "depth", line_no)?;
                if t0 < 0.0 || t1 < t0 {
                    return Err(format!("line {line_no}: span interval [{t0}, {t1}] invalid"));
                }
            }
            "counter" | "gauge" => {
                require_str(&obj, "name", line_no)?;
                require_num(&obj, "tid", line_no)?;
                require_num(&obj, "t_us", line_no)?;
                if obj.get("value").is_none() {
                    return Err(format!("line {line_no}: missing field \"value\""));
                }
                if let Some(span) = obj.get("span") {
                    if span.as_str().is_none() {
                        return Err(format!("line {line_no}: span must be a string"));
                    }
                }
            }
            "warning" => {
                require_str(&obj, "message", line_no)?;
                require_num(&obj, "tid", line_no)?;
                require_num(&obj, "t_us", line_no)?;
            }
            other => return Err(format!("line {line_no}: unknown event type {other:?}")),
        }
    }
    if !saw_meta {
        return Err("empty stream: no meta record".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{CounterEvent, SpanEvent, ThreadTrace, WarningEvent};

    fn sample() -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                tid: 0,
                events: vec![
                    TraceEvent::Span(SpanEvent {
                        name: "bfs".into(),
                        begin_ns: 0,
                        end_ns: 5_000,
                        depth: 0,
                    }),
                    TraceEvent::Counter(CounterEvent {
                        name: "bfs.top_down_edges".into(),
                        delta: 42,
                        t_ns: 2_500,
                        span: Some("bfs".into()),
                    }),
                    TraceEvent::Warning(WarningEvent {
                        message: "subspace \"clamped\"".into(),
                        t_ns: 4_000,
                        span: Some("bfs".into()),
                    }),
                ],
            }],
        }
    }

    #[test]
    fn stream_validates_against_own_schema() {
        let text = to_string(&sample());
        validate(&text).unwrap();
        assert_eq!(text.lines().count(), 4);
    }

    #[test]
    fn validator_rejects_defects() {
        let good = to_string(&sample());
        // Missing meta.
        let body: String = good.lines().skip(1).collect::<Vec<_>>().join("\n");
        assert!(validate(&body).is_err());
        // Unknown event type.
        let bad = format!("{good}{{\"ev\":\"mystery\"}}\n");
        assert!(validate(&bad).is_err());
        // Span with inverted interval.
        let bad = format!(
            "{}\n{{\"ev\":\"span\",\"name\":\"x\",\"tid\":0,\"t0_us\":5,\"t1_us\":1,\"depth\":0}}",
            good.lines().next().unwrap()
        );
        assert!(validate(&bad).is_err());
        assert!(validate("").is_err());
    }
}
