//! Named-phase duration accounting and the Figure-3 breakdown table.
//!
//! [`PhaseAccumulator`] is the canonical store for per-phase wall time: an
//! insertion-ordered registry backed by an index map, so accumulating into
//! an existing phase is O(1) — it is called once per BFS source (m pivots ×
//! k phases over a run), which made the previous linear-scan registry in
//! `parhde-util` quadratic in the phase count. `parhde-util`'s `PhaseTimes`
//! is now a thin adapter over this type.
//!
//! [`render_breakdown`] prints the per-phase percentage table the paper's
//! Figures 3, 5 and 6 plot.

use std::collections::HashMap;
use std::time::Duration;

/// Accumulates named phase durations with first-occurrence ordering and
/// O(1) accumulation per `add`.
#[derive(Debug, Clone, Default)]
pub struct PhaseAccumulator {
    entries: Vec<(String, Duration)>,
    index: HashMap<String, usize>,
}

impl PhaseAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the accumulated duration of phase `name`.
    pub fn add(&mut self, name: &str, d: Duration) {
        match self.index.get(name) {
            Some(&i) => self.entries[i].1 += d,
            None => {
                self.index.insert(name.to_string(), self.entries.len());
                self.entries.push((name.to_string(), d));
            }
        }
    }

    /// Accumulated duration of phase `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.index.get(name).map(|&i| self.entries[i].1)
    }

    /// Accumulated seconds of phase `name` (0.0 if not recorded).
    pub fn seconds(&self, name: &str) -> f64 {
        self.get(name).map(|d| d.as_secs_f64()).unwrap_or(0.0)
    }

    /// Sum of all recorded phase durations.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|(_, d)| *d).sum()
    }

    /// Iterates over `(name, duration)` pairs in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.entries.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Percentage of the total attributed to each phase, in recorded order
    /// (all zeros if the total is zero).
    pub fn percentages(&self) -> Vec<(String, f64)> {
        let total = self.total().as_secs_f64();
        self.entries
            .iter()
            .map(|(n, d)| {
                let pct = if total > 0.0 {
                    100.0 * d.as_secs_f64() / total
                } else {
                    0.0
                };
                (n.clone(), pct)
            })
            .collect()
    }

    /// Merges another accumulator into this one (summing same-named
    /// phases; new phases append in the other's order).
    pub fn merge(&mut self, other: &PhaseAccumulator) {
        for (n, d) in other.iter() {
            self.add(n, d);
        }
    }

    /// Number of distinct phases recorded.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no phase has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Renders the per-phase breakdown table: seconds and percentage per entry
/// plus a total row — the paper's Figure-3/5/6 percentage splits in text
/// form. `entries` are `(name, seconds)` in display order.
///
/// ```
/// let table = parhde_trace::phases::render_breakdown(&[
///     ("BFS".to_string(), 0.075),
///     ("Other".to_string(), 0.025),
/// ]);
/// assert!(table.contains("75.0"));
/// ```
pub fn render_breakdown(entries: &[(String, f64)]) -> String {
    let total: f64 = entries.iter().map(|(_, s)| s).sum();
    let name_w = entries
        .iter()
        .map(|(n, _)| n.len())
        .chain(std::iter::once("total".len()))
        .max()
        .unwrap_or(5)
        .max(5);
    let mut out = String::new();
    out.push_str(&format!("{:<name_w$}  {:>12}  {:>6}\n", "phase", "seconds", "%"));
    for (name, secs) in entries {
        let pct = if total > 0.0 { 100.0 * secs / total } else { 0.0 };
        out.push_str(&format!("{name:<name_w$}  {secs:>12.6}  {pct:>6.1}\n"));
    }
    let total_pct = if total > 0.0 { 100.0 } else { 0.0 };
    out.push_str(&format!("{:<name_w$}  {total:>12.6}  {total_pct:>6.1}\n", "total"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_in_constant_entries() {
        let mut p = PhaseAccumulator::new();
        // Simulate the m-pivots-times-k-phases pattern that made the old
        // linear-scan registry quadratic.
        for _ in 0..10_000 {
            p.add("bfs", Duration::from_nanos(1));
            p.add("bfs_other", Duration::from_nanos(1));
        }
        assert_eq!(p.len(), 2);
        assert_eq!(p.get("bfs"), Some(Duration::from_nanos(10_000)));
    }

    #[test]
    fn preserves_first_occurrence_order() {
        let mut p = PhaseAccumulator::new();
        p.add("c", Duration::from_millis(1));
        p.add("a", Duration::from_millis(1));
        p.add("b", Duration::from_millis(1));
        p.add("a", Duration::from_millis(1));
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["c", "a", "b"]);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let mut p = PhaseAccumulator::new();
        p.add("x", Duration::from_millis(30));
        p.add("y", Duration::from_millis(70));
        let pct = p.percentages();
        assert!((pct.iter().map(|(_, v)| v).sum::<f64>() - 100.0).abs() < 1e-9);
        assert!((pct[0].1 - 30.0).abs() < 1e-9);
    }

    #[test]
    fn merge_sums_and_appends() {
        let mut a = PhaseAccumulator::new();
        a.add("x", Duration::from_millis(10));
        let mut b = PhaseAccumulator::new();
        b.add("x", Duration::from_millis(5));
        b.add("y", Duration::from_millis(2));
        a.merge(&b);
        assert_eq!(a.get("x"), Some(Duration::from_millis(15)));
        assert_eq!(a.get("y"), Some(Duration::from_millis(2)));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn breakdown_table_shows_percentages() {
        let table = render_breakdown(&[
            ("BFS".to_string(), 0.06),
            ("TripleProd".to_string(), 0.03),
            ("DOrtho".to_string(), 0.01),
        ]);
        assert!(table.contains("BFS"), "{table}");
        assert!(table.contains("60.0"), "{table}");
        assert!(table.contains("30.0"), "{table}");
        assert!(table.contains("total"), "{table}");
        assert!(table.contains("100.0"), "{table}");
    }

    #[test]
    fn breakdown_of_empty_total_is_all_zero() {
        let table = render_breakdown(&[("BFS".to_string(), 0.0)]);
        assert!(table.contains("0.0"));
        assert!(!table.contains("NaN"));
    }
}
