//! Live metrics registry (DESIGN.md §14).
//!
//! The run reports of [`crate::report`] are *post-mortem*: one JSON file
//! per finished run. A long-running daemon needs the complementary view —
//! monotonically growing counters, point-in-time gauges, and latency
//! histograms that can be scraped *while* requests are in flight. This
//! module is that layer, with the same constraints as the rest of the
//! crate: dependency-free, lock-free on the record path, and cheap enough
//! to leave enabled in production.
//!
//! * [`Counter`] — a relaxed `AtomicU64`; increments from any thread.
//! * [`Gauge`] — an `f64` stored as bits in an `AtomicU64`; last write
//!   wins, which is the right semantics for queue depth / bytes reserved.
//! * [`Histogram`] — fixed log₂-bucketed latencies. Buckets are atomic,
//!   so concurrent recordings from worker threads merge *losslessly*:
//!   the total count is exactly the number of `record` calls regardless
//!   of interleaving, and per-bucket counts are exact. Only the bucket
//!   *resolution* is lossy (a value is known to within one power of two).
//! * [`Registry`] — named get-or-create access in registration order,
//!   snapshotted into an immutable [`Snapshot`] for encoding.
//!
//! Two wire encodings, each with a validator so CI can assert scrapes are
//! well-formed without external tooling:
//!
//! * Prometheus text exposition ([`Snapshot::to_prometheus`],
//!   [`validate_prometheus`]) — for humans, `curl`, and real scrapers;
//! * NDJSON ([`Snapshot::to_ndjson`], [`Snapshot::from_ndjson`]) — for
//!   programs (the load generator's `--scrape` cross-check parses this).
//!
//! Recording can be globally disabled ([`set_enabled`]) to measure the
//! telemetry overhead itself; snapshots still work (they just stop
//! moving).

use crate::json;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: [`HIST_FINITE_BUCKETS`] finite power-of-two
/// upper bounds plus one overflow (+Inf) bucket.
pub const HIST_BUCKETS: usize = HIST_FINITE_BUCKETS + 1;
/// Finite buckets span 2⁻¹⁰ ≈ 0.001 to 2¹⁶ = 65536 in the recorded unit
/// (the daemon records milliseconds: ~1 µs to ~65 s).
pub const HIST_FINITE_BUCKETS: usize = 27;

/// Upper bound of finite bucket `i` (`i < HIST_FINITE_BUCKETS`): `2^(i-10)`.
pub fn bucket_bound(i: usize) -> f64 {
    debug_assert!(i < HIST_FINITE_BUCKETS);
    f64::powi(2.0, i as i32 - 10)
}

fn bucket_index(v: f64) -> usize {
    if v <= 0.0 || v.is_nan() {
        return 0; // zero, negative, NaN all land in the smallest bucket
    }
    for i in 0..HIST_FINITE_BUCKETS {
        if v <= bucket_bound(i) {
            return i;
        }
    }
    HIST_FINITE_BUCKETS
}

// ---------------------------------------------------------------------------
// Global enable switch
// ---------------------------------------------------------------------------

static ENABLED: AtomicBool = AtomicBool::new(true);

/// Turns metric *recording* on or off process-wide (snapshots and encoders
/// keep working either way). Used to measure telemetry overhead.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Release);
}

/// Whether metric recording is currently enabled.
pub fn recording_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Metric instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        if recording_enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A point-in-time value (queue depth, bytes reserved, uptime). Stored as
/// `f64` bits in an atomic; last writer wins.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        if recording_enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A log₂-bucketed histogram with atomic buckets.
///
/// `record` touches three relaxed atomics and never locks, so worker
/// threads record concurrently and the result is identical to any serial
/// interleaving: counts are exact, the sum is accumulated in integer
/// micro-units, and only intra-bucket position is unknown.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum_micro: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micro: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one observation (clamped to ≥ 0; NaN counts as 0).
    pub fn record(&self, v: f64) {
        if !recording_enabled() {
            return;
        }
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micro.fetch_add((v * 1e6).round() as u64, Ordering::Relaxed);
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum_micro.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// An immutable copy of a [`Histogram`], mergeable and queryable.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) counts; index `HIST_FINITE_BUCKETS` is
    /// the overflow bucket.
    pub buckets: [u64; HIST_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of observations (micro-unit resolution).
    pub sum: f64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0.0 }
    }
}

impl HistogramSnapshot {
    /// Adds `other` into `self`. Because buckets are aligned by
    /// construction, merging across threads or scrapes is lossless.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// The bucket `(lower, upper)` bounds containing quantile `q` of the
    /// recorded distribution (upper may be `+∞`); `None` when empty. The
    /// true quantile lies within the returned bounds — that is the
    /// histogram's full resolution.
    pub fn quantile_bounds(&self, q: f64) -> Option<(f64, f64)> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                let lo = if i == 0 { 0.0 } else { bucket_bound(i - 1) };
                let hi = if i < HIST_FINITE_BUCKETS {
                    bucket_bound(i)
                } else {
                    f64::INFINITY
                };
                return Some((lo, hi));
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics in registration order.
///
/// Registration takes a mutex; recording does not (callers hold the `Arc`
/// returned at registration). Metric names must match the Prometheus
/// grammar `[a-zA-Z_:][a-zA-Z0-9_:]*` — use [`sanitize_name`] for
/// dynamically derived names (e.g. pipeline phase labels).
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<Vec<(String, Metric)>>,
}

/// True when `name` is a valid Prometheus metric name.
pub fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Maps an arbitrary label to a valid metric name: invalid characters
/// become `_`, a leading digit gets a `_` prefix, empty becomes `_`.
pub fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len() + 1);
    for c in raw.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() || out.as_bytes()[0].is_ascii_digit() {
        out.insert(0, '_');
    }
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Gets or creates the counter `name`.
    ///
    /// # Panics
    /// If `name` is invalid or already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.get_or_create(name, |m| match m {
            Metric::Counter(c) => Some(Arc::clone(c)),
            _ => None,
        }, || Metric::Counter(Arc::new(Counter::default())))
    }

    /// Gets or creates the gauge `name`.
    ///
    /// # Panics
    /// If `name` is invalid or already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.get_or_create(name, |m| match m {
            Metric::Gauge(g) => Some(Arc::clone(g)),
            _ => None,
        }, || Metric::Gauge(Arc::new(Gauge::default())))
    }

    /// Gets or creates the histogram `name`.
    ///
    /// # Panics
    /// If `name` is invalid or already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.get_or_create(name, |m| match m {
            Metric::Histogram(h) => Some(Arc::clone(h)),
            _ => None,
        }, || Metric::Histogram(Arc::new(Histogram::default())))
    }

    fn get_or_create<T>(
        &self,
        name: &str,
        downcast: impl Fn(&Metric) -> Option<T>,
        create: impl FnOnce() -> Metric,
    ) -> T {
        assert!(valid_name(name), "invalid metric name {name:?}");
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        if let Some((_, m)) = metrics.iter().find(|(n, _)| n == name) {
            return downcast(m).unwrap_or_else(|| {
                panic!("metric {name:?} already registered as a different kind")
            });
        }
        let metric = create();
        let out = downcast(&metric).expect("freshly created metric has the right kind");
        metrics.push((name.to_string(), metric));
        out
    }

    /// An immutable snapshot of every registered metric, in registration
    /// order.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        Snapshot {
            metrics: metrics
                .iter()
                .map(|(name, m)| {
                    let v = match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    };
                    (name.clone(), v)
                })
                .collect(),
        }
    }
}

/// The process-global registry. Library layers with no handle to a
/// service-owned registry (the run supervisor in `parhde-util`) record
/// here; a daemon folds this into its own scrape with
/// [`Snapshot::merge_from`].
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// One metric's value inside a [`Snapshot`].
///
/// A histogram's 28 buckets dwarf the scalar variants, but snapshots are
/// built once per scrape, not per record — boxing would buy nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    /// A counter's current total.
    Counter(u64),
    /// A gauge's last-set value.
    Gauge(f64),
    /// A histogram's full state.
    Histogram(HistogramSnapshot),
}

/// An immutable point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs in registration order.
    pub metrics: Vec<(String, MetricValue)>,
}

impl Snapshot {
    fn find(&self, name: &str) -> Option<&MetricValue> {
        self.metrics.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// The counter `name`, if present as a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.find(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// The gauge `name`, if present as a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.find(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// The histogram `name`, if present as a histogram.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.find(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Folds `other` into `self`: counters add, gauges take `other`'s
    /// value, histograms merge bucket-wise; names unknown to `self` are
    /// appended in `other`'s order.
    pub fn merge_from(&mut self, other: &Snapshot) {
        for (name, value) in &other.metrics {
            match self.metrics.iter_mut().find(|(n, _)| n == name) {
                Some((_, mine)) => match (mine, value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a = *b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    // Kind clash across registries: keep ours — the scrape
                    // encoders must stay total.
                    (_mine, _theirs) => debug_assert!(false, "metric {name:?} kind clash"),
                },
                None => self.metrics.push((name.clone(), value.clone())),
            }
        }
    }

    /// Encodes the snapshot in the Prometheus text exposition format
    /// (`# TYPE` line per metric, cumulative `_bucket{le=...}` samples,
    /// `_sum`/`_count` for histograms).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (name, value) in &self.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
                }
                MetricValue::Gauge(v) => {
                    let _ =
                        writeln!(out, "# TYPE {name} gauge\n{name} {}", json::number(*v));
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {name} histogram");
                    let mut cum = 0u64;
                    for (i, &c) in h.buckets[..HIST_FINITE_BUCKETS].iter().enumerate() {
                        cum += c;
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cum}",
                            json::number(bucket_bound(i))
                        );
                    }
                    cum += h.buckets[HIST_FINITE_BUCKETS];
                    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                    let _ = writeln!(out, "{name}_sum {}", json::number(h.sum));
                    let _ = writeln!(out, "{name}_count {}", h.count);
                }
            }
        }
        out
    }

    /// Encodes the snapshot as NDJSON: a `meta` line followed by one line
    /// per metric. Histogram buckets are sparse `[index, count]` pairs
    /// (non-cumulative), which round-trips exactly through
    /// [`Snapshot::from_ndjson`].
    pub fn to_ndjson(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"ev\":\"meta\",\"schema\":\"{NDJSON_SCHEMA}\",\"version\":{NDJSON_VERSION},\
             \"metrics\":{},\"hist_buckets\":{HIST_BUCKETS}}}",
            self.metrics.len()
        );
        for (name, value) in &self.metrics {
            let name = json::escape(name);
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{{\"ev\":\"counter\",\"name\":\"{name}\",\"value\":{v}}}");
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(
                        out,
                        "{{\"ev\":\"gauge\",\"name\":\"{name}\",\"value\":{}}}",
                        json::number(*v)
                    );
                }
                MetricValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|(_, c)| **c > 0)
                        .map(|(i, c)| format!("[{i},{c}]"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "{{\"ev\":\"histogram\",\"name\":\"{name}\",\"count\":{},\
                         \"sum\":{},\"buckets\":[{}]}}",
                        h.count,
                        json::number(h.sum),
                        buckets.join(",")
                    );
                }
            }
        }
        out
    }

    /// Parses and validates a [`Snapshot::to_ndjson`] document.
    ///
    /// # Errors
    /// A description of the first malformed line: bad JSON, wrong schema
    /// or version, missing/duplicated names, bucket indices out of range,
    /// or a metric count disagreeing with the meta line.
    pub fn from_ndjson(text: &str) -> Result<Snapshot, String> {
        let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
        let (_, meta_line) = lines.next().ok_or("empty document")?;
        let meta = json::parse(meta_line).map_err(|e| format!("meta line: {e}"))?;
        if meta.get("ev").and_then(|v| v.as_str()) != Some("meta") {
            return Err("first line is not a meta event".to_string());
        }
        if meta.get("schema").and_then(|v| v.as_str()) != Some(NDJSON_SCHEMA) {
            return Err(format!("schema is not {NDJSON_SCHEMA:?}"));
        }
        if meta.get("version").and_then(|v| v.as_f64()) != Some(NDJSON_VERSION as f64) {
            return Err(format!("unsupported version (want {NDJSON_VERSION})"));
        }
        if meta.get("hist_buckets").and_then(|v| v.as_f64()) != Some(HIST_BUCKETS as f64) {
            return Err(format!("incompatible bucket layout (want {HIST_BUCKETS})"));
        }
        let declared = meta
            .get("metrics")
            .and_then(|v| v.as_f64())
            .ok_or("meta line missing metrics count")? as usize;

        let mut snap = Snapshot::default();
        for (lineno, line) in lines {
            let err = |msg: String| format!("line {}: {msg}", lineno + 1);
            let v = json::parse(line).map_err(err)?;
            let name = v
                .get("name")
                .and_then(|n| n.as_str())
                .ok_or_else(|| err("missing name".to_string()))?
                .to_string();
            if !valid_name(&name) {
                return Err(err(format!("invalid metric name {name:?}")));
            }
            if snap.find(&name).is_some() {
                return Err(err(format!("duplicate metric {name:?}")));
            }
            let value = match v.get("ev").and_then(|e| e.as_str()) {
                Some("counter") => {
                    let val = v
                        .get("value")
                        .and_then(|x| x.as_f64())
                        .ok_or_else(|| err("counter missing value".to_string()))?;
                    if val < 0.0 || val.fract() != 0.0 {
                        return Err(err(format!("counter value {val} not a non-negative integer")));
                    }
                    MetricValue::Counter(val as u64)
                }
                Some("gauge") => {
                    let val = v
                        .get("value")
                        .and_then(|x| x.as_f64())
                        .ok_or_else(|| err("gauge missing value".to_string()))?;
                    MetricValue::Gauge(val)
                }
                Some("histogram") => {
                    let count = v
                        .get("count")
                        .and_then(|x| x.as_f64())
                        .ok_or_else(|| err("histogram missing count".to_string()))?
                        as u64;
                    let sum = v
                        .get("sum")
                        .and_then(|x| x.as_f64())
                        .unwrap_or(0.0);
                    let mut h = HistogramSnapshot { count, sum, ..Default::default() };
                    let buckets = v
                        .get("buckets")
                        .and_then(|x| x.as_arr())
                        .ok_or_else(|| err("histogram missing buckets".to_string()))?;
                    let mut total = 0u64;
                    for pair in buckets {
                        let pair = pair
                            .as_arr()
                            .filter(|p| p.len() == 2)
                            .ok_or_else(|| err("bucket is not an [index, count] pair".to_string()))?;
                        let (Some(i), Some(c)) = (pair[0].as_f64(), pair[1].as_f64()) else {
                            return Err(err("non-numeric bucket pair".to_string()));
                        };
                        let i = i as usize;
                        if i >= HIST_BUCKETS {
                            return Err(err(format!("bucket index {i} out of range")));
                        }
                        h.buckets[i] += c as u64;
                        total += c as u64;
                    }
                    if total != count {
                        return Err(err(format!(
                            "bucket counts sum to {total}, count says {count}"
                        )));
                    }
                    MetricValue::Histogram(h)
                }
                other => return Err(err(format!("unknown event kind {other:?}"))),
            };
            snap.metrics.push((name, value));
        }
        if snap.metrics.len() != declared {
            return Err(format!(
                "meta declared {declared} metrics, document has {}",
                snap.metrics.len()
            ));
        }
        Ok(snap)
    }
}

/// Schema tag of the NDJSON snapshot encoding.
pub const NDJSON_SCHEMA: &str = "parhde-metrics-ndjson";
/// Version of the NDJSON snapshot encoding.
pub const NDJSON_VERSION: u32 = 1;

// ---------------------------------------------------------------------------
// Prometheus exposition validator
// ---------------------------------------------------------------------------

/// Validates a Prometheus text exposition document against the subset this
/// module emits: every sample is preceded by a `# TYPE` for its family,
/// names are well-formed, histogram buckets are cumulative and end with a
/// `+Inf` bucket equal to `_count`, counters are non-negative integers,
/// and no family is declared twice or left sample-less.
///
/// # Errors
/// A description of the first violation, prefixed with its line number.
pub fn validate_prometheus(text: &str) -> Result<(), String> {
    #[derive(PartialEq)]
    enum Kind {
        Counter,
        Gauge,
        Histogram,
    }
    struct Family {
        kind: Kind,
        samples: usize,
        // Histogram bookkeeping.
        last_le: f64,
        last_cum: u64,
        inf_cum: Option<u64>,
        count: Option<u64>,
        has_sum: bool,
    }
    let mut families: Vec<(String, Family)> = Vec::new();
    let find = |fams: &mut Vec<(String, Family)>, name: &str| {
        fams.iter_mut().position(|(n, _)| n == name)
    };

    for (lineno, raw) in text.lines().enumerate() {
        let err = |msg: String| format!("line {}: {msg}", lineno + 1);
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('#') {
            let rest = rest.trim_start();
            if rest.starts_with("HELP ") {
                continue;
            }
            let Some(decl) = rest.strip_prefix("TYPE ") else {
                return Err(err(format!("unknown comment form {line:?}")));
            };
            let mut parts = decl.split_whitespace();
            let (Some(name), Some(kind), None) = (parts.next(), parts.next(), parts.next())
            else {
                return Err(err("malformed TYPE line".to_string()));
            };
            if !valid_name(name) {
                return Err(err(format!("invalid metric name {name:?}")));
            }
            if find(&mut families, name).is_some() {
                return Err(err(format!("duplicate TYPE for {name:?}")));
            }
            let kind = match kind {
                "counter" => Kind::Counter,
                "gauge" => Kind::Gauge,
                "histogram" => Kind::Histogram,
                other => return Err(err(format!("unsupported type {other:?}"))),
            };
            families.push((
                name.to_string(),
                Family {
                    kind,
                    samples: 0,
                    last_le: f64::NEG_INFINITY,
                    last_cum: 0,
                    inf_cum: None,
                    count: None,
                    has_sum: false,
                },
            ));
            continue;
        }

        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| err("sample has no value".to_string()))?;
        let name = &line[..name_end];
        if !valid_name(name) {
            return Err(err(format!("invalid sample name {name:?}")));
        }
        let rest = &line[name_end..];
        let (labels, value_text) = if let Some(body) = rest.strip_prefix('{') {
            let close = body
                .find('}')
                .ok_or_else(|| err("unterminated label block".to_string()))?;
            (Some(&body[..close]), body[close + 1..].trim())
        } else {
            (None, rest.trim())
        };
        let value: f64 = if value_text == "+Inf" {
            f64::INFINITY
        } else {
            value_text
                .parse()
                .map_err(|_| err(format!("unparseable value {value_text:?}")))?
        };

        // Resolve the family: exact name first, then histogram suffixes.
        let (base, suffix) = match find(&mut families, name) {
            Some(idx) => (idx, ""),
            None => {
                let mut found = None;
                for suffix in ["_bucket", "_sum", "_count"] {
                    if let Some(stripped) = name.strip_suffix(suffix) {
                        if let Some(idx) = find(&mut families, stripped) {
                            found = Some((idx, suffix));
                            break;
                        }
                    }
                }
                found.ok_or_else(|| err(format!("sample {name:?} has no preceding TYPE")))?
            }
        };
        let family = &mut families[base].1;
        family.samples += 1;

        match (&family.kind, suffix) {
            (Kind::Counter, "") => {
                if family.samples > 1 {
                    return Err(err(format!("duplicate sample for counter {name:?}")));
                }
                if labels.is_some() {
                    return Err(err(format!("unexpected labels on counter {name:?}")));
                }
                if !(value.is_finite() && value >= 0.0 && value.fract() == 0.0) {
                    return Err(err(format!("counter value {value_text:?} invalid")));
                }
            }
            (Kind::Gauge, "") => {
                if family.samples > 1 {
                    return Err(err(format!("duplicate sample for gauge {name:?}")));
                }
                if labels.is_some() {
                    return Err(err(format!("unexpected labels on gauge {name:?}")));
                }
                if !value.is_finite() {
                    return Err(err(format!("gauge value {value_text:?} not finite")));
                }
            }
            (Kind::Histogram, "_bucket") => {
                let labels =
                    labels.ok_or_else(|| err("bucket sample without le label".to_string()))?;
                let le_text = labels
                    .strip_prefix("le=\"")
                    .and_then(|s| s.strip_suffix('"'))
                    .ok_or_else(|| err(format!("bucket labels {labels:?} are not le=\"…\"")))?;
                let le = if le_text == "+Inf" {
                    f64::INFINITY
                } else {
                    le_text
                        .parse()
                        .map_err(|_| err(format!("unparseable le bound {le_text:?}")))?
                };
                if le <= family.last_le {
                    return Err(err(format!("bucket bounds not increasing at le={le_text}")));
                }
                let cum = value as u64;
                if !(value.is_finite() && value >= 0.0 && value.fract() == 0.0) {
                    return Err(err(format!("bucket count {value_text:?} invalid")));
                }
                if cum < family.last_cum {
                    return Err(err(format!(
                        "bucket counts not cumulative at le={le_text} ({cum} < {})",
                        family.last_cum
                    )));
                }
                family.last_le = le;
                family.last_cum = cum;
                if le == f64::INFINITY {
                    family.inf_cum = Some(cum);
                }
            }
            (Kind::Histogram, "_sum") => {
                if family.has_sum {
                    return Err(err(format!("duplicate _sum for {name:?}")));
                }
                if !value.is_finite() {
                    return Err(err(format!("histogram sum {value_text:?} not finite")));
                }
                family.has_sum = true;
            }
            (Kind::Histogram, "_count") => {
                if family.count.is_some() {
                    return Err(err(format!("duplicate _count for {name:?}")));
                }
                if !(value.is_finite() && value >= 0.0 && value.fract() == 0.0) {
                    return Err(err(format!("histogram count {value_text:?} invalid")));
                }
                family.count = Some(value as u64);
            }
            (Kind::Histogram, "") => {
                return Err(err(format!(
                    "bare sample {name:?} for a histogram family"
                )));
            }
            (_, suffix) => {
                return Err(err(format!(
                    "suffix {suffix:?} not valid for the declared type of {name:?}"
                )));
            }
        }
    }

    for (name, family) in &families {
        if family.samples == 0 {
            return Err(format!("family {name:?} declared but has no samples"));
        }
        if family.kind == Kind::Histogram {
            let inf = family
                .inf_cum
                .ok_or_else(|| format!("histogram {name:?} has no +Inf bucket"))?;
            let count = family
                .count
                .ok_or_else(|| format!("histogram {name:?} has no _count"))?;
            if inf != count {
                return Err(format!(
                    "histogram {name:?}: +Inf bucket {inf} != _count {count}"
                ));
            }
            if !family.has_sum {
                return Err(format!("histogram {name:?} has no _sum"));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that record metrics serialize against the one test that flips
    /// the process-global [`set_enabled`] switch.
    fn recording_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn bucket_bounds_cover_the_latency_range() {
        assert!(bucket_bound(0) < 0.001);
        assert!(bucket_bound(HIST_FINITE_BUCKETS - 1) >= 65_000.0);
        for i in 1..HIST_FINITE_BUCKETS {
            assert!(bucket_bound(i) > bucket_bound(i - 1));
        }
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e12), HIST_FINITE_BUCKETS);
        // Each value lands in the first bucket whose bound covers it.
        for i in 0..HIST_FINITE_BUCKETS {
            assert_eq!(bucket_index(bucket_bound(i)), i);
        }
    }

    #[test]
    fn counters_gauges_and_histograms_record() {
        let _g = recording_lock();
        let reg = Registry::new();
        let c = reg.counter("test_total");
        let g = reg.gauge("test_depth");
        let h = reg.histogram("test_ms");
        c.inc();
        c.add(4);
        g.set(2.5);
        h.record(3.0);
        h.record(900.0);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("test_total"), Some(5));
        assert_eq!(snap.gauge("test_depth"), Some(2.5));
        let hs = snap.histogram("test_ms").unwrap();
        assert_eq!(hs.count, 2);
        assert!((hs.sum - 903.0).abs() < 1e-6);
    }

    #[test]
    fn get_or_create_returns_the_same_instrument() {
        let _g = recording_lock();
        let reg = Registry::new();
        let a = reg.counter("same");
        let b = reg.counter("same");
        a.inc();
        b.inc();
        assert_eq!(reg.snapshot().counter("same"), Some(2));
        assert_eq!(reg.snapshot().metrics.len(), 1);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_clash_panics() {
        let reg = Registry::new();
        let _ = reg.counter("clash");
        let _ = reg.gauge("clash");
    }

    #[test]
    fn sanitize_maps_arbitrary_labels_to_valid_names() {
        assert_eq!(sanitize_name("bfs.top-down"), "bfs_top_down");
        assert_eq!(sanitize_name("1phase"), "_1phase");
        assert_eq!(sanitize_name(""), "_");
        for raw in ["a b", "x/y", "ünïcode", "9"] {
            assert!(valid_name(&sanitize_name(raw)), "{raw:?}");
        }
    }

    #[test]
    fn quantile_bounds_bracket_the_true_quantile() {
        let _g = recording_lock();
        let h = Histogram::default();
        for v in [0.5, 1.0, 2.0, 4.0, 100.0] {
            h.record(v);
        }
        let s = h.snapshot();
        let (lo, hi) = s.quantile_bounds(0.5).unwrap();
        assert!(lo < 2.0 && 2.0 <= hi, "p50 bucket ({lo}, {hi}]");
        let (lo, hi) = s.quantile_bounds(0.99).unwrap();
        assert!(lo < 100.0 && 100.0 <= hi, "p99 bucket ({lo}, {hi}]");
        assert!(HistogramSnapshot::default().quantile_bounds(0.5).is_none());
    }

    #[test]
    fn merge_is_lossless() {
        let _g = recording_lock();
        let a = Histogram::default();
        let b = Histogram::default();
        let whole = Histogram::default();
        for i in 0..100 {
            let v = (i as f64) * 0.37 + 0.01;
            if i % 2 == 0 { a.record(v) } else { b.record(v) }
            whole.record(v);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, whole.snapshot());
    }

    #[test]
    fn prometheus_output_passes_its_own_validator() {
        let _g = recording_lock();
        let reg = Registry::new();
        reg.counter("parhde_requests_total").add(7);
        reg.gauge("parhde_queue_depth").set(3.0);
        let h = reg.histogram("parhde_request_duration_ms");
        for v in [0.4, 12.0, 250.0, 9_000.0] {
            h.record(v);
        }
        let text = reg.snapshot().to_prometheus();
        validate_prometheus(&text).unwrap();
        assert!(text.contains("# TYPE parhde_requests_total counter"));
        assert!(text.contains("parhde_request_duration_ms_bucket{le=\"+Inf\"} 4"));
    }

    #[test]
    fn prometheus_validator_rejects_malformed_documents() {
        // Sample without a TYPE.
        assert!(validate_prometheus("lonely 3\n").is_err());
        // Non-cumulative buckets.
        let bad = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                   h_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(validate_prometheus(bad).unwrap_err().contains("cumulative"));
        // +Inf disagreeing with _count.
        let bad = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n";
        assert!(validate_prometheus(bad).unwrap_err().contains("_count"));
        // Negative counter.
        assert!(validate_prometheus("# TYPE c counter\nc -1\n").is_err());
        // Duplicate TYPE.
        assert!(validate_prometheus("# TYPE c counter\n# TYPE c counter\nc 1\n").is_err());
        // Declared but empty family.
        assert!(validate_prometheus("# TYPE c counter\n").is_err());
    }

    #[test]
    fn ndjson_roundtrips_exactly() {
        let _g = recording_lock();
        let reg = Registry::new();
        reg.counter("c_total").add(3);
        reg.gauge("g").set(-1.25);
        let h = reg.histogram("h_ms");
        for v in [0.001, 7.3, 44_000.0, 1e9] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let parsed = Snapshot::from_ndjson(&snap.to_ndjson()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn ndjson_validator_rejects_malformed_documents() {
        let _g = recording_lock();
        assert!(Snapshot::from_ndjson("").is_err());
        assert!(Snapshot::from_ndjson("{\"ev\":\"counter\"}\n").is_err());
        let good = {
            let reg = Registry::new();
            reg.counter("ok").inc();
            reg.snapshot().to_ndjson()
        };
        // Declared count mismatch.
        let extra = format!("{good}{{\"ev\":\"counter\",\"name\":\"dup\",\"value\":1}}\n");
        assert!(Snapshot::from_ndjson(&extra).unwrap_err().contains("declared"));
        // Duplicate name.
        let dup = good.replace(
            "{\"ev\":\"counter\",\"name\":\"ok\",\"value\":1}",
            "{\"ev\":\"counter\",\"name\":\"ok\",\"value\":1}\n{\"ev\":\"counter\",\"name\":\"ok\",\"value\":1}",
        );
        assert!(Snapshot::from_ndjson(&dup).is_err());
    }

    #[test]
    fn merge_from_folds_two_registries() {
        let _g = recording_lock();
        let a = Registry::new();
        a.counter("shared_total").add(2);
        a.gauge("depth").set(1.0);
        let b = Registry::new();
        b.counter("shared_total").add(3);
        b.counter("only_b_total").add(7);
        b.gauge("depth").set(9.0);
        let mut snap = a.snapshot();
        snap.merge_from(&b.snapshot());
        assert_eq!(snap.counter("shared_total"), Some(5));
        assert_eq!(snap.counter("only_b_total"), Some(7));
        assert_eq!(snap.gauge("depth"), Some(9.0));
    }

    #[test]
    fn disabled_recording_freezes_metrics() {
        let _g = recording_lock();
        let reg = Registry::new();
        let c = reg.counter("frozen_total");
        c.inc();
        set_enabled(false);
        c.inc();
        reg.histogram("frozen_ms").record(5.0);
        set_enabled(true);
        c.inc();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("frozen_total"), Some(2));
        assert_eq!(snap.histogram("frozen_ms").unwrap().count, 0);
    }
}
