//! The machine-readable run report — the artifact CI diffs across commits.
//!
//! One JSON document per run: what was laid out (graph size), how (config
//! key–values), where the time went (fine-grained phases and the four
//! canonical Figure-3 buckets), how much work was done (counter totals,
//! gauge finals), what degraded (warnings), and how the run ended (exit
//! code + optional error). Written by `parhde-layout --json-report` even on
//! degraded or failed runs, and read back by `parhde-bench`'s report tools.

use crate::json::{escape, number, parse, Value};

/// Schema identifier emitted in (and required of) every report.
pub const SCHEMA: &str = "parhde-run-report";
/// Current schema version.
pub const VERSION: u32 = 1;

/// A complete run report. All collections preserve pipeline/display order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RunReport {
    /// Binary or harness that produced the report (e.g. `parhde-layout`).
    pub binary: String,
    /// Algorithm that ran (e.g. `parhde`, `phde`, `pivotmds`).
    pub algo: String,
    /// Vertices in the (preprocessed) input graph.
    pub graph_n: u64,
    /// Edges in the (preprocessed) input graph.
    pub graph_m: u64,
    /// Configuration as display key–value pairs.
    pub config: Vec<(String, String)>,
    /// Fine-grained phase seconds in pipeline order.
    pub phases: Vec<(String, f64)>,
    /// The four canonical buckets (BFS / TripleProd / DOrtho / Other),
    /// seconds.
    pub grouped: Vec<(String, f64)>,
    /// Counter totals.
    pub counters: Vec<(String, u64)>,
    /// Final gauge samples.
    pub gauges: Vec<(String, f64)>,
    /// Degradation warnings, in occurrence order.
    pub warnings: Vec<String>,
    /// Process exit code the run ended with (0 = success).
    pub exit_code: i32,
    /// Error message when `exit_code != 0`.
    pub error: Option<String>,
    /// End-to-end wall seconds of the run.
    pub total_seconds: f64,
}

fn str_pairs(pairs: &[(String, String)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{{\"key\":\"{}\",\"value\":\"{}\"}}", escape(k), escape(v)))
        .collect();
    format!("[{}]", items.join(","))
}

fn num_pairs(pairs: &[(String, f64)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{{\"key\":\"{}\",\"value\":{}}}", escape(k), number(*v)))
        .collect();
    format!("[{}]", items.join(","))
}

fn int_pairs(pairs: &[(String, u64)]) -> String {
    let items: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("{{\"key\":\"{}\",\"value\":{v}}}", escape(k)))
        .collect();
    format!("[{}]", items.join(","))
}

impl RunReport {
    /// Serializes the report as a pretty-enough single JSON document.
    pub fn to_json(&self) -> String {
        let warnings: Vec<String> =
            self.warnings.iter().map(|w| format!("\"{}\"", escape(w))).collect();
        let error = match &self.error {
            Some(e) => format!("\"{}\"", escape(e)),
            None => "null".to_string(),
        };
        format!(
            "{{\n  \"schema\": \"{SCHEMA}\",\n  \"version\": {VERSION},\n  \
             \"binary\": \"{}\",\n  \"algo\": \"{}\",\n  \
             \"graph\": {{\"n\": {}, \"m\": {}}},\n  \
             \"config\": {},\n  \"phases\": {},\n  \"grouped\": {},\n  \
             \"counters\": {},\n  \"gauges\": {},\n  \"warnings\": [{}],\n  \
             \"exit\": {{\"code\": {}, \"error\": {error}}},\n  \
             \"total_seconds\": {}\n}}\n",
            escape(&self.binary),
            escape(&self.algo),
            self.graph_n,
            self.graph_m,
            str_pairs(&self.config),
            num_pairs(&self.phases),
            num_pairs(&self.grouped),
            int_pairs(&self.counters),
            num_pairs(&self.gauges),
            warnings.join(","),
            self.exit_code,
            number(self.total_seconds),
        )
    }

    /// Parses a report previously produced by [`RunReport::to_json`].
    ///
    /// # Errors
    /// A description of the first schema violation.
    pub fn from_json(text: &str) -> Result<RunReport, String> {
        let doc = parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("missing schema field")?;
        if schema != SCHEMA {
            return Err(format!("unknown schema {schema:?}"));
        }
        let version = doc.get("version").and_then(|v| v.as_f64()).ok_or("missing version")?;
        if version != f64::from(VERSION) {
            return Err(format!("unsupported version {version}"));
        }
        let graph = doc.get("graph").ok_or("missing graph")?;
        let exit = doc.get("exit").ok_or("missing exit")?;
        Ok(RunReport {
            binary: field_str(&doc, "binary")?,
            algo: field_str(&doc, "algo")?,
            graph_n: field_num(graph, "n")? as u64,
            graph_m: field_num(graph, "m")? as u64,
            config: read_pairs(&doc, "config", |v| {
                v.as_str().map(str::to_string).ok_or("non-string config value".to_string())
            })?,
            phases: read_pairs(&doc, "phases", read_f64)?,
            grouped: read_pairs(&doc, "grouped", read_f64)?,
            counters: read_pairs(&doc, "counters", |v| {
                v.as_f64().map(|n| n as u64).ok_or("non-numeric counter".to_string())
            })?,
            gauges: read_pairs(&doc, "gauges", read_f64)?,
            warnings: doc
                .get("warnings")
                .and_then(|v| v.as_arr())
                .ok_or("missing warnings array")?
                .iter()
                .map(|v| {
                    v.as_str().map(str::to_string).ok_or_else(|| "non-string warning".to_string())
                })
                .collect::<Result<_, _>>()?,
            exit_code: field_num(exit, "code")? as i32,
            error: match exit.get("error") {
                None | Some(Value::Null) => None,
                Some(v) => Some(v.as_str().ok_or("non-string error")?.to_string()),
            },
            total_seconds: field_num(&doc, "total_seconds").unwrap_or(0.0),
        })
    }

    /// Validates `text` as a parseable version-1 run report.
    ///
    /// # Errors
    /// A description of the first schema violation.
    pub fn validate(text: &str) -> Result<(), String> {
        Self::from_json(text).map(|_| ())
    }
}

fn read_f64(v: &Value) -> Result<f64, String> {
    v.as_f64().ok_or_else(|| "non-numeric value".to_string())
}

fn field_str(obj: &Value, key: &str) -> Result<String, String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .map(str::to_string)
        .ok_or_else(|| format!("missing string field {key:?}"))
}

fn field_num(obj: &Value, key: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(|v| v.as_f64())
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn read_pairs<T>(
    doc: &Value,
    key: &str,
    read: impl Fn(&Value) -> Result<T, String>,
) -> Result<Vec<(String, T)>, String> {
    doc.get(key)
        .and_then(|v| v.as_arr())
        .ok_or_else(|| format!("missing array field {key:?}"))?
        .iter()
        .map(|item| {
            let k = item
                .get("key")
                .and_then(|v| v.as_str())
                .ok_or_else(|| format!("{key}: entry missing key"))?;
            let v = item.get("value").ok_or_else(|| format!("{key}: entry missing value"))?;
            Ok((k.to_string(), read(v)?))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunReport {
        RunReport {
            binary: "parhde-layout".into(),
            algo: "parhde".into(),
            graph_n: 400,
            graph_m: 760,
            config: vec![("subspace".into(), "10".into()), ("ortho".into(), "mgs".into())],
            phases: vec![("bfs".into(), 0.012), ("dortho".into(), 0.003)],
            grouped: vec![("BFS".into(), 0.012), ("DOrtho".into(), 0.003)],
            counters: vec![("bfs.top_down_edges".into(), 1520)],
            gauges: vec![("process.peak_rss_mb".into(), 24.5)],
            warnings: vec!["subspace dimension 99 clamped to 9".into()],
            exit_code: 0,
            error: None,
            total_seconds: 0.018,
        }
    }

    #[test]
    fn roundtrips_through_json() {
        let report = sample();
        let text = report.to_json();
        let back = RunReport::from_json(&text).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn failed_run_roundtrips_error() {
        let report = RunReport {
            exit_code: 6,
            error: Some("graph not connected".into()),
            ..sample()
        };
        let back = RunReport::from_json(&report.to_json()).unwrap();
        assert_eq!(back.exit_code, 6);
        assert_eq!(back.error.as_deref(), Some("graph not connected"));
    }

    #[test]
    fn validate_rejects_wrong_schema() {
        assert!(RunReport::validate("{}").is_err());
        assert!(RunReport::validate("{\"schema\":\"bogus\",\"version\":1}").is_err());
        let v2 = sample().to_json().replace("\"version\": 1", "\"version\": 99");
        assert!(RunReport::validate(&v2).is_err());
    }
}
