//! Sessions and the merged, resolved [`Trace`].
//!
//! A [`TraceSession`] brackets one run: `begin()` arms the collector,
//! `finish()` drains every thread's buffer and resolves raw begin/end pairs
//! into completed [`SpanEvent`]s with depth and parentage, attributing
//! counters, gauges and warnings to the innermost span open on their thread
//! at record time. The result is a plain data structure the sinks
//! ([`crate::chrome`], [`crate::ndjson`], [`crate::report`]) serialize
//! without touching global state — it is also directly constructible, which
//! is how the golden-file exporter tests build deterministic traces.

use crate::collector::{self, Raw};

/// A completed span: a named interval with its nesting depth (0 = no
/// enclosing span on that thread).
#[derive(Clone, Debug, PartialEq)]
pub struct SpanEvent {
    /// Span name.
    pub name: String,
    /// Open time, nanoseconds since session start.
    pub begin_ns: u64,
    /// Close time, nanoseconds since session start. Spans still open when
    /// the session finished are closed at the latest event time seen.
    pub end_ns: u64,
    /// Nesting depth on its thread at open time.
    pub depth: usize,
}

/// A counter delta attributed to the innermost open span.
#[derive(Clone, Debug, PartialEq)]
pub struct CounterEvent {
    /// Counter name.
    pub name: String,
    /// Amount added.
    pub delta: u64,
    /// Record time, nanoseconds since session start.
    pub t_ns: u64,
    /// Name of the innermost span open on the recording thread, if any.
    pub span: Option<String>,
}

/// A gauge sample attributed to the innermost open span.
#[derive(Clone, Debug, PartialEq)]
pub struct GaugeEvent {
    /// Gauge name.
    pub name: String,
    /// Sampled value.
    pub value: f64,
    /// Record time, nanoseconds since session start.
    pub t_ns: u64,
    /// Name of the innermost span open on the recording thread, if any.
    pub span: Option<String>,
}

/// A structured warning attributed to the innermost open span.
#[derive(Clone, Debug, PartialEq)]
pub struct WarningEvent {
    /// Human-readable message.
    pub message: String,
    /// Record time, nanoseconds since session start.
    pub t_ns: u64,
    /// Name of the innermost span open on the recording thread, if any.
    pub span: Option<String>,
}

/// One resolved event of a [`ThreadTrace`].
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// A completed span (listed at its open position, so a thread's events
    /// read chronologically by start time).
    Span(SpanEvent),
    /// A counter delta.
    Counter(CounterEvent),
    /// A gauge sample.
    Gauge(GaugeEvent),
    /// A warning.
    Warning(WarningEvent),
}

/// All events recorded by one thread, in record order.
#[derive(Clone, Debug, PartialEq)]
pub struct ThreadTrace {
    /// Session-scoped thread ordinal (0 = first thread that recorded).
    pub tid: u64,
    /// Resolved events in record order.
    pub events: Vec<TraceEvent>,
}

/// The merged result of one tracing session.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Per-thread event streams, in thread-registration order.
    pub threads: Vec<ThreadTrace>,
}

impl Trace {
    /// Total seconds per span name, in first-appearance order (by thread,
    /// then record order). Only *outermost* occurrences count: a span
    /// nested under a same-named ancestor contributes nothing, so recursive
    /// phases are not double-counted. These are the values the breakdown
    /// sinks turn into Figure-3-style percentage splits.
    pub fn phase_seconds(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, f64> =
            std::collections::HashMap::new();
        for th in &self.threads {
            // Reconstruct the ancestor stack from depths: a span at depth d
            // replaces the stack entry at position d.
            let mut stack: Vec<&str> = Vec::new();
            for ev in &th.events {
                if let TraceEvent::Span(s) = ev {
                    stack.truncate(s.depth);
                    let shadowed = stack.iter().any(|a| *a == s.name);
                    stack.push(&s.name);
                    if shadowed {
                        continue;
                    }
                    let secs = s.end_ns.saturating_sub(s.begin_ns) as f64 / 1e9;
                    if !totals.contains_key(&s.name) {
                        order.push(s.name.clone());
                    }
                    *totals.entry(s.name.clone()).or_insert(0.0) += secs;
                }
            }
        }
        order
            .into_iter()
            .map(|n| {
                let v = totals[&n];
                (n, v)
            })
            .collect()
    }

    /// Sum of deltas per counter name across all threads, in
    /// first-appearance order.
    pub fn counter_totals(&self) -> Vec<(String, u64)> {
        let mut order: Vec<String> = Vec::new();
        let mut totals: std::collections::HashMap<String, u64> =
            std::collections::HashMap::new();
        for th in &self.threads {
            for ev in &th.events {
                if let TraceEvent::Counter(c) = ev {
                    if !totals.contains_key(&c.name) {
                        order.push(c.name.clone());
                    }
                    *totals.entry(c.name.clone()).or_insert(0) += c.delta;
                }
            }
        }
        order
            .into_iter()
            .map(|n| {
                let v = totals[&n];
                (n, v)
            })
            .collect()
    }

    /// The last sample of each gauge, in first-appearance order.
    pub fn gauge_finals(&self) -> Vec<(String, f64)> {
        let mut order: Vec<String> = Vec::new();
        let mut last: std::collections::HashMap<String, f64> =
            std::collections::HashMap::new();
        for th in &self.threads {
            for ev in &th.events {
                if let TraceEvent::Gauge(g) = ev {
                    if !last.contains_key(&g.name) {
                        order.push(g.name.clone());
                    }
                    last.insert(g.name.clone(), g.value);
                }
            }
        }
        order
            .into_iter()
            .map(|n| {
                let v = last[&n];
                (n, v)
            })
            .collect()
    }

    /// All warnings across threads, in thread then record order.
    pub fn warnings(&self) -> Vec<&WarningEvent> {
        self.threads
            .iter()
            .flat_map(|t| {
                t.events.iter().filter_map(|e| match e {
                    TraceEvent::Warning(w) => Some(w),
                    _ => None,
                })
            })
            .collect()
    }

    /// Total number of resolved events.
    pub fn num_events(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }
}

/// An active tracing session. Exactly one session can usefully record at a
/// time (a second `begin` restarts collection); the binaries open one per
/// run, tests serialize on a lock.
#[derive(Debug)]
pub struct TraceSession {
    finished: bool,
}

impl TraceSession {
    /// Arms the collector: resets the clock anchor, invalidates buffers
    /// from any previous session, and enables recording.
    pub fn begin() -> Self {
        collector::begin_session();
        TraceSession { finished: false }
    }

    /// Disarms the collector, drains every thread's buffer, and resolves
    /// the raw events into a [`Trace`].
    pub fn finish(mut self) -> Trace {
        self.finished = true;
        let per_thread = collector::end_session();
        let threads = per_thread
            .into_iter()
            .map(|(tid, raw)| ThreadTrace { tid, events: resolve(raw) })
            .collect();
        Trace { threads }
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if !self.finished {
            collector::abort_session();
        }
    }
}

/// Resolves one thread's raw begin/end stream into completed spans (listed
/// at their open position) with counters/gauges/warnings attributed to the
/// innermost open span.
fn resolve(raw: Vec<Raw>) -> Vec<TraceEvent> {
    let mut out: Vec<TraceEvent> = Vec::with_capacity(raw.len());
    // Indices into `out` of the currently-open spans, innermost last.
    let mut open: Vec<usize> = Vec::new();
    let mut last_t = 0u64;
    for ev in raw {
        match ev {
            Raw::Begin { name, t } => {
                last_t = last_t.max(t);
                let depth = open.len();
                open.push(out.len());
                out.push(TraceEvent::Span(SpanEvent {
                    name: name.to_string(),
                    begin_ns: t,
                    end_ns: t, // patched by the matching End
                    depth,
                }));
            }
            Raw::End { t } => {
                last_t = last_t.max(t);
                if let Some(idx) = open.pop() {
                    if let TraceEvent::Span(s) = &mut out[idx] {
                        s.end_ns = t;
                    }
                }
                // An unmatched End (guard outliving its session's thread
                // buffer) is dropped silently.
            }
            Raw::Counter { name, delta, t } => {
                last_t = last_t.max(t);
                out.push(TraceEvent::Counter(CounterEvent {
                    name: name.to_string(),
                    delta,
                    t_ns: t,
                    span: innermost(&out, &open),
                }));
            }
            Raw::Gauge { name, value, t } => {
                last_t = last_t.max(t);
                out.push(TraceEvent::Gauge(GaugeEvent {
                    name: name.to_string(),
                    value,
                    t_ns: t,
                    span: innermost(&out, &open),
                }));
            }
            Raw::Warn { message, t } => {
                last_t = last_t.max(t);
                out.push(TraceEvent::Warning(WarningEvent {
                    message,
                    t_ns: t,
                    span: innermost(&out, &open),
                }));
            }
        }
    }
    // Close spans left open at session end at the latest time seen.
    for idx in open {
        if let TraceEvent::Span(s) = &mut out[idx] {
            s.end_ns = last_t.max(s.begin_ns);
        }
    }
    out
}

fn innermost(out: &[TraceEvent], open: &[usize]) -> Option<String> {
    open.last().and_then(|&idx| match &out[idx] {
        TraceEvent::Span(s) => Some(s.name.clone()),
        _ => None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(name: &str, begin: u64, end: u64, depth: usize) -> TraceEvent {
        TraceEvent::Span(SpanEvent {
            name: name.to_string(),
            begin_ns: begin,
            end_ns: end,
            depth,
        })
    }

    #[test]
    fn phase_seconds_skips_recursive_double_count() {
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 0,
                events: vec![
                    span("a", 0, 1_000_000_000, 0),
                    span("a", 100, 200, 1), // recursive: must not add
                    span("b", 300, 500_000_300, 1),
                ],
            }],
        };
        let phases = trace.phase_seconds();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].0, "a");
        assert!((phases[0].1 - 1.0).abs() < 1e-9);
        assert_eq!(phases[1].0, "b");
        assert!((phases[1].1 - 0.5).abs() < 1e-9);
    }

    #[test]
    fn counter_totals_sum_across_threads() {
        let mk = |tid, delta| ThreadTrace {
            tid,
            events: vec![TraceEvent::Counter(CounterEvent {
                name: "edges".into(),
                delta,
                t_ns: 0,
                span: None,
            })],
        };
        let trace = Trace { threads: vec![mk(0, 10), mk(1, 32)] };
        assert_eq!(trace.counter_totals(), vec![("edges".to_string(), 42)]);
    }

    #[test]
    fn gauge_finals_keep_last_sample() {
        let trace = Trace {
            threads: vec![ThreadTrace {
                tid: 0,
                events: vec![
                    TraceEvent::Gauge(GaugeEvent {
                        name: "frontier".into(),
                        value: 1.0,
                        t_ns: 0,
                        span: None,
                    }),
                    TraceEvent::Gauge(GaugeEvent {
                        name: "frontier".into(),
                        value: 7.0,
                        t_ns: 5,
                        span: None,
                    }),
                ],
            }],
        };
        assert_eq!(trace.gauge_finals(), vec![("frontier".to_string(), 7.0)]);
    }
}
