//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! The exporter's output must be byte-stable for a given [`Trace`]: tools
//! (Perfetto queries, CI diffing) depend on the exact field set and number
//! formatting. The golden trace exercises every event kind, multiple
//! threads, nesting, escaping, and the zero-timestamp edge.
//!
//! If the format changes *intentionally*, regenerate the golden file from
//! the actual output the failing assertion writes next to the temp dir.

use parhde_trace::{
    CounterEvent, GaugeEvent, SpanEvent, ThreadTrace, Trace, TraceEvent, WarningEvent,
};

/// A deterministic hand-built trace (no live session → no clock involved).
fn golden_trace() -> Trace {
    Trace {
        threads: vec![
            ThreadTrace {
                tid: 0,
                events: vec![
                    TraceEvent::Span(SpanEvent {
                        name: "parhde".into(),
                        begin_ns: 0,
                        end_ns: 10_000_000,
                        depth: 0,
                    }),
                    TraceEvent::Span(SpanEvent {
                        name: "bfs".into(),
                        begin_ns: 1_000,
                        end_ns: 5_001_000,
                        depth: 1,
                    }),
                    TraceEvent::Counter(CounterEvent {
                        name: "bfs.top_down_edges".into(),
                        delta: 128,
                        t_ns: 2_000_000,
                        span: Some("bfs".into()),
                    }),
                    TraceEvent::Gauge(GaugeEvent {
                        name: "bfs.frontier".into(),
                        value: 32.5,
                        t_ns: 2_500_000,
                        span: Some("bfs".into()),
                    }),
                    TraceEvent::Warning(WarningEvent {
                        message: "subspace clamped to \"n-1\"".into(),
                        t_ns: 6_000_000,
                        span: Some("parhde".into()),
                    }),
                ],
            },
            ThreadTrace {
                tid: 1,
                events: vec![TraceEvent::Span(SpanEvent {
                    name: "bfs.source".into(),
                    begin_ns: 1_500,
                    end_ns: 4_000_500,
                    depth: 0,
                })],
            },
        ],
    }
}

#[test]
fn chrome_export_matches_golden_file() {
    let actual = parhde_trace::chrome::to_string(&golden_trace());
    let expected = include_str!("golden/chrome_trace.json");
    if actual != expected {
        let dump = std::env::temp_dir().join("parhde_chrome_golden_actual.json");
        std::fs::write(&dump, &actual).ok();
        panic!(
            "chrome exporter output diverged from golden file; \
             actual output written to {}",
            dump.display()
        );
    }
}

#[test]
fn golden_file_itself_validates() {
    parhde_trace::chrome::validate(include_str!("golden/chrome_trace.json")).unwrap();
}
