//! Cross-thread collection tests: spans and counters recorded from worker
//! threads must all land in the merged [`parhde_trace::Trace`].
//!
//! The collector is process-global (one active session at a time), so every
//! test that begins a session takes `SESSION_LOCK` first; the tests in this
//! file are otherwise independent.

use parhde_trace::{CounterEvent, SpanEvent, TraceEvent, TraceSession};
use std::sync::{Mutex, MutexGuard};

static SESSION_LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    // A panicking test must not wedge the rest of the file.
    SESSION_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn spans(trace: &parhde_trace::Trace) -> Vec<&SpanEvent> {
    trace
        .threads
        .iter()
        .flat_map(|t| &t.events)
        .filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        })
        .collect()
}

fn counters(trace: &parhde_trace::Trace) -> Vec<&CounterEvent> {
    trace
        .threads
        .iter()
        .flat_map(|t| &t.events)
        .filter_map(|e| match e {
            TraceEvent::Counter(c) => Some(c),
            _ => None,
        })
        .collect()
}

#[test]
fn worker_thread_spans_all_merge() {
    let _l = lock();
    let session = TraceSession::begin();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(|| {
                let _outer = parhde_trace::span!("worker");
                parhde_trace::counter!("work.items", 10);
                let _inner = parhde_trace::span!("worker.inner");
                parhde_trace::counter!("work.items", 1);
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let trace = session.finish();

    let all = spans(&trace);
    assert_eq!(all.iter().filter(|s| s.name == "worker").count(), 4);
    assert_eq!(all.iter().filter(|s| s.name == "worker.inner").count(), 4);
    // Each worker ran on its own thread: outer spans sit at depth 0, the
    // nested span at depth 1, and the interval nests properly.
    for s in &all {
        match s.name.as_str() {
            "worker" => assert_eq!(s.depth, 0),
            "worker.inner" => assert_eq!(s.depth, 1),
            other => panic!("unexpected span {other}"),
        }
        assert!(s.end_ns >= s.begin_ns);
    }
    // 4 × (10 + 1) items, regardless of which thread recorded what.
    let totals = trace.counter_totals();
    assert_eq!(totals, vec![("work.items".to_string(), 44)]);
}

#[test]
fn counters_attribute_to_the_innermost_open_span() {
    let _l = lock();
    let session = TraceSession::begin();
    {
        let _a = parhde_trace::span!("outer");
        parhde_trace::counter!("c.outer", 1);
        {
            let _b = parhde_trace::span!("inner");
            parhde_trace::counter!("c.inner", 2);
        }
        parhde_trace::counter!("c.outer_again", 3);
    }
    parhde_trace::counter!("c.orphan", 4);
    let trace = session.finish();

    let by_name: Vec<(&str, Option<&str>)> = counters(&trace)
        .iter()
        .map(|c| (c.name.as_str(), c.span.as_deref()))
        .collect();
    assert_eq!(
        by_name,
        vec![
            ("c.outer", Some("outer")),
            ("c.inner", Some("inner")),
            ("c.outer_again", Some("outer")),
            ("c.orphan", None),
        ]
    );
}

#[test]
fn deep_nesting_tracks_depth_per_thread() {
    let _l = lock();
    let session = TraceSession::begin();
    {
        let _a = parhde_trace::span!("d0");
        let _b = parhde_trace::span!("d1");
        let _c = parhde_trace::span!("d2");
    }
    let trace = session.finish();
    let all = spans(&trace);
    let depth_of = |name: &str| all.iter().find(|s| s.name == name).unwrap().depth;
    assert_eq!(depth_of("d0"), 0);
    assert_eq!(depth_of("d1"), 1);
    assert_eq!(depth_of("d2"), 2);
}

#[test]
fn threads_spawned_before_finish_are_not_lost_after_drop() {
    // A thread that recorded and *exited* before finish() must still have
    // its buffer in the merge.
    let _l = lock();
    let session = TraceSession::begin();
    std::thread::spawn(|| {
        let _s = parhde_trace::span!("ephemeral");
    })
    .join()
    .unwrap();
    let trace = session.finish();
    assert_eq!(spans(&trace).iter().filter(|s| s.name == "ephemeral").count(), 1);
}

#[test]
fn recording_outside_a_session_is_a_no_op() {
    let _l = lock();
    assert!(!parhde_trace::enabled());
    // None of these may allocate a buffer or panic.
    let _s = parhde_trace::span!("ignored");
    parhde_trace::counter!("ignored", 1);
    parhde_trace::gauge!("ignored", 1.0);
    parhde_trace::warning("ignored");
    drop(_s);
    // A session started afterwards must not see the stray events.
    let session = TraceSession::begin();
    let trace = session.finish();
    assert_eq!(trace.num_events(), 0);
}
