//! Concurrent recording into the metrics registry: totals must be exact
//! (thread-invariant), per-bucket counts must match a serial reference
//! recording of the same multiset, and quantile estimates from the merged
//! histogram must bracket the true quantiles (bucket tolerance).

use parhde_trace::registry::{Histogram, HistogramSnapshot, Registry};
use std::sync::Arc;

/// A deterministic value stream: spread across several decades so many
/// buckets are exercised (xorshift, no external RNG).
fn values(n: usize) -> Vec<f64> {
    let mut state = 0x9e3779b97f4a7c15u64;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            // Uniform-ish in [0.01, ~10486): log-spread over 20 bits.
            let mantissa = (state >> 44) as f64 / (1 << 20) as f64;
            0.01 * f64::powf(2.0, mantissa * 20.0)
        })
        .collect()
}

fn exact_quantile(sorted: &[f64], q: f64) -> f64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[test]
fn concurrent_recording_is_thread_invariant() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 5_000;
    let vals = values(THREADS * PER_THREAD);

    // Serial reference: the same multiset recorded by one thread.
    let reference = Histogram::default();
    for &v in &vals {
        reference.record(v);
    }

    // Concurrent: THREADS threads record disjoint slices of the multiset.
    let shared = Arc::new(Histogram::default());
    std::thread::scope(|scope| {
        for chunk in vals.chunks(PER_THREAD) {
            let shared = Arc::clone(&shared);
            scope.spawn(move || {
                for &v in chunk {
                    shared.record(v);
                }
            });
        }
    });

    let serial = reference.snapshot();
    let concurrent = shared.snapshot();
    assert_eq!(concurrent.count, (THREADS * PER_THREAD) as u64);
    assert_eq!(
        concurrent, serial,
        "concurrent recording must equal a serial recording of the same values"
    );
}

#[test]
fn merged_per_thread_histograms_equal_one_shared_histogram() {
    const THREADS: usize = 6;
    const PER_THREAD: usize = 3_000;
    let vals = values(THREADS * PER_THREAD);

    let shared = Histogram::default();
    for &v in &vals {
        shared.record(v);
    }

    // One private histogram per thread, merged after the fact — the
    // pattern worker pools use to avoid even atomic contention.
    let per_thread: Vec<HistogramSnapshot> = std::thread::scope(|scope| {
        vals.chunks(PER_THREAD)
            .map(|chunk| {
                scope.spawn(move || {
                    let h = Histogram::default();
                    for &v in chunk {
                        h.record(v);
                    }
                    h.snapshot()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|j| j.join().unwrap())
            .collect()
    });
    let mut merged = HistogramSnapshot::default();
    for s in &per_thread {
        merged.merge(s);
    }
    assert_eq!(merged, shared.snapshot(), "merge must be lossless");
}

#[test]
fn merged_quantiles_bracket_the_true_quantiles() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 10_000;
    let vals = values(THREADS * PER_THREAD);

    let h = Arc::new(Histogram::default());
    std::thread::scope(|scope| {
        for chunk in vals.chunks(PER_THREAD) {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                for &v in chunk {
                    h.record(v);
                }
            });
        }
    });

    let mut sorted = vals.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let snap = h.snapshot();
    for q in [0.5, 0.9, 0.99] {
        let truth = exact_quantile(&sorted, q);
        let (lo, hi) = snap.quantile_bounds(q).unwrap();
        assert!(
            lo < truth && truth <= hi,
            "q={q}: true quantile {truth} outside reported bucket ({lo}, {hi}]"
        );
    }
    // The sum is accumulated at micro-unit resolution.
    let true_sum: f64 = vals.iter().sum();
    assert!(
        (snap.sum - true_sum).abs() < 1e-6 * vals.len() as f64,
        "sum {} vs {}",
        snap.sum,
        true_sum
    );
}

#[test]
fn concurrent_counter_increments_are_exact() {
    let reg = Registry::new();
    let c = reg.counter("races_total");
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let c = Arc::clone(&c);
            scope.spawn(move || {
                for _ in 0..10_000 {
                    c.inc();
                }
            });
        }
    });
    assert_eq!(reg.snapshot().counter("races_total"), Some(80_000));
}
