//! Process-wide deterministic fault injection (DESIGN.md §16.1).
//!
//! A *failpoint* is a named site in production code — `serve.read_frame`,
//! `cache.rename`, `checkpoint.write`, … — where a chaos schedule may
//! inject a typed I/O error, a delay, a partial read/write, or a one-shot
//! panic. The design goals, in priority order:
//!
//! 1. **Free when disarmed.** [`check`] is a single relaxed atomic load on
//!    the hot path when no schedule is armed — the sites stay compiled
//!    into release binaries and cost nothing measurable (gated by
//!    BENCH_pr9's armed-vs-disarmed A/B).
//! 2. **Seed-reproducible.** Every site draws from its own [`SplitMix64`]
//!    stream seeded by `global_seed ^ fnv(site)`; the decision for the
//!    k-th evaluation at a site is a pure function of `(seed, site, k)`.
//!    Two runs that evaluate a site the same number of times observe the
//!    *identical* fire schedule, regardless of thread interleaving
//!    elsewhere — which is what lets CI re-run a chaos seed and diff the
//!    fire counters.
//! 3. **Auditable.** Every evaluation and every fire increments registry
//!    counters (`parhde_failpoint_evaluations_total`,
//!    `parhde_failpoint_fired_total`, and a per-site
//!    `parhde_failpoint_fired_<site>_total`), so a `STATS` scrape shows
//!    exactly what a chaos run injected.
//!
//! # Schedule grammar
//!
//! A schedule is a comma-separated list, armed from the
//! `PARHDE_FAILPOINTS` environment variable or `parhde-serve
//! --failpoints`:
//!
//! ```text
//! seed=42,serve.*=err:0.05,cache.rename=delay:200ms,checkpoint.write=panic:once
//! ```
//!
//! * `seed=N` — the global schedule seed (default 0).
//! * `<site>=<action>` — arm one site or, with a trailing `*`, a prefix
//!   of sites. First matching rule wins, in written order.
//!
//! Actions:
//!
//! | action | effect at the site |
//! |---|---|
//! | `err:P` | with probability `P`, inject a typed I/O error |
//! | `delay:DUR[:P]` | sleep `DUR` (`150ms`, `2s`), probability `P` (default 1) |
//! | `partial:P` | with probability `P`, ask the site to truncate its I/O |
//! | `panic[:once]` | panic at the site; `once` disarms after the first fire |
//!
//! Sites that cannot express a partial operation treat `partial` as `err`
//! (see [`fired_to_io`]). Delays are slept inside [`check`] — the caller
//! only has to act on `Err` and `Partial`.

use crate::rng::SplitMix64;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Whether any schedule is armed. The entire cost of a disarmed failpoint
/// is one relaxed load of this flag.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The armed schedule (rules + per-site decision streams). Locked only on
/// the armed slow path and by arm/disarm.
static PLAN: Mutex<Option<Plan>> = Mutex::new(None);

/// What an armed failpoint decided to inject at this evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fired {
    /// Inject a typed I/O error (the site should fail the operation).
    Err,
    /// A delay was injected; [`check`] already slept it. Callers may
    /// ignore this variant — it exists so tests can observe the schedule.
    Delayed,
    /// Truncate the I/O operation (write or read only part of the data,
    /// then fail). Sites without a natural partial form treat this as
    /// [`Fired::Err`].
    Partial,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Kind {
    Err,
    Delay { millis: u64 },
    Partial,
    Panic { once: bool },
}

#[derive(Clone, Debug)]
struct Rule {
    /// Site name, or a prefix when `wildcard` (written with a trailing
    /// `*`: `serve.*` matches `serve.read_frame`).
    pattern: String,
    wildcard: bool,
    kind: Kind,
    /// Fire probability in [0, 1]; compared against a u64 draw.
    threshold: u64,
    /// Set once a `panic:once` rule has fired (it then stops matching).
    spent: bool,
}

impl Rule {
    fn matches(&self, site: &str) -> bool {
        !self.spent
            && if self.wildcard {
                site.starts_with(&self.pattern)
            } else {
                site == self.pattern
            }
    }
}

/// Per-site decision stream and audit counts.
struct SiteState {
    name: String,
    rng: SplitMix64,
    evaluations: u64,
    fired: u64,
}

struct Plan {
    seed: u64,
    rules: Vec<Rule>,
    sites: Vec<SiteState>,
}

impl Plan {
    fn site_state(&mut self, site: &str) -> &mut SiteState {
        if let Some(i) = self.sites.iter().position(|s| s.name == site) {
            return &mut self.sites[i];
        }
        // Each site gets an independent stream so concurrency at *other*
        // sites cannot perturb this one's schedule.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in site.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        self.sites.push(SiteState {
            name: site.to_string(),
            rng: SplitMix64::new(self.seed ^ h),
            evaluations: 0,
            fired: 0,
        });
        self.sites.last_mut().expect("just pushed")
    }
}

/// Probability → threshold on a uniform u64 draw. `p >= 1` always fires,
/// `p <= 0` never does.
fn threshold(p: f64) -> u64 {
    if p >= 1.0 {
        u64::MAX
    } else if p <= 0.0 {
        0
    } else {
        (p * u64::MAX as f64) as u64
    }
}

fn parse_duration_ms(s: &str) -> Result<u64, String> {
    let (num, scale) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1000)
    } else {
        return Err(format!("duration {s:?} needs an ms/s suffix"));
    };
    num.parse::<u64>()
        .map(|v| v * scale)
        .map_err(|_| format!("bad duration {s:?}"))
}

fn parse_rule(pattern: &str, action: &str) -> Result<Rule, String> {
    let (pattern, wildcard) = match pattern.strip_suffix('*') {
        Some(prefix) => (prefix, true),
        None => (pattern, false),
    };
    if pattern.is_empty() && !wildcard {
        return Err("empty failpoint pattern".into());
    }
    let mut parts = action.split(':');
    let verb = parts.next().unwrap_or("");
    let (kind, probability) = match verb {
        "err" => {
            let p: f64 = parts
                .next()
                .ok_or("err needs a probability (err:0.05)")?
                .parse()
                .map_err(|_| format!("bad probability in {action:?}"))?;
            (Kind::Err, p)
        }
        "partial" => {
            let p: f64 = parts
                .next()
                .ok_or("partial needs a probability (partial:0.05)")?
                .parse()
                .map_err(|_| format!("bad probability in {action:?}"))?;
            (Kind::Partial, p)
        }
        "delay" => {
            let millis =
                parse_duration_ms(parts.next().ok_or("delay needs a duration")?)?;
            let p: f64 = match parts.next() {
                Some(v) => v
                    .parse()
                    .map_err(|_| format!("bad probability in {action:?}"))?,
                None => 1.0,
            };
            (Kind::Delay { millis }, p)
        }
        "panic" => {
            let once = match parts.next() {
                None => false,
                Some("once") => true,
                Some(other) => return Err(format!("unknown panic mode {other:?}")),
            };
            (Kind::Panic { once }, 1.0)
        }
        other => return Err(format!("unknown failpoint action {other:?}")),
    };
    if parts.next().is_some() {
        return Err(format!("trailing garbage in action {action:?}"));
    }
    if !(0.0..=1.0).contains(&probability) {
        return Err(format!("probability {probability} outside [0, 1]"));
    }
    Ok(Rule {
        pattern: pattern.to_string(),
        wildcard,
        kind,
        threshold: threshold(probability),
        spent: false,
    })
}

/// Parses and arms a schedule, replacing any previously armed one.
///
/// # Errors
/// A description of the first grammar violation; the previous schedule
/// (if any) stays armed on error.
pub fn arm(spec: &str) -> Result<(), String> {
    let mut seed = 0u64;
    let mut rules = Vec::new();
    for entry in spec.split(',') {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (key, value) = entry
            .split_once('=')
            .ok_or_else(|| format!("entry {entry:?} is not key=value"))?;
        if key.trim() == "seed" {
            seed = value
                .trim()
                .parse()
                .map_err(|_| format!("bad seed {value:?}"))?;
        } else {
            rules.push(parse_rule(key.trim(), value.trim())?);
        }
    }
    let mut plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    let any = !rules.is_empty();
    *plan = Some(Plan { seed, rules, sites: Vec::new() });
    ARMED.store(any, Ordering::SeqCst);
    Ok(())
}

/// Arms from `PARHDE_FAILPOINTS` if set. Returns whether a schedule was
/// armed.
///
/// # Errors
/// Grammar errors from [`arm`].
pub fn arm_from_env() -> Result<bool, String> {
    match std::env::var("PARHDE_FAILPOINTS") {
        Ok(spec) if !spec.trim().is_empty() => arm(&spec).map(|()| true),
        _ => Ok(false),
    }
}

/// Disarms all failpoints and discards the schedule.
pub fn disarm() {
    let mut plan = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    *plan = None;
    ARMED.store(false, Ordering::SeqCst);
}

/// Whether any schedule is armed (one relaxed load).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// Evaluates the failpoint `site`. Disarmed cost: one relaxed atomic
/// load. Armed: draws the site's next scheduled decision; sleeps delays
/// and raises panics internally, and returns `Some(Err | Partial |
/// Delayed)` when something was injected.
///
/// # Panics
/// When the armed schedule says this site should panic (that is the
/// point: exercising the daemon's panic boundaries).
#[inline]
pub fn check(site: &str) -> Option<Fired> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    check_armed(site)
}

#[cold]
fn check_armed(site: &str) -> Option<Fired> {
    let decision = {
        let mut guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
        let plan = guard.as_mut()?;
        let rule_idx = plan.rules.iter().position(|r| r.matches(site))?;
        let (threshold, kind) = (plan.rules[rule_idx].threshold, plan.rules[rule_idx].kind);
        let state = plan.site_state(site);
        state.evaluations += 1;
        let draw = state.rng.next_u64();
        // `threshold == u64::MAX` must always fire, draw == MAX included.
        let fire = threshold == u64::MAX || draw < threshold;
        if !fire {
            record_evaluation(site, false);
            return None;
        }
        state.fired += 1;
        if let Kind::Panic { once: true } = kind {
            plan.rules[rule_idx].spent = true;
        }
        kind
    };
    record_evaluation(site, true);
    // The lock is released before sleeping or panicking.
    match decision {
        Kind::Err => Some(Fired::Err),
        Kind::Partial => Some(Fired::Partial),
        Kind::Delay { millis } => {
            std::thread::sleep(Duration::from_millis(millis));
            Some(Fired::Delayed)
        }
        Kind::Panic { .. } => {
            panic!("failpoint {site}: scheduled panic");
        }
    }
}

/// Audit counters in the process-global metrics registry, so a `STATS`
/// scrape of the daemon shows exactly what a chaos schedule injected.
fn record_evaluation(site: &str, fired: bool) {
    let reg = parhde_trace::registry::global();
    reg.counter("parhde_failpoint_evaluations_total").inc();
    if fired {
        reg.counter("parhde_failpoint_fired_total").inc();
        let per_site = format!(
            "parhde_failpoint_fired_{}_total",
            parhde_trace::registry::sanitize_name(site)
        );
        reg.counter(&per_site).inc();
    }
}

/// Convenience for sites whose only failure mode is an I/O error: maps
/// `Err` *and* `Partial` to a typed [`std::io::Error`] and swallows
/// `Delayed` (the sleep already happened).
///
/// # Errors
/// The injected error when the site fires.
#[inline]
pub fn io_inject(site: &str) -> std::io::Result<()> {
    match check(site) {
        Some(Fired::Err) | Some(Fired::Partial) => Err(injected_io_error(site)),
        _ => Ok(()),
    }
}

/// The typed error injected at `site` — `ErrorKind::Other` with a message
/// naming the site, so logs and tests can tell injected faults from real
/// ones.
pub fn injected_io_error(site: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint {site}: injected fault"))
}

/// Per-site `(site, evaluations, fired)` audit counts of the armed
/// schedule, in first-evaluation order. Empty when disarmed.
pub fn site_counts() -> Vec<(String, u64, u64)> {
    let guard = PLAN.lock().unwrap_or_else(|e| e.into_inner());
    match guard.as_ref() {
        Some(plan) => plan
            .sites
            .iter()
            .map(|s| (s.name.clone(), s.evaluations, s.fired))
            .collect(),
        None => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Mutex as TestMutex, MutexGuard};

    /// The plan is process-global; tests that arm it must not interleave.
    static TEST_LOCK: TestMutex<()> = TestMutex::new(());

    fn exclusive() -> MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Replays `n` evaluations of `site`, returning the fire pattern.
    fn schedule_of(spec: &str, site: &str, n: usize) -> Vec<bool> {
        arm(spec).unwrap();
        let out = (0..n).map(|_| check(site).is_some()).collect();
        disarm();
        out
    }

    #[test]
    fn disarmed_is_none_and_cheap() {
        let _guard = exclusive();
        disarm();
        assert!(!armed());
        assert_eq!(check("serve.read_frame"), None);
        assert!(io_inject("serve.read_frame").is_ok());
        assert!(site_counts().is_empty());
    }

    #[test]
    fn same_seed_same_schedule_different_seed_differs() {
        let _guard = exclusive();
        let a = schedule_of("seed=42,serve.*=err:0.2", "serve.read_frame", 400);
        let b = schedule_of("seed=42,serve.*=err:0.2", "serve.read_frame", 400);
        assert_eq!(a, b, "same seed must replay the identical schedule");
        let fires = a.iter().filter(|&&f| f).count();
        assert!((20..=140).contains(&fires), "p=0.2 over 400 draws fired {fires}");
        let c = schedule_of("seed=43,serve.*=err:0.2", "serve.read_frame", 400);
        assert_ne!(a, c, "a different seed must produce a different schedule");
    }

    #[test]
    fn sites_have_independent_streams() {
        let _guard = exclusive();
        arm("seed=7,serve.*=err:0.5").unwrap();
        let solo: Vec<bool> =
            (0..64).map(|_| check("serve.read_frame").is_some()).collect();
        disarm();
        // Interleaving evaluations of a *different* site must not perturb
        // serve.read_frame's schedule.
        arm("seed=7,serve.*=err:0.5").unwrap();
        let mixed: Vec<bool> = (0..64)
            .map(|_| {
                let _ = check("serve.write_response");
                check("serve.read_frame").is_some()
            })
            .collect();
        disarm();
        assert_eq!(solo, mixed);
    }

    #[test]
    fn first_matching_rule_wins_and_exact_beats_nothing() {
        let _guard = exclusive();
        arm("cache.rename=err:1,cache.*=err:0").unwrap();
        assert_eq!(check("cache.rename"), Some(Fired::Err));
        assert_eq!(check("cache.read_entry"), None, "cache.* rule is err:0");
        assert_eq!(check("serve.read_frame"), None, "unmatched site");
        disarm();
    }

    #[test]
    fn probability_bounds_always_and_never() {
        let _guard = exclusive();
        arm("seed=1,a=err:1,b=err:0").unwrap();
        for _ in 0..64 {
            assert_eq!(check("a"), Some(Fired::Err));
            assert_eq!(check("b"), None);
        }
        let counts = site_counts();
        assert!(counts.contains(&("a".into(), 64, 64)));
        assert!(counts.contains(&("b".into(), 64, 0)));
        disarm();
    }

    #[test]
    fn delay_sleeps_and_reports() {
        let _guard = exclusive();
        arm("x=delay:30ms").unwrap();
        let t0 = std::time::Instant::now();
        assert_eq!(check("x"), Some(Fired::Delayed));
        assert!(t0.elapsed() >= Duration::from_millis(25));
        disarm();
    }

    #[test]
    fn panic_once_fires_exactly_once() {
        let _guard = exclusive();
        arm("boom=panic:once").unwrap();
        let caught = std::panic::catch_unwind(|| check("boom"));
        assert!(caught.is_err(), "first evaluation must panic");
        assert_eq!(check("boom"), None, "one-shot panic must disarm itself");
        disarm();
    }

    #[test]
    fn partial_maps_to_io_error_via_io_inject() {
        let _guard = exclusive();
        arm("w=partial:1").unwrap();
        assert_eq!(check("w"), Some(Fired::Partial));
        let err = io_inject("w").unwrap_err();
        assert!(err.to_string().contains("failpoint w"));
        disarm();
    }

    #[test]
    fn grammar_rejects_garbage() {
        let _guard = exclusive();
        for bad in [
            "seed=notanumber",
            "site",
            "site=explode:1",
            "site=err",
            "site=err:2.0",
            "site=err:-1",
            "site=delay:10",
            "site=delay:xms",
            "site=panic:twice",
            "site=err:0.5:extra",
        ] {
            assert!(arm(bad).is_err(), "{bad:?} should be rejected");
        }
        // A valid spec still arms after rejected attempts.
        arm("seed=3,ok=err:1").unwrap();
        assert_eq!(check("ok"), Some(Fired::Err));
        disarm();
    }

    #[test]
    fn env_arming_round_trips() {
        let _guard = exclusive();
        // `arm_from_env` with the variable unset is a no-op.
        std::env::remove_var("PARHDE_FAILPOINTS");
        assert_eq!(arm_from_env(), Ok(false));
        std::env::set_var("PARHDE_FAILPOINTS", "seed=9,e=err:1");
        assert_eq!(arm_from_env(), Ok(true));
        assert_eq!(check("e"), Some(Fired::Err));
        std::env::remove_var("PARHDE_FAILPOINTS");
        disarm();
    }
}
