//! Human-friendly formatting for the table-reproduction harness.

/// Formats a count with thousands separators, e.g. `2147483376` →
/// `"2 147 483 376"` (the paper's Table 2 style).
pub fn thousands(n: u64) -> String {
    let digits = n.to_string();
    let bytes = digits.as_bytes();
    let mut out = String::with_capacity(digits.len() + digits.len() / 3);
    for (i, &b) in bytes.iter().enumerate() {
        if i > 0 && (bytes.len() - i).is_multiple_of(3) {
            out.push(' ');
        }
        out.push(b as char);
    }
    out
}

/// Formats seconds with a precision appropriate to magnitude
/// (e.g. `72` → `"72.0"`, `0.123456` → `"0.123"`).
pub fn seconds(s: f64) -> String {
    if s >= 100.0 {
        format!("{s:.0}")
    } else if s >= 1.0 {
        format!("{s:.1}")
    } else if s >= 0.001 {
        format!("{s:.3}")
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a speedup ratio in the paper's `"18.0 ×"` style.
pub fn speedup(x: f64) -> String {
    format!("{x:.1}×")
}

/// Left-pads or truncates `s` to exactly `width` columns (for fixed-width
/// table rendering in terminal output). Operates on characters, so
/// multibyte glyphs like `×` are safe.
pub fn pad(s: &str, width: usize) -> String {
    let len = s.chars().count();
    if len >= width {
        s.chars().take(width).collect()
    } else {
        format!("{s:>width$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thousands_groups_correctly() {
        assert_eq!(thousands(0), "0");
        assert_eq!(thousands(999), "999");
        assert_eq!(thousands(1000), "1 000");
        assert_eq!(thousands(2_147_483_376), "2 147 483 376");
    }

    #[test]
    fn seconds_picks_precision() {
        assert_eq!(seconds(123.4), "123");
        assert_eq!(seconds(72.04), "72.0");
        assert_eq!(seconds(0.1234), "0.123");
        assert_eq!(seconds(0.0000005), "0.5 µs");
    }

    #[test]
    fn speedup_format() {
        assert_eq!(speedup(18.04), "18.0×");
        assert_eq!(speedup(2.875), "2.9×");
    }

    #[test]
    fn pad_widths() {
        assert_eq!(pad("abc", 5), "  abc");
        assert_eq!(pad("abcdef", 4), "abcd");
        assert_eq!(pad("abcd", 4), "abcd");
    }
}
