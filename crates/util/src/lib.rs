//! Shared utilities for the ParHDE reproduction.
//!
//! This crate deliberately has no heavy dependencies: it provides the small,
//! deterministic building blocks every other crate in the workspace leans on:
//!
//! * [`rng`] — seedable, reproducible pseudo-random number generators
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256StarStar`]) used by the graph
//!   generators and pivot selection. Experiments in the paper are rerun with
//!   fixed seeds, so all randomness in the workspace flows through these.
//! * [`timing`] — wall-clock timers and the [`timing::PhaseTimes`] registry
//!   used to produce the per-phase breakdowns of Figures 3, 5 and 6.
//! * [`stats`] — summary statistics (mean/min/max/percentiles) for benchmark
//!   reporting.
//! * [`fmt`] — human-friendly formatting of counts and durations for the
//!   table-reproduction harness.
//! * [`threads`] — helpers to run closures inside rayon pools of an exact
//!   size, which the scaling experiments (Table 4, Figure 4) sweep.
//! * [`supervisor`] — run budgets (wall-clock deadlines, soft memory
//!   budgets, cancellation tokens) polled cooperatively by the kernel hot
//!   loops, plus the ambient installation machinery and signal handlers.
//! * [`failpoint`] — process-wide deterministic fault injection: named
//!   sites compiled to one relaxed atomic load when disarmed, armed from
//!   a seed-reproducible schedule (`PARHDE_FAILPOINTS`) for chaos tests.

#![warn(missing_docs)]

pub mod failpoint;
pub mod fmt;
pub mod rng;
pub mod stats;
pub mod supervisor;
pub mod threads;
pub mod timing;

pub use rng::{SplitMix64, Xoshiro256StarStar};
pub use supervisor::{cancel_flag, CancelFlag, RunBudget, TripReason};
pub use timing::{PhaseTimes, Timer};
