//! Seedable pseudo-random number generators.
//!
//! The paper's experiments depend on randomness in three places: the
//! synthetic graph generators (urand, kron), the randomly chosen BFS start
//! vertex, and the random-pivot selection strategy of Table 6. To keep every
//! experiment bit-reproducible we route all of that through two tiny,
//! well-known generators implemented here rather than through a crate whose
//! output could change across versions:
//!
//! * [`SplitMix64`] — Steele et al.'s 64-bit mixer; stateless enough to seed
//!   other generators and to hash loop indices into independent streams.
//! * [`Xoshiro256StarStar`] — Blackman & Vigna's general-purpose generator;
//!   the workhorse for generators that consume many variates.

/// SplitMix64: a tiny splittable PRNG.
///
/// Primarily used to expand a single `u64` seed into the larger state of
/// [`Xoshiro256StarStar`] and to derive per-index independent streams
/// (`SplitMix64::new(seed ^ index)`), which the parallel graph generators
/// rely on so that each chunk of edges can be generated independently of the
/// others.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Any seed (including 0) is valid.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256**: a fast, high-quality general-purpose PRNG.
///
/// Passes BigCrush; period 2^256 − 1. This is the generator used by the
/// graph generators and pivot selection throughout the workspace.
#[derive(Clone, Debug)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

impl Xoshiro256StarStar {
    /// Creates a generator whose 256-bit state is expanded from `seed` via
    /// [`SplitMix64`], as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // An all-zero state is a fixed point; SplitMix64 cannot produce four
        // consecutive zeros, but guard anyway for safety with direct state
        // construction in tests.
        if s.iter().all(|&w| w == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniformly distributed `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        // 53 high bits → uniform dyadic rational in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniformly distributed integer in `[0, bound)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, which is unbiased.
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below bound must be positive");
        let mut x = self.next_u64();
        let mut m = (x as u128) * (bound as u128);
        let mut lo = m as u64;
        if lo < bound {
            let threshold = bound.wrapping_neg() % bound;
            while lo < threshold {
                x = self.next_u64();
                m = (x as u128) * (bound as u128);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniformly distributed `usize` index in `[0, bound)`.
    #[inline]
    pub fn next_index(&mut self, bound: usize) -> usize {
        self.next_below(bound as u64) as usize
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` without replacement.
    ///
    /// Used by the random-pivot strategy (paper §4.4, Table 6): "pivots are
    /// chosen uniformly at random without repetition".
    ///
    /// # Panics
    /// Panics if `k > n`.
    pub fn sample_distinct(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} distinct values from {n}");
        // Partial Fisher–Yates over an index map; O(k) memory via sparse map
        // would be fancier but graphs here always have n ≫ k, and a dense
        // permutation prefix keeps this simple and exactly uniform.
        if k == 0 {
            return Vec::new();
        }
        if 2 * k >= n {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            return idx;
        }
        // Floyd's algorithm for k ≪ n.
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k)..n {
            let t = self.next_index(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference outputs for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism across construction.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_different_seeds_differ() {
        let mut a = Xoshiro256StarStar::seed_from_u64(1);
        let mut b = Xoshiro256StarStar::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(9);
        for bound in [1u64, 2, 3, 10, 1000, u64::MAX] {
            for _ in 0..1000 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_below_covers_small_range() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[rng.next_below(5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn next_below_zero_panics() {
        Xoshiro256StarStar::seed_from_u64(0).next_below(0);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_distinct_has_no_repeats() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(3);
        for (n, k) in [(10, 10), (100, 3), (50, 25), (1000, 999), (7, 0)] {
            let s = rng.sample_distinct(n, k);
            assert_eq!(s.len(), k);
            let set: std::collections::HashSet<_> = s.iter().copied().collect();
            assert_eq!(set.len(), k, "duplicates in sample n={n} k={k}");
            assert!(s.iter().all(|&v| v < n));
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn sample_distinct_overflow_panics() {
        Xoshiro256StarStar::seed_from_u64(0).sample_distinct(3, 4);
    }

    #[test]
    fn next_f64_mean_is_near_half() {
        let mut rng = Xoshiro256StarStar::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }
}
