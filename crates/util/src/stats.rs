//! Summary statistics for benchmark reporting.
//!
//! The reproduction harness reports medians over repeated runs (matching
//! usual benchmarking practice; the paper reports single best-effort times on
//! a dedicated node). [`Summary`] condenses a sample of `f64` measurements.

/// Summary statistics of a sample of `f64` values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median (50th percentile, linear interpolation).
    pub median: f64,
    /// Sample standard deviation (0 for n < 2).
    pub stddev: f64,
}

impl Summary {
    /// Computes summary statistics of `values`.
    ///
    /// # Panics
    /// Panics if `values` is empty or contains NaN.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "Summary::of requires at least one value");
        assert!(
            values.iter().all(|v| !v.is_nan()),
            "Summary::of rejects NaN"
        );
        let n = values.len();
        let mean = values.iter().sum::<f64>() / n as f64;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sorted = values.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = percentile_sorted(&sorted, 50.0);
        let stddev = if n < 2 {
            0.0
        } else {
            let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Self { n, mean, min, max, median, stddev }
    }
}

/// Returns the `p`-th percentile (0–100) of an ascending-sorted slice using
/// linear interpolation between closest ranks.
///
/// # Panics
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0,100]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Geometric mean of positive values.
///
/// Used to summarize speedups across a graph collection (the conventional
/// aggregate for ratios).
///
/// # Panics
/// Panics if `values` is empty or any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric_mean of empty slice");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric_mean requires positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_constant() {
        let s = Summary::of(&[3.0, 3.0, 3.0]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 3.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.n, 3);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-12);
        // sample stddev of 1..4 = sqrt(5/3)
        assert!((s.stddev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_value() {
        let s = Summary::of(&[7.5]);
        assert_eq!(s.median, 7.5);
        assert_eq!(s.stddev, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn summary_empty_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "rejects NaN")]
    fn summary_nan_panics() {
        Summary::of(&[1.0, f64::NAN]);
    }

    #[test]
    fn percentile_endpoints() {
        let v = [1.0, 2.0, 3.0, 10.0];
        assert_eq!(percentile_sorted(&v, 0.0), 1.0);
        assert_eq!(percentile_sorted(&v, 100.0), 10.0);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [0.0, 10.0];
        assert!((percentile_sorted(&v, 25.0) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_ratios() {
        let g = geometric_mean(&[2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive values")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }
}
