//! Run supervision: wall-clock deadlines, soft memory budgets, and
//! cooperative cancellation for long layout runs.
//!
//! A [`RunBudget`] bundles the three bounds a production layout service
//! needs on every run: a **deadline** (wall-clock instant after which the
//! run must unwind), a **soft memory budget** (bytes; enforced by the
//! caller's admission estimator and by RSS polls at phase boundaries) and a
//! **cancellation token** (tripped by signal handlers or by a peer thread).
//!
//! # Ambient installation
//!
//! The hot loops that must honor a budget — BFS level sweeps, Δ-stepping
//! buckets, GEMM row-block recursion, Gram-Schmidt columns, eigensolver
//! sweeps — run deep inside `rayon` worker closures whose signatures cannot
//! thread a context through (and whose callers are shared with unbudgeted
//! paths). The budget is therefore installed *ambiently*, exactly like the
//! trace collector: [`install`] publishes the budget process-wide and
//! returns a guard; kernels poll [`should_stop`], which is a single relaxed
//! atomic load when no budget is installed. Installation is exclusive — a
//! second `install` while a guard is alive blocks until the first guard
//! drops, so concurrent runs never observe each other's budgets.
//!
//! # Cooperative contract
//!
//! Kernels never unwind themselves. A kernel that observes
//! `should_stop() == true` abandons its remaining work *cheaply* (breaking
//! out of its loop, leaving its output partial or zeroed) and returns
//! normally; the owning pipeline phase then calls [`trip`] at its next
//! phase boundary and converts the recorded [`TripReason`] into its own
//! typed error. This keeps the unwinding path on code that already returns
//! `Result` and keeps the kernels panic-free.
//!
//! # Determinism
//!
//! An *untripped* budget never changes results: checks read time and flags
//! but never data. The [`RunBudget::cancel_after_checks`] hook trips the
//! cancellation token after exactly N cooperative checks, giving tests a
//! deterministic way to cut a run at any internal boundary.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// A shareable cancellation flag a [`RunBudget`] can be linked to with
/// [`RunBudget::with_external_cancel`]. A connection watchdog (or any other
/// observer that outlives no budget in particular) sets it with a single
/// atomic store and every linked budget trips at its next cooperative
/// check.
pub type CancelFlag = Arc<AtomicBool>;

/// A fresh, untripped [`CancelFlag`].
pub fn cancel_flag() -> CancelFlag {
    Arc::new(AtomicBool::new(false))
}

/// Why a budget tripped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TripReason {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation token was tripped (signal handler, peer thread, or
    /// the deterministic `cancel_after_checks` test hook).
    Cancelled,
    /// The soft memory budget was exceeded (recorded by the owning
    /// pipeline's phase-boundary RSS poll via [`RunBudget::trip_memory`]).
    Memory,
}

impl TripReason {
    /// Stable lowercase label used in trace counters and reports.
    pub fn label(self) -> &'static str {
        match self {
            TripReason::Deadline => "deadline",
            TripReason::Cancelled => "cancelled",
            TripReason::Memory => "memory",
        }
    }
}

const TRIP_NONE: u8 = 0;
const TRIP_DEADLINE: u8 = 1;
const TRIP_CANCELLED: u8 = 2;
const TRIP_MEMORY: u8 = 3;

fn decode_trip(v: u8) -> Option<TripReason> {
    match v {
        TRIP_DEADLINE => Some(TripReason::Deadline),
        TRIP_CANCELLED => Some(TripReason::Cancelled),
        TRIP_MEMORY => Some(TripReason::Memory),
        _ => None,
    }
}

/// Deadlines are stored as nanoseconds after a per-budget anchor instant so
/// they fit an atomic (re-armable per ladder rung). `u64::MAX` means "no
/// deadline".
const NO_DEADLINE: u64 = u64::MAX;

/// `cancel_after_checks` sentinel for "hook disabled".
const NO_TRIP_AFTER: u64 = u64::MAX;

struct BudgetCore {
    /// Fixed at construction; deadlines are offsets from here.
    anchor: Instant,
    /// Nanoseconds after `anchor`, or [`NO_DEADLINE`].
    deadline_nanos: AtomicU64,
    /// Soft memory budget in bytes (`u64::MAX` = none). Enforced by the
    /// caller (admission estimate + RSS polls), not by `should_stop`.
    mem_budget_bytes: u64,
    /// Cancellation token.
    cancelled: AtomicBool,
    /// An external cancellation flag this budget also observes (a service
    /// daemon's per-request disconnect watchdog), if linked.
    external_cancel: Option<CancelFlag>,
    /// Whether process-wide cancellation (signal handlers) trips this budget.
    honor_global_cancel: bool,
    /// The request trace ID this run belongs to, if it runs on behalf of a
    /// service request. Carried here so everything downstream of the
    /// ambient install — run reports, warnings, error paths — can join a
    /// server-side artifact to the client-visible response without any
    /// extra plumbing.
    trace_id: Option<Arc<str>>,
    /// Cooperative checks performed so far.
    checks: AtomicU64,
    /// Test hook: trip cancellation once `checks` reaches this value.
    trip_after: AtomicU64,
    /// First recorded trip ([`TRIP_NONE`] until one happens).
    tripped: AtomicU8,
}

/// First-trip outcome counters in the global metrics registry, resolved
/// once: `record_trip` sits on the cooperative-check path, so it must not
/// take the registry's registration lock per call.
fn trip_counters() -> &'static [Arc<parhde_trace::registry::Counter>; 3] {
    static COUNTERS: OnceLock<[Arc<parhde_trace::registry::Counter>; 3]> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = parhde_trace::registry::global();
        [
            reg.counter("parhde_supervisor_trips_deadline_total"),
            reg.counter("parhde_supervisor_trips_cancelled_total"),
            reg.counter("parhde_supervisor_trips_memory_total"),
        ]
    })
}

impl BudgetCore {
    /// Records `reason` if no trip is recorded yet; returns the reason that
    /// ends up recorded. The *first* trip of each budget is counted in the
    /// global metrics registry under its reason.
    fn record_trip(&self, reason: u8) -> u8 {
        match self.tripped.compare_exchange(
            TRIP_NONE,
            reason,
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => {
                trip_counters()[(reason - 1) as usize].inc();
                reason
            }
            Err(prev) => prev,
        }
    }

    /// A fresh core with the same configuration and state (the builder
    /// methods rebuild the core because its plain fields are immutable
    /// post-construction; budgets are configured before being shared).
    fn reconfigured(&self) -> BudgetCore {
        BudgetCore {
            anchor: self.anchor,
            deadline_nanos: AtomicU64::new(self.deadline_nanos.load(Ordering::Relaxed)),
            mem_budget_bytes: self.mem_budget_bytes,
            cancelled: AtomicBool::new(self.cancelled.load(Ordering::Relaxed)),
            external_cancel: self.external_cancel.clone(),
            honor_global_cancel: self.honor_global_cancel,
            trace_id: self.trace_id.clone(),
            checks: AtomicU64::new(self.checks.load(Ordering::Relaxed)),
            trip_after: AtomicU64::new(self.trip_after.load(Ordering::Relaxed)),
            tripped: AtomicU8::new(self.tripped.load(Ordering::Relaxed)),
        }
    }

    /// One cooperative check; returns true when the run should unwind.
    fn check(&self) -> bool {
        let k = self.checks.fetch_add(1, Ordering::Relaxed) + 1;
        if k >= self.trip_after.load(Ordering::Relaxed) {
            self.cancelled.store(true, Ordering::Relaxed);
        }
        if self.cancelled.load(Ordering::Relaxed)
            || (self.honor_global_cancel && global_cancel_requested())
            || self
                .external_cancel
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
        {
            self.record_trip(TRIP_CANCELLED);
            return true;
        }
        if self.tripped.load(Ordering::Relaxed) != TRIP_NONE {
            return true;
        }
        let dl = self.deadline_nanos.load(Ordering::Relaxed);
        if dl != NO_DEADLINE {
            let now = self.anchor.elapsed().as_nanos() as u64;
            if now >= dl {
                self.record_trip(TRIP_DEADLINE);
                return true;
            }
        }
        false
    }
}

/// A run budget: deadline + soft memory budget + cancellation token.
///
/// Cloning is cheap and shares state — a clone held by a watcher thread
/// sees (and can trigger) the same trips as the installed original.
#[derive(Clone)]
pub struct RunBudget {
    core: Arc<BudgetCore>,
}

impl Default for RunBudget {
    fn default() -> Self {
        Self::unbounded()
    }
}

impl std::fmt::Debug for RunBudget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunBudget")
            .field("deadline", &self.remaining())
            .field("mem_budget_bytes", &self.mem_budget_bytes())
            .field("cancelled", &self.is_cancelled())
            .field("tripped", &self.trip())
            .finish()
    }
}

impl RunBudget {
    /// A budget with no bounds at all (checks always pass). Useful as a
    /// carrier for the cancellation token alone.
    pub fn unbounded() -> Self {
        Self {
            core: Arc::new(BudgetCore {
                anchor: Instant::now(),
                deadline_nanos: AtomicU64::new(NO_DEADLINE),
                mem_budget_bytes: u64::MAX,
                cancelled: AtomicBool::new(false),
                external_cancel: None,
                honor_global_cancel: false,
                trace_id: None,
                checks: AtomicU64::new(0),
                trip_after: AtomicU64::new(NO_TRIP_AFTER),
                tripped: AtomicU8::new(TRIP_NONE),
            }),
        }
    }

    /// Returns a copy of this budget with a deadline `d` from now.
    #[must_use]
    pub fn with_deadline(self, d: Duration) -> Self {
        self.arm_deadline_at(Instant::now() + d);
        self
    }

    /// Returns a copy of this budget with a soft memory budget in bytes.
    #[must_use]
    pub fn with_mem_budget(self, bytes: u64) -> Self {
        let mut core = self.core.reconfigured();
        core.mem_budget_bytes = bytes;
        Self { core: Arc::new(core) }
    }

    /// Returns a copy of this budget that also trips on process-wide
    /// cancellation requests ([`request_global_cancel`], signal handlers).
    #[must_use]
    pub fn honoring_global_cancel(self) -> Self {
        let mut core = self.core.reconfigured();
        core.honor_global_cancel = true;
        Self { core: Arc::new(core) }
    }

    /// Returns a copy of this budget that also trips when `flag` is set.
    /// The flag is shared, not consumed: a connection watchdog keeps its
    /// own handle and cancels the run with a single atomic store, without
    /// needing a clone of the budget itself.
    #[must_use]
    pub fn with_external_cancel(self, flag: CancelFlag) -> Self {
        let mut core = self.core.reconfigured();
        core.external_cancel = Some(flag);
        Self { core: Arc::new(core) }
    }

    /// Returns a copy of this budget tagged with a request trace ID. The
    /// ID rides the ambient install ([`ambient_trace_id`]) so run reports
    /// and diagnostics produced deep inside a run can be joined to the
    /// service request that caused them.
    #[must_use]
    pub fn with_trace_id(self, id: &str) -> Self {
        let mut core = self.core.reconfigured();
        core.trace_id = Some(Arc::from(id));
        Self { core: Arc::new(core) }
    }

    /// The request trace ID this budget carries, if any.
    pub fn trace_id(&self) -> Option<Arc<str>> {
        self.core.trace_id.clone()
    }

    /// (Re-)arms the deadline to the absolute instant `at`. Used by the
    /// degraded-retry ladder to give each rung its own slice of the overall
    /// deadline; also clears a previously recorded *deadline* trip so the
    /// next rung starts clean (cancellation stays sticky).
    pub fn arm_deadline_at(&self, at: Instant) {
        let nanos = at
            .checked_duration_since(self.core.anchor)
            .map_or(0, |d| d.as_nanos() as u64);
        self.core.deadline_nanos.store(nanos, Ordering::Relaxed);
        let _ = self.core.tripped.compare_exchange(
            TRIP_DEADLINE,
            TRIP_NONE,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
        let _ = self.core.tripped.compare_exchange(
            TRIP_MEMORY,
            TRIP_NONE,
            Ordering::Relaxed,
            Ordering::Relaxed,
        );
    }

    /// Removes the deadline (the cancellation token keeps working).
    pub fn disarm_deadline(&self) {
        self.core.deadline_nanos.store(NO_DEADLINE, Ordering::Relaxed);
    }

    /// Trips the cancellation token. Safe from any thread.
    pub fn cancel(&self) {
        self.core.cancelled.store(true, Ordering::Relaxed);
        self.core.record_trip(TRIP_CANCELLED);
    }

    /// Whether the cancellation token is tripped.
    pub fn is_cancelled(&self) -> bool {
        self.core.cancelled.load(Ordering::Relaxed)
            || (self.core.honor_global_cancel && global_cancel_requested())
            || self
                .core
                .external_cancel
                .as_ref()
                .is_some_and(|f| f.load(Ordering::Relaxed))
    }

    /// Records a memory-budget trip (called by the owning pipeline when an
    /// RSS poll exceeds the soft budget).
    pub fn trip_memory(&self) {
        self.core.record_trip(TRIP_MEMORY);
    }

    /// The soft memory budget in bytes, if one is set.
    pub fn mem_budget_bytes(&self) -> Option<u64> {
        (self.core.mem_budget_bytes != u64::MAX).then_some(self.core.mem_budget_bytes)
    }

    /// Time left before the deadline (None when no deadline is armed;
    /// `Some(ZERO)` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        let dl = self.core.deadline_nanos.load(Ordering::Relaxed);
        if dl == NO_DEADLINE {
            return None;
        }
        let now = self.core.anchor.elapsed().as_nanos() as u64;
        Some(Duration::from_nanos(dl.saturating_sub(now)))
    }

    /// The first recorded trip, if any.
    pub fn trip(&self) -> Option<TripReason> {
        decode_trip(self.core.tripped.load(Ordering::Relaxed))
    }

    /// One cooperative check against *this* budget (kernels normally use
    /// the ambient [`should_stop`] instead). Returns true when tripped.
    pub fn check(&self) -> bool {
        self.core.check()
    }

    /// Cooperative checks performed so far (across all threads).
    pub fn checks(&self) -> u64 {
        self.core.checks.load(Ordering::Relaxed)
    }

    /// Deterministic fault-injection hook: trip the cancellation token at
    /// the `n`-th cooperative check (1-indexed). `u64::MAX` disables.
    pub fn cancel_after_checks(&self, n: u64) {
        self.core.trip_after.store(n, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Ambient installation
// ---------------------------------------------------------------------------

/// Fast-path flag: true while a budget is installed.
static ACTIVE: AtomicBool = AtomicBool::new(false);

/// The installed budget. The outer mutex serializes installations: the
/// guard returned by [`install`] holds it for its whole lifetime, so at
/// most one budget is ever ambient and concurrent `install` calls queue.
static SLOT: OnceLock<Mutex<Option<Arc<BudgetCore>>>> = OnceLock::new();

/// A second handle to the installed core for readers ([`should_stop`]),
/// who cannot take `SLOT` (it is held by the install guard).
static READ_SLOT: OnceLock<Mutex<Option<Arc<BudgetCore>>>> = OnceLock::new();

fn slot() -> &'static Mutex<Option<Arc<BudgetCore>>> {
    SLOT.get_or_init(|| Mutex::new(None))
}

fn read_slot() -> &'static Mutex<Option<Arc<BudgetCore>>> {
    READ_SLOT.get_or_init(|| Mutex::new(None))
}

/// Keeps the ambient budget installed; uninstalls on drop.
pub struct Installed {
    _exclusive: MutexGuard<'static, Option<Arc<BudgetCore>>>,
}

impl Drop for Installed {
    fn drop(&mut self) {
        ACTIVE.store(false, Ordering::SeqCst);
        if let Ok(mut r) = read_slot().lock() {
            *r = None;
        }
    }
}

/// Installs `budget` as the process-wide ambient budget polled by
/// [`should_stop`]. Blocks while another budget is installed (exclusive);
/// the returned guard uninstalls on drop.
pub fn install(budget: &RunBudget) -> Installed {
    let mut exclusive = match slot().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    *exclusive = Some(Arc::clone(&budget.core));
    if let Ok(mut r) = read_slot().lock() {
        *r = Some(Arc::clone(&budget.core));
    }
    ACTIVE.store(true, Ordering::SeqCst);
    parhde_trace::registry::global()
        .counter("parhde_supervisor_installs_total")
        .inc();
    Installed { _exclusive: exclusive }
}

/// Cooperative cancellation point for kernels: true when an installed
/// budget has tripped (deadline passed, cancellation requested, or memory
/// trip recorded). A single relaxed atomic load when no budget is
/// installed, so unbudgeted runs pay essentially nothing.
#[inline]
pub fn should_stop() -> bool {
    if !ACTIVE.load(Ordering::Relaxed) {
        return false;
    }
    should_stop_slow()
}

#[cold]
fn should_stop_slow() -> bool {
    let core = match read_slot().lock() {
        Ok(g) => g.clone(),
        Err(_) => None,
    };
    match core {
        Some(c) => c.check(),
        None => false,
    }
}

/// The ambient budget's recorded trip, if a budget is installed and has
/// tripped. Pipelines call this at phase boundaries to convert a kernel's
/// early exit into their own typed error.
pub fn ambient_trip() -> Option<TripReason> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let core = read_slot().lock().ok()?.clone()?;
    decode_trip(core.tripped.load(Ordering::Relaxed))
}

/// The ambient budget's request trace ID, if a budget is installed and
/// carries one. Lets code deep inside a run tag its artifacts with the
/// service request they belong to.
pub fn ambient_trace_id() -> Option<Arc<str>> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let core = read_slot().lock().ok()?.clone()?;
    core.trace_id.clone()
}

/// The ambient budget's soft memory budget, if any. Used by pipelines for
/// phase-boundary RSS polls.
pub fn ambient_mem_budget() -> Option<u64> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let core = read_slot().lock().ok()?.clone()?;
    (core.mem_budget_bytes != u64::MAX).then_some(core.mem_budget_bytes)
}

/// Records a memory trip on the ambient budget (no-op when none installed).
pub fn ambient_trip_memory() {
    if !ACTIVE.load(Ordering::Relaxed) {
        return;
    }
    if let Some(core) = read_slot().lock().ok().and_then(|g| g.clone()) {
        core.record_trip(TRIP_MEMORY);
    }
}

// ---------------------------------------------------------------------------
// Process-wide cancellation (signal handlers)
// ---------------------------------------------------------------------------

/// Set by [`request_global_cancel`]; consulted by budgets built with
/// [`RunBudget::honoring_global_cancel`].
static GLOBAL_CANCEL: AtomicBool = AtomicBool::new(false);

/// Requests process-wide cancellation. Async-signal-safe (a single atomic
/// store), so signal handlers may call it directly.
pub fn request_global_cancel() {
    GLOBAL_CANCEL.store(true, Ordering::SeqCst);
}

/// Whether process-wide cancellation has been requested.
pub fn global_cancel_requested() -> bool {
    GLOBAL_CANCEL.load(Ordering::Relaxed)
}

/// Clears the process-wide cancellation flag (tests only).
#[doc(hidden)]
pub fn reset_global_cancel() {
    GLOBAL_CANCEL.store(false, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers that request process-wide cancellation
/// ([`request_global_cancel`]) on the first signal and restore the default
/// disposition, so a second signal terminates the process immediately.
/// Budgets built with [`RunBudget::honoring_global_cancel`] then trip at
/// their next cooperative check and the run unwinds cleanly — flushing run
/// reports and checkpoints — instead of dying mid-write.
///
/// No-op on non-Unix platforms.
pub fn install_signal_handlers() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        const SIG_DFL: usize = 0;

        unsafe extern "C" {
            // libc `signal(2)`; linked from the C runtime every Rust binary
            // already carries, so no new dependency is involved.
            fn signal(signum: i32, handler: usize) -> usize;
        }

        extern "C" fn on_signal(signum: i32) {
            // Only async-signal-safe operations here: one atomic store plus
            // re-arming the default disposition so a second signal kills.
            request_global_cancel();
            unsafe {
                signal(signum, SIG_DFL);
            }
        }

        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

// ---------------------------------------------------------------------------
// Two-stage drain (long-running daemons)
// ---------------------------------------------------------------------------

/// Set by the first signal under [`install_two_stage_handlers`].
static DRAIN: AtomicBool = AtomicBool::new(false);

/// Whether a drain has been requested (first SIGINT/SIGTERM under the
/// two-stage handlers, or [`request_drain`]).
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::Relaxed)
}

/// Requests a drain programmatically — the same observable effect as the
/// first signal under the two-stage handlers. Async-signal-safe.
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Clears the drain flag (tests only).
#[doc(hidden)]
pub fn reset_drain() {
    DRAIN.store(false, Ordering::SeqCst);
}

/// Installs the *two-stage* SIGINT/SIGTERM handlers a long-running daemon
/// needs, where the single-shot [`install_signal_handlers`] contract
/// ("request cancel, re-arm `SIG_DFL`") cannot distinguish **drain** from
/// **die**:
///
/// * the **first** signal sets the drain flag ([`drain_requested`]) and
///   returns — in-flight work keeps running, the accept loop stops taking
///   new work and the process exits 0 once drained;
/// * the **second** signal force-exits the process with status **130**
///   immediately (`_exit`, async-signal-safe — no destructors, no flush),
///   for operators who need the process gone *now*.
///
/// Unlike the single-shot handlers this does **not** request global
/// cancellation: budgets keep running until the daemon's own drain logic
/// decides to checkpoint or cancel them. No-op on non-Unix platforms.
pub fn install_two_stage_handlers() {
    #[cfg(unix)]
    {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;

        unsafe extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
            // libc `_exit(2)`: terminates without running atexit handlers
            // or unwinding — the only safe way out of a signal handler.
            fn _exit(status: i32) -> !;
        }

        extern "C" fn on_signal(_signum: i32) {
            // Async-signal-safe: one atomic swap, and on the second signal
            // an immediate `_exit`. The handler stays armed between the
            // two stages (no SIG_DFL re-arm — stage two is ours).
            if DRAIN.swap(true, Ordering::SeqCst) {
                unsafe { _exit(130) }
            }
        }

        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex as StdMutex;

    /// `install` is process-global; serialize the tests that use it.
    static TEST_LOCK: StdMutex<()> = StdMutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn unbounded_budget_never_trips() {
        let b = RunBudget::unbounded();
        for _ in 0..1000 {
            assert!(!b.check());
        }
        assert_eq!(b.trip(), None);
        assert_eq!(b.checks(), 1000);
    }

    #[test]
    fn deadline_trips_and_rearms() {
        let b = RunBudget::unbounded().with_deadline(Duration::from_millis(0));
        assert!(b.check());
        assert_eq!(b.trip(), Some(TripReason::Deadline));
        // Re-arming for a later slice clears the deadline trip.
        b.arm_deadline_at(Instant::now() + Duration::from_secs(3600));
        assert!(!b.check());
        assert_eq!(b.trip(), None);
    }

    #[test]
    fn cancellation_is_sticky_across_rearm() {
        let b = RunBudget::unbounded();
        b.cancel();
        assert!(b.check());
        b.arm_deadline_at(Instant::now() + Duration::from_secs(3600));
        assert!(b.check(), "cancellation must survive deadline re-arming");
        assert_eq!(b.trip(), Some(TripReason::Cancelled));
    }

    #[test]
    fn cancel_after_checks_is_deterministic() {
        let b = RunBudget::unbounded();
        b.cancel_after_checks(5);
        for _ in 0..4 {
            assert!(!b.check());
        }
        assert!(b.check());
        assert_eq!(b.trip(), Some(TripReason::Cancelled));
    }

    #[test]
    fn memory_trip_records_reason() {
        let b = RunBudget::unbounded().with_mem_budget(1 << 20);
        assert_eq!(b.mem_budget_bytes(), Some(1 << 20));
        b.trip_memory();
        assert!(b.check());
        assert_eq!(b.trip(), Some(TripReason::Memory));
    }

    #[test]
    fn ambient_install_round_trip() {
        let _l = lock();
        assert!(!should_stop(), "no budget installed");
        let b = RunBudget::unbounded().with_deadline(Duration::from_millis(0));
        {
            let _g = install(&b);
            assert!(should_stop());
            assert_eq!(ambient_trip(), Some(TripReason::Deadline));
        }
        assert!(!should_stop(), "uninstalled on drop");
        assert_eq!(ambient_trip(), None);
    }

    #[test]
    fn ambient_mem_budget_visible() {
        let _l = lock();
        let b = RunBudget::unbounded().with_mem_budget(123);
        let _g = install(&b);
        assert_eq!(ambient_mem_budget(), Some(123));
        ambient_trip_memory();
        assert_eq!(ambient_trip(), Some(TripReason::Memory));
    }

    #[test]
    fn global_cancel_flag_only_affects_opted_in_budgets() {
        let _l = lock();
        reset_global_cancel();
        let plain = RunBudget::unbounded();
        let opted = RunBudget::unbounded().honoring_global_cancel();
        request_global_cancel();
        assert!(!plain.check());
        assert!(opted.check());
        assert_eq!(opted.trip(), Some(TripReason::Cancelled));
        reset_global_cancel();
    }

    #[test]
    fn external_cancel_flag_trips_linked_budgets() {
        let flag = cancel_flag();
        let plain = RunBudget::unbounded();
        let linked = RunBudget::unbounded().with_external_cancel(Arc::clone(&flag));
        assert!(!linked.check() && !linked.is_cancelled());
        flag.store(true, Ordering::SeqCst);
        assert!(!plain.check(), "unlinked budgets must not observe the flag");
        assert!(linked.is_cancelled());
        assert!(linked.check());
        assert_eq!(linked.trip(), Some(TripReason::Cancelled));
    }

    #[test]
    fn external_cancel_survives_budget_reshaping() {
        let flag = cancel_flag();
        let b = RunBudget::unbounded()
            .with_external_cancel(Arc::clone(&flag))
            .with_mem_budget(1 << 20)
            .honoring_global_cancel();
        flag.store(true, Ordering::SeqCst);
        assert!(b.check());
        assert_eq!(b.trip(), Some(TripReason::Cancelled));
    }

    #[test]
    fn drain_flag_round_trip() {
        let _l = lock();
        reset_drain();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_drain();
        assert!(!drain_requested());
    }

    #[test]
    fn remaining_counts_down() {
        let b = RunBudget::unbounded().with_deadline(Duration::from_secs(3600));
        let r = b.remaining().unwrap();
        assert!(r <= Duration::from_secs(3600) && r > Duration::from_secs(3500));
        assert_eq!(RunBudget::unbounded().remaining(), None);
    }

    #[test]
    fn trace_id_survives_reshaping_and_rides_the_ambient_install() {
        let _l = lock();
        let b = RunBudget::unbounded()
            .with_trace_id("abc123-00000001")
            .with_mem_budget(1 << 20)
            .honoring_global_cancel()
            .with_external_cancel(cancel_flag());
        assert_eq!(b.trace_id().as_deref(), Some("abc123-00000001"));
        assert_eq!(ambient_trace_id(), None, "no budget installed yet");
        {
            let _g = install(&b);
            assert_eq!(ambient_trace_id().as_deref(), Some("abc123-00000001"));
        }
        assert_eq!(ambient_trace_id(), None, "uninstalled on drop");
        assert_eq!(RunBudget::unbounded().trace_id(), None);
    }

    #[test]
    fn first_trips_are_counted_in_the_global_registry() {
        let counted = |name: &str| {
            parhde_trace::registry::global()
                .snapshot()
                .counter(name)
                .unwrap_or(0)
        };
        let before = counted("parhde_supervisor_trips_deadline_total");
        let b = RunBudget::unbounded().with_deadline(Duration::from_millis(0));
        assert!(b.check());
        assert!(b.check(), "still tripped");
        let after = counted("parhde_supervisor_trips_deadline_total");
        // Exactly one increment for this budget, however many checks ran
        // (other tests may trip their own budgets concurrently, so compare
        // against a per-test baseline with ≥).
        assert!(after > before, "{after} vs {before}");

        let before = counted("parhde_supervisor_trips_memory_total");
        let m = RunBudget::unbounded();
        m.trip_memory();
        m.trip_memory();
        assert!(counted("parhde_supervisor_trips_memory_total") > before);
    }

    #[test]
    fn trip_reason_labels_are_stable() {
        assert_eq!(TripReason::Deadline.label(), "deadline");
        assert_eq!(TripReason::Cancelled.label(), "cancelled");
        assert_eq!(TripReason::Memory.label(), "memory");
    }
}
