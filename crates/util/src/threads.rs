//! Rayon thread-pool helpers for the scaling experiments.
//!
//! The paper's Table 4 and Figure 4 sweep core counts {1, 4, 7, 14, 28}
//! with compact thread pinning. Rust/rayon has no portable pinning API, so
//! the reproduction controls only the *pool size*; [`run_with_threads`] runs
//! a closure inside a dedicated pool of exactly `threads` workers so nested
//! `par_iter` calls use that pool.

/// Runs `f` inside a fresh rayon thread pool with exactly `threads` workers
/// and returns its result.
///
/// Building a pool costs a few hundred microseconds, which is irrelevant for
/// the multi-millisecond algorithm runs being measured; callers that measure
/// microsecond kernels should build one pool and reuse it.
///
/// # Panics
/// Panics if `threads == 0` or if the pool cannot be built.
pub fn run_with_threads<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    assert!(threads > 0, "thread count must be positive");
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("failed to build rayon pool");
    pool.install(f)
}

/// The thread counts to sweep in scaling experiments: the paper's
/// {1, 4, 7, 14, 28} clipped to the host's available parallelism, always
/// including 1 and the maximum available.
pub fn scaling_thread_counts() -> Vec<usize> {
    let max = available_threads();
    let mut counts: Vec<usize> = [1usize, 4, 7, 14, 28]
        .into_iter()
        .filter(|&c| c <= max)
        .collect();
    if !counts.contains(&max) {
        counts.push(max);
    }
    counts.sort_unstable();
    counts.dedup();
    counts
}

/// Number of hardware threads available to this process.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn run_with_threads_returns_value() {
        let v = run_with_threads(2, || (0..100).into_par_iter().sum::<i32>());
        assert_eq!(v, 4950);
    }

    #[test]
    fn run_with_threads_uses_requested_pool_size() {
        let n = run_with_threads(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    #[should_panic(expected = "thread count must be positive")]
    fn zero_threads_panics() {
        run_with_threads(0, || ());
    }

    #[test]
    fn scaling_counts_start_at_one_and_are_sorted() {
        let counts = scaling_thread_counts();
        assert_eq!(counts[0], 1);
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert!(counts.contains(&available_threads()));
    }
}
