//! Wall-clock timing and per-phase breakdown accounting.
//!
//! The paper's evaluation leans heavily on *phase breakdowns*: Figures 3, 5
//! and 6 show the percentage of time spent in the BFS, D-Orthogonalization,
//! TripleProd (split into `LS` and `Sᵀ(LS)`), and "Other" phases. The
//! [`PhaseTimes`] registry collects named durations during a run and renders
//! exactly those percentage splits. Storage lives in
//! [`parhde_trace::PhaseAccumulator`] — an index-mapped registry with O(1)
//! accumulation — so per-source `add` calls stay constant-time no matter how
//! many phases a run records; this type remains the workspace-facing API.

use parhde_trace::PhaseAccumulator;
use std::time::{Duration, Instant};

/// A simple wall-clock stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts a new timer.
    #[inline]
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Elapsed time since the timer was started.
    #[inline]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as `f64`.
    #[inline]
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }

    /// Resets the timer to now and returns the time elapsed before the reset.
    #[inline]
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now.duration_since(self.start);
        self.start = now;
        d
    }
}

impl Default for Timer {
    fn default() -> Self {
        Self::start()
    }
}

/// Accumulates named phase durations for a single algorithm run.
///
/// Phases may be recorded multiple times (e.g. one `bfs` entry per source
/// vertex); durations for the same name accumulate in O(1) per call.
/// Insertion order of first occurrence is preserved so breakdowns print in
/// pipeline order.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimes {
    acc: PhaseAccumulator,
}

impl PhaseTimes {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the accumulated duration of phase `name`.
    pub fn add(&mut self, name: &str, d: Duration) {
        self.acc.add(name, d);
    }

    /// Times `f`, accumulating its duration under `name`, and returns its result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t = Timer::start();
        let out = f();
        self.add(name, t.elapsed());
        out
    }

    /// Accumulated duration of phase `name`, if recorded.
    pub fn get(&self, name: &str) -> Option<Duration> {
        self.acc.get(name)
    }

    /// Accumulated seconds of phase `name` (0.0 if not recorded).
    pub fn seconds(&self, name: &str) -> f64 {
        self.acc.seconds(name)
    }

    /// Sum of all recorded phase durations.
    pub fn total(&self) -> Duration {
        self.acc.total()
    }

    /// Iterates over `(name, duration)` pairs in first-recorded order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, Duration)> {
        self.acc.iter()
    }

    /// Percentage of the total attributed to each phase, in recorded order.
    ///
    /// This is the quantity plotted in the paper's Figures 3, 5 and 6. If
    /// nothing was recorded, returns an empty vector.
    pub fn percentages(&self) -> Vec<(String, f64)> {
        self.acc.percentages()
    }

    /// Merges another registry into this one (summing same-named phases).
    pub fn merge(&mut self, other: &PhaseTimes) {
        self.acc.merge(&other.acc)
    }

    /// Number of distinct phases recorded.
    pub fn len(&self) -> usize {
        self.acc.len()
    }

    /// True if no phase has been recorded.
    pub fn is_empty(&self) -> bool {
        self.acc.is_empty()
    }

    /// The underlying accumulator, for sinks that consume
    /// [`PhaseAccumulator`] directly.
    pub fn accumulator(&self) -> &PhaseAccumulator {
        &self.acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timer_measures_nonnegative() {
        let t = Timer::start();
        assert!(t.seconds() >= 0.0);
    }

    #[test]
    fn timer_lap_resets() {
        let mut t = Timer::start();
        std::thread::sleep(Duration::from_millis(2));
        let first = t.lap();
        assert!(first >= Duration::from_millis(1));
        // After the lap, elapsed restarts near zero.
        assert!(t.elapsed() < first + Duration::from_millis(50));
    }

    #[test]
    fn phases_accumulate() {
        let mut p = PhaseTimes::new();
        p.add("bfs", Duration::from_millis(10));
        p.add("bfs", Duration::from_millis(5));
        p.add("dortho", Duration::from_millis(15));
        assert_eq!(p.get("bfs"), Some(Duration::from_millis(15)));
        assert_eq!(p.total(), Duration::from_millis(30));
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn phases_preserve_order() {
        let mut p = PhaseTimes::new();
        p.add("bfs", Duration::from_millis(1));
        p.add("tripleprod", Duration::from_millis(1));
        p.add("dortho", Duration::from_millis(1));
        p.add("bfs", Duration::from_millis(1));
        let names: Vec<&str> = p.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["bfs", "tripleprod", "dortho"]);
    }

    #[test]
    fn percentages_sum_to_hundred() {
        let mut p = PhaseTimes::new();
        p.add("a", Duration::from_millis(25));
        p.add("b", Duration::from_millis(75));
        let pct = p.percentages();
        let total: f64 = pct.iter().map(|(_, v)| v).sum();
        assert!((total - 100.0).abs() < 1e-9);
        assert!((pct[0].1 - 25.0).abs() < 1e-9);
    }

    #[test]
    fn percentages_of_empty_are_empty() {
        assert!(PhaseTimes::new().percentages().is_empty());
        assert!(PhaseTimes::new().is_empty());
    }

    #[test]
    fn time_records_and_returns() {
        let mut p = PhaseTimes::new();
        let v = p.time("work", || 42);
        assert_eq!(v, 42);
        assert!(p.get("work").is_some());
    }

    #[test]
    fn merge_sums_phases() {
        let mut a = PhaseTimes::new();
        a.add("x", Duration::from_millis(10));
        let mut b = PhaseTimes::new();
        b.add("x", Duration::from_millis(20));
        b.add("y", Duration::from_millis(5));
        a.merge(&b);
        assert_eq!(a.get("x"), Some(Duration::from_millis(30)));
        assert_eq!(a.get("y"), Some(Duration::from_millis(5)));
    }
}
