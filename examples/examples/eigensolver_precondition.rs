//! ParHDE as an eigensolver preprocessing step (§4.5.3): Kirmani et al.
//! observed that HDE plus a lightweight weighted-centroid refinement
//! "closely approximates the eigenvectors" at 22×–131× less cost than
//! power iteration. This example quantifies that claim the way it is
//! meant: how many power-iteration (centroid) sweeps does a *random* start
//! need to reach the layout quality ParHDE delivers almost for free?
//!
//! (Quality = the Equation 1 energy objective; the spectral optimum is its
//! minimum. Converging power iteration to small residuals is gap-limited
//! for any start — the win is that HDE already sits at low energy.)
//!
//! ```text
//! cargo run -p parhde-examples --release --example eigensolver_precondition
//! ```

use parhde::config::ParHdeConfig;
use parhde::layout::Layout;
use parhde::par_hde;
use parhde::quality::energy_objective;
use parhde::refine::refined_axes;
use parhde_graph::gen::grid2d;
use parhde_graph::CsrGraph;
use parhde_util::{Timer, Xoshiro256StarStar};

/// Counts centroid sweeps (2 matvecs each) from `start` until the energy
/// drops to `target`, up to `cap` sweeps. Returns (sweeps, final energy).
fn sweeps_to_reach(g: &CsrGraph, start: &Layout, target: f64, cap: usize) -> (usize, f64) {
    let mut current = start.clone();
    let mut energy = energy_objective(g, &current);
    let mut sweeps = 0;
    while energy > target && sweeps < cap {
        // Refine in batches of 10 to amortize the setup.
        current = refined_axes(g, &current, 10);
        sweeps += 10;
        energy = energy_objective(g, &current);
    }
    (sweeps, energy)
}

fn main() {
    // Non-square grid (a square grid has degenerate λ₂ = λ₃).
    let g = grid2d(150, 100);
    let n = g.num_vertices();
    println!("graph: {n}-vertex grid");

    // ParHDE layout: milliseconds.
    let t = Timer::start();
    let (hde, _) = par_hde(&g, &ParHdeConfig::default());
    let hde_time = t.seconds();
    let hde_energy = energy_objective(&g, &hde);
    println!("ParHDE: {:.1} ms, energy {hde_energy:.6}", hde_time * 1e3);

    // ParHDE + 10 refinement sweeps: still milliseconds.
    let t = Timer::start();
    let refined = refined_axes(&g, &hde, 10);
    let refine_time = t.seconds();
    let refined_energy = energy_objective(&g, &refined);
    println!(
        "ParHDE + 10 centroid sweeps: +{:.1} ms, energy {refined_energy:.6}",
        refine_time * 1e3
    );

    // Power iteration from a random start = centroid sweeps from random
    // axes. How long to match each target?
    let mut rng = Xoshiro256StarStar::seed_from_u64(99);
    let random = Layout::new(
        (0..n).map(|_| rng.next_f64() - 0.5).collect(),
        (0..n).map(|_| rng.next_f64() - 0.5).collect(),
    );
    println!(
        "random start energy {:.6}",
        energy_objective(&g, &random)
    );

    let t = Timer::start();
    let (s1, e1) = sweeps_to_reach(&g, &random, hde_energy, 20_000);
    let t1 = t.seconds();
    println!(
        "random start needed {s1} sweeps ({} matvecs, {:.2} s) to reach ParHDE's \
         energy (got {e1:.6})",
        2 * s1,
        t1
    );
    println!(
        "→ preprocessing speedup vs cold power iteration: {:.0}× \
         (paper reports 22×–131×)",
        t1 / hde_time
    );

    let t = Timer::start();
    let (s2, e2) = sweeps_to_reach(&g, &random, refined_energy, 20_000);
    let t2 = t.seconds();
    println!(
        "matching the refined energy took {s2} sweeps ({:.2} s; reached {e2:.6}) \
         vs {:.1} ms for ParHDE+refine → {:.0}×",
        t2,
        (hde_time + refine_time) * 1e3,
        t2 / (hde_time + refine_time)
    );
}
