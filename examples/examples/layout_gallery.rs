//! Layout gallery: draw the same mesh with every algorithm in the family —
//! ParHDE (k-centers and random pivots), eigen-projection, PHDE, PivotMDS,
//! and the exact spectral drawing — reproducing the Figure 1 / Figure 7
//! comparison as a user-facing example.
//!
//! ```text
//! cargo run -p parhde-examples --release --example layout_gallery
//! ```

use parhde::config::{ParHdeConfig, PivotStrategy};
use parhde::layout::Layout;
use parhde::phde::PhdeConfig;
use parhde::quality::energy_objective;
use parhde::{par_hde, phde, pivot_mds};
use parhde_draw::render::{render_graph, RenderOptions};
use parhde_graph::gen::barth5_like;
use parhde_graph::CsrGraph;
use parhde_linalg::eig::power::dominant_walk_eigenvectors;

fn save(g: &CsrGraph, layout: &Layout, name: &str) {
    let canvas = render_graph(g.edges(), &layout.x, &layout.y, &RenderOptions::default());
    canvas
        .save_png(std::path::Path::new(name))
        .expect("write PNG");
    println!(
        "  {name}: energy objective {:.6}",
        energy_objective(g, layout)
    );
}

fn main() {
    let g = barth5_like();
    println!(
        "gallery for the barth5-like mesh ({} vertices, {} edges):",
        g.num_vertices(),
        g.num_edges()
    );

    let (l, _) = par_hde(&g, &ParHdeConfig::with_subspace(50));
    save(&g, &l, "gallery_parhde_kcenters.png");

    let cfg = ParHdeConfig {
        subspace: 50,
        pivots: PivotStrategy::Random,
        ..ParHdeConfig::default()
    };
    let (l, _) = par_hde(&g, &cfg);
    save(&g, &l, "gallery_parhde_random.png");

    let cfg = ParHdeConfig {
        subspace: 50,
        d_orthogonalize: false,
        ..ParHdeConfig::default()
    };
    let (l, _) = par_hde(&g, &cfg);
    save(&g, &l, "gallery_eigenprojection.png");

    let pcfg = PhdeConfig { subspace: 50, ..PhdeConfig::default() };
    let (l, _) = phde(&g, &pcfg);
    save(&g, &l, "gallery_phde.png");

    let (l, _) = pivot_mds(&g, &pcfg);
    save(&g, &l, "gallery_pivotmds.png");

    let (vecs, _) = dominant_walk_eigenvectors(&g, 2, 20_000, 1e-10, 7, None);
    let exact = Layout::new(vecs[0].clone(), vecs[1].clone());
    save(&g, &exact, "gallery_exact_spectral.png");

    println!("done — 6 drawings written to the current directory");
}
