//! Partition visualization (§4.5.4): lay out a graph with ParHDE, partition
//! it with a simple BFS-grown partitioner, and render intra-partition edges
//! in partition colors with inter-partition edges in gray — "these
//! visualizations shed insights into the inner workings of
//! partitioning/clustering algorithms".
//!
//! ```text
//! cargo run -p parhde-examples --release --example partition_viz
//! ```

use parhde::config::ParHdeConfig;
use parhde::par_hde;
use parhde::partition::{balance, coordinate_bisection, edge_cut};
use parhde_bfs::serial::bfs_serial;
use parhde_draw::render::{render_partitioned, RenderOptions};
use parhde_graph::gen::barth5_like;
use parhde_graph::CsrGraph;

/// A toy balanced partitioner: grow `k` BFS regions from spread-out seeds
/// (level-synchronous, claiming unowned vertices round-robin).
fn bfs_partition(g: &CsrGraph, k: usize) -> Vec<u32> {
    let n = g.num_vertices();
    // Seeds: farthest-first via repeated BFS (k-centers flavored).
    let mut seeds = vec![0u32];
    for _ in 1..k {
        let mut min_dist = vec![u32::MAX; n];
        for &s in &seeds {
            let r = bfs_serial(g, s);
            for (m, d) in min_dist.iter_mut().zip(&r.dist) {
                *m = (*m).min(*d);
            }
        }
        let far = (0..n as u32).max_by_key(|&v| min_dist[v as usize]).unwrap();
        seeds.push(far);
    }
    // Grow regions breadth-first from all seeds simultaneously.
    const UNOWNED: u32 = u32::MAX;
    let mut owner = vec![UNOWNED; n];
    let mut frontier: Vec<u32> = Vec::new();
    for (p, &s) in seeds.iter().enumerate() {
        owner[s as usize] = p as u32;
        frontier.push(s);
    }
    while !frontier.is_empty() {
        let mut next = Vec::new();
        for &v in &frontier {
            let p = owner[v as usize];
            for &u in g.neighbors(v) {
                if owner[u as usize] == UNOWNED {
                    owner[u as usize] = p;
                    next.push(u);
                }
            }
        }
        frontier = next;
    }
    owner
}

fn main() {
    let g = barth5_like();
    let k = 6;
    let (layout, _) = par_hde(&g, &ParHdeConfig::with_subspace(50));

    // Partitioner 1: BFS-grown regions (a cheap combinatorial baseline).
    let bfs_parts = bfs_partition(&g, k);
    // Partitioner 2: geometric — recursive coordinate bisection of the
    // ParHDE layout, the §4.5.4 ScalaPart-style use of the coordinates.
    let rcb_parts = coordinate_bisection(&layout, k);

    for (name, partition) in [("BFS-grown", &bfs_parts), ("ParHDE + RCB", &rcb_parts)] {
        println!(
            "{name}: edge cut {} of {} ({:.1}%), balance {:.2}",
            edge_cut(&g, partition),
            g.num_edges(),
            100.0 * edge_cut(&g, partition) as f64 / g.num_edges() as f64,
            balance(partition, k),
        );
    }

    for (partition, file) in [
        (&bfs_parts, "partition_viz_bfs.png"),
        (&rcb_parts, "partition_viz_rcb.png"),
    ] {
        let canvas = render_partitioned(
            g.edges(),
            &layout.x,
            &layout.y,
            partition,
            &RenderOptions::default(),
        );
        canvas.save_png(std::path::Path::new(file)).expect("write PNG");
        println!("wrote {file}");
    }
}
