//! Quickstart: lay out a graph with ParHDE and write a PNG drawing.
//!
//! ```text
//! cargo run -p parhde-examples --release --example quickstart
//! ```

use parhde::config::ParHdeConfig;
use parhde::par_hde;
use parhde::quality::layout_quality;
use parhde_draw::render::{render_graph, RenderOptions};
use parhde_graph::gen::barth5_like;

fn main() {
    // 1. Get a graph. Here: the triangulated mesh-with-holes standing in
    //    for the paper's barth5 example. Any connected undirected CsrGraph
    //    works — see parhde_graph::io for Matrix Market / edge-list input.
    let graph = barth5_like();
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // 2. Configure. The defaults follow the paper: s = 10 k-centers pivots,
    //    Modified Gram-Schmidt D-orthogonalization.
    let config = ParHdeConfig::default();

    // 3. Run ParHDE.
    let (layout, stats) = par_hde(&graph, &config);
    println!(
        "layout done in {:.1} ms  (BFS {:.1} ms, DOrtho {:.1} ms, LS {:.1} ms)",
        stats.total_seconds() * 1e3,
        stats.phases.seconds("bfs") * 1e3,
        stats.phases.seconds("dortho") * 1e3,
        stats.phases.seconds("ls") * 1e3,
    );
    println!(
        "subspace: requested {}, kept {} independent directions",
        stats.s_requested, stats.s_kept
    );

    // 4. Inspect quality: edges should be far shorter than random pairs.
    let q = layout_quality(&graph, &layout, 1000, 42);
    println!(
        "mean edge length {:.4} vs mean random-pair distance {:.4} \
         (contraction {:.2})",
        q.mean_edge_length,
        q.mean_random_pair_distance,
        q.contraction()
    );

    // 5. Draw.
    let canvas = render_graph(
        graph.edges(),
        &layout.x,
        &layout.y,
        &RenderOptions::default(),
    );
    let path = std::path::Path::new("quickstart_layout.png");
    canvas.save_png(path).expect("write PNG");
    println!("wrote {}", path.display());
}
