//! Weighted-graph layout (§3.3): replace the BFS phase with Δ-stepping
//! SSSP. The demo builds a grid whose horizontal edges are short (length 1)
//! and vertical edges long (length 5); under the default `Lengths` weight
//! semantics the drawing separates vertical neighbors far more than
//! horizontal ones.
//!
//! ```text
//! cargo run -p parhde-examples --release --example weighted_layout
//! ```

use parhde::config::ParHdeConfig;
use parhde::par_hde;
use parhde::weighted::par_hde_weighted;
use parhde_draw::render::{render_graph, RenderOptions};
use parhde_graph::builder::build_weighted_from_edges;
use parhde_graph::gen::grid2d;
use parhde_sssp::suggest_delta;

fn main() {
    let (rows, cols) = (60usize, 60usize);
    let base = grid2d(rows, cols);
    // Horizontal edges have length 1, vertical edges length 5.
    let edges: Vec<(u32, u32, f64)> = base
        .edges()
        .map(|(u, v)| {
            let horizontal = v == u + 1;
            (u, v, if horizontal { 1.0 } else { 5.0 })
        })
        .collect();
    let weighted = build_weighted_from_edges(base.num_vertices(), edges);

    let cfg = ParHdeConfig::with_subspace(20);
    let (unweighted_layout, _) = par_hde(&base, &cfg);
    let delta = suggest_delta(&weighted);
    println!("Δ-stepping bucket width Δ = {delta:.2}");
    let (weighted_layout, stats) = par_hde_weighted(&weighted, &cfg, delta);
    println!(
        "weighted layout in {:.1} ms ({} SSSP sources, kept {} directions)",
        stats.total_seconds() * 1e3,
        stats.sources.len(),
        stats.s_kept
    );

    // Compare how far apart vertical vs. horizontal neighbors land. The
    // spectral axes are each normalized, so the *global* aspect ratio stays
    // near 1; the weighting shows in the per-direction drawn edge lengths.
    let direction_ratio = |l: &parhde::Layout| {
        let (mut h, mut hn, mut v, mut vn) = (0.0, 0usize, 0.0, 0usize);
        for (a, b) in base.edges() {
            let d = l.distance(a, b);
            if b == a + 1 {
                h += d;
                hn += 1;
            } else {
                v += d;
                vn += 1;
            }
        }
        (v / vn as f64) / (h / hn as f64)
    };
    println!(
        "drawn vertical/horizontal edge-length ratio: unweighted {:.2}, \
         weighted {:.2} (lengths 5:1 ⇒ expect the weighted one ≫ 1)",
        direction_ratio(&unweighted_layout),
        direction_ratio(&weighted_layout)
    );

    for (layout, name) in [
        (&unweighted_layout, "weighted_demo_uniform.png"),
        (&weighted_layout, "weighted_demo_weighted.png"),
    ] {
        render_graph(base.edges(), &layout.x, &layout.y, &RenderOptions::default())
            .save_png(std::path::Path::new(name))
            .expect("write PNG");
        println!("wrote {name}");
    }
}
