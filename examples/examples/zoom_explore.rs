//! The "zoom" feature (§4.5.2): global layout, then interactive-style
//! zoom-ins on successively tighter neighborhoods of a chosen vertex.
//!
//! ```text
//! cargo run -p parhde-examples --release --example zoom_explore [vertex]
//! ```

use parhde::config::ParHdeConfig;
use parhde::par_hde;
use parhde::zoom::zoom;
use parhde_draw::render::{render_graph, RenderOptions};
use parhde_graph::gen::barth5_like;

fn main() {
    let g = barth5_like();
    let center: u32 = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(7000);
    println!(
        "graph: {} vertices; zoom center: {center}",
        g.num_vertices()
    );

    // Global layout first.
    let cfg = ParHdeConfig::default();
    let (global, stats) = par_hde(&g, &cfg);
    println!("global layout in {:.1} ms", stats.total_seconds() * 1e3);
    render_graph(g.edges(), &global.x, &global.y, &RenderOptions::default())
        .save_png(std::path::Path::new("zoom_global.png"))
        .expect("write PNG");
    println!("wrote zoom_global.png");

    // Zoom in: 20-, 10-, and 5-hop neighborhoods (Figure 8 uses 10 hops).
    for hops in [20usize, 10, 5] {
        let view = zoom(&g, center, hops, &cfg);
        println!(
            "{hops:>2}-hop ball: {} vertices, {} edges, re-layout {:.1} ms",
            view.graph.num_vertices(),
            view.graph.num_edges(),
            view.stats.total_seconds() * 1e3
        );
        let opts = RenderOptions { vertex_radius: 2.0, ..RenderOptions::default() };
        let name = format!("zoom_{hops}hop.png");
        render_graph(view.graph.edges(), &view.layout.x, &view.layout.y, &opts)
            .save_png(std::path::Path::new(&name))
            .expect("write PNG");
        println!("wrote {name}");
    }
}
