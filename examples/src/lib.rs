//! Host crate for the runnable examples in `examples/examples/`.
