/root/repo/target/debug/deps/bench_ortho-8cda37a17b73a70d.d: crates/bench/benches/bench_ortho.rs

/root/repo/target/debug/deps/libbench_ortho-8cda37a17b73a70d.rmeta: crates/bench/benches/bench_ortho.rs

crates/bench/benches/bench_ortho.rs:
