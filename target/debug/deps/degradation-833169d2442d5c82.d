/root/repo/target/debug/deps/degradation-833169d2442d5c82.d: crates/hde/tests/degradation.rs Cargo.toml

/root/repo/target/debug/deps/libdegradation-833169d2442d5c82.rmeta: crates/hde/tests/degradation.rs Cargo.toml

crates/hde/tests/degradation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
