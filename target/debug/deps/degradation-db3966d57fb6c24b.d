/root/repo/target/debug/deps/degradation-db3966d57fb6c24b.d: crates/hde/tests/degradation.rs

/root/repo/target/debug/deps/degradation-db3966d57fb6c24b: crates/hde/tests/degradation.rs

crates/hde/tests/degradation.rs:
