/root/repo/target/debug/deps/determinism-61491e797a71c68f.d: tests/tests/determinism.rs

/root/repo/target/debug/deps/libdeterminism-61491e797a71c68f.rmeta: tests/tests/determinism.rs

tests/tests/determinism.rs:
