/root/repo/target/debug/deps/determinism-afd590a8a1fc4249.d: tests/tests/determinism.rs

/root/repo/target/debug/deps/determinism-afd590a8a1fc4249: tests/tests/determinism.rs

tests/tests/determinism.rs:
