/root/repo/target/debug/deps/extensions-83878d460758453c.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/libextensions-83878d460758453c.rmeta: tests/tests/extensions.rs

tests/tests/extensions.rs:
