/root/repo/target/debug/deps/extensions-9c49ff18cdb285bc.d: tests/tests/extensions.rs

/root/repo/target/debug/deps/extensions-9c49ff18cdb285bc: tests/tests/extensions.rs

tests/tests/extensions.rs:
