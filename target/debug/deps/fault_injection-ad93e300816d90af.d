/root/repo/target/debug/deps/fault_injection-ad93e300816d90af.d: crates/hde/tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-ad93e300816d90af: crates/hde/tests/fault_injection.rs

crates/hde/tests/fault_injection.rs:
