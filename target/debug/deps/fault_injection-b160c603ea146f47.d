/root/repo/target/debug/deps/fault_injection-b160c603ea146f47.d: crates/hde/tests/fault_injection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_injection-b160c603ea146f47.rmeta: crates/hde/tests/fault_injection.rs Cargo.toml

crates/hde/tests/fault_injection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
