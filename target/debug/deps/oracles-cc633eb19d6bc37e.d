/root/repo/target/debug/deps/oracles-cc633eb19d6bc37e.d: tests/tests/oracles.rs

/root/repo/target/debug/deps/liboracles-cc633eb19d6bc37e.rmeta: tests/tests/oracles.rs

tests/tests/oracles.rs:
