/root/repo/target/debug/deps/oracles-d4c13ffecb908bf1.d: tests/tests/oracles.rs

/root/repo/target/debug/deps/oracles-d4c13ffecb908bf1: tests/tests/oracles.rs

tests/tests/oracles.rs:
