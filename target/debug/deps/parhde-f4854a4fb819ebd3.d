/root/repo/target/debug/deps/parhde-f4854a4fb819ebd3.d: crates/hde/src/lib.rs crates/hde/src/bfs_phase.rs crates/hde/src/config.rs crates/hde/src/coupled.rs crates/hde/src/error.rs crates/hde/src/layout.rs crates/hde/src/multilevel.rs crates/hde/src/parhde.rs crates/hde/src/partition.rs crates/hde/src/phde.rs crates/hde/src/pivot_mds.rs crates/hde/src/pivots.rs crates/hde/src/prior.rs crates/hde/src/quality.rs crates/hde/src/refine.rs crates/hde/src/stats.rs crates/hde/src/stress.rs crates/hde/src/weighted.rs crates/hde/src/zoom.rs

/root/repo/target/debug/deps/libparhde-f4854a4fb819ebd3.rmeta: crates/hde/src/lib.rs crates/hde/src/bfs_phase.rs crates/hde/src/config.rs crates/hde/src/coupled.rs crates/hde/src/error.rs crates/hde/src/layout.rs crates/hde/src/multilevel.rs crates/hde/src/parhde.rs crates/hde/src/partition.rs crates/hde/src/phde.rs crates/hde/src/pivot_mds.rs crates/hde/src/pivots.rs crates/hde/src/prior.rs crates/hde/src/quality.rs crates/hde/src/refine.rs crates/hde/src/stats.rs crates/hde/src/stress.rs crates/hde/src/weighted.rs crates/hde/src/zoom.rs

crates/hde/src/lib.rs:
crates/hde/src/bfs_phase.rs:
crates/hde/src/config.rs:
crates/hde/src/coupled.rs:
crates/hde/src/error.rs:
crates/hde/src/layout.rs:
crates/hde/src/multilevel.rs:
crates/hde/src/parhde.rs:
crates/hde/src/partition.rs:
crates/hde/src/phde.rs:
crates/hde/src/pivot_mds.rs:
crates/hde/src/pivots.rs:
crates/hde/src/prior.rs:
crates/hde/src/quality.rs:
crates/hde/src/refine.rs:
crates/hde/src/stats.rs:
crates/hde/src/stress.rs:
crates/hde/src/weighted.rs:
crates/hde/src/zoom.rs:
