/root/repo/target/debug/deps/parhde_bench-288069ea645e9a53.d: crates/bench/src/lib.rs crates/bench/src/collection.rs

/root/repo/target/debug/deps/libparhde_bench-288069ea645e9a53.rlib: crates/bench/src/lib.rs crates/bench/src/collection.rs

/root/repo/target/debug/deps/libparhde_bench-288069ea645e9a53.rmeta: crates/bench/src/lib.rs crates/bench/src/collection.rs

crates/bench/src/lib.rs:
crates/bench/src/collection.rs:
