/root/repo/target/debug/deps/parhde_bench-5d58f0b742db6aee.d: crates/bench/src/lib.rs crates/bench/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_bench-5d58f0b742db6aee.rmeta: crates/bench/src/lib.rs crates/bench/src/collection.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
