/root/repo/target/debug/deps/parhde_bench-8070334ce3c1de84.d: crates/bench/src/lib.rs crates/bench/src/collection.rs

/root/repo/target/debug/deps/parhde_bench-8070334ce3c1de84: crates/bench/src/lib.rs crates/bench/src/collection.rs

crates/bench/src/lib.rs:
crates/bench/src/collection.rs:
