/root/repo/target/debug/deps/parhde_bench-d38ba5de40437b74.d: crates/bench/src/lib.rs crates/bench/src/collection.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_bench-d38ba5de40437b74.rmeta: crates/bench/src/lib.rs crates/bench/src/collection.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/collection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
