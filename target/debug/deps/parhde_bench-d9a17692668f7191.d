/root/repo/target/debug/deps/parhde_bench-d9a17692668f7191.d: crates/bench/src/lib.rs crates/bench/src/collection.rs

/root/repo/target/debug/deps/libparhde_bench-d9a17692668f7191.rmeta: crates/bench/src/lib.rs crates/bench/src/collection.rs

crates/bench/src/lib.rs:
crates/bench/src/collection.rs:
