/root/repo/target/debug/deps/parhde_bfs-2a0a70fa06ca53be.d: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs

/root/repo/target/debug/deps/parhde_bfs-2a0a70fa06ca53be: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs

crates/bfs/src/lib.rs:
crates/bfs/src/bottom_up.rs:
crates/bfs/src/direction_opt.rs:
crates/bfs/src/frontier.rs:
crates/bfs/src/multi.rs:
crates/bfs/src/parents.rs:
crates/bfs/src/serial.rs:
crates/bfs/src/top_down.rs:
