/root/repo/target/debug/deps/parhde_bfs-7d1824f33feaeef9.d: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_bfs-7d1824f33feaeef9.rmeta: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs Cargo.toml

crates/bfs/src/lib.rs:
crates/bfs/src/bottom_up.rs:
crates/bfs/src/direction_opt.rs:
crates/bfs/src/frontier.rs:
crates/bfs/src/multi.rs:
crates/bfs/src/parents.rs:
crates/bfs/src/serial.rs:
crates/bfs/src/top_down.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
