/root/repo/target/debug/deps/parhde_bfs-bb00f85c75ffafa3.d: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs

/root/repo/target/debug/deps/libparhde_bfs-bb00f85c75ffafa3.rmeta: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs

crates/bfs/src/lib.rs:
crates/bfs/src/bottom_up.rs:
crates/bfs/src/direction_opt.rs:
crates/bfs/src/frontier.rs:
crates/bfs/src/multi.rs:
crates/bfs/src/parents.rs:
crates/bfs/src/serial.rs:
crates/bfs/src/top_down.rs:
