/root/repo/target/debug/deps/parhde_draw-2a9be251e6c188ec.d: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_draw-2a9be251e6c188ec.rmeta: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs Cargo.toml

crates/draw/src/lib.rs:
crates/draw/src/bits.rs:
crates/draw/src/checksums.rs:
crates/draw/src/color.rs:
crates/draw/src/deflate.rs:
crates/draw/src/png.rs:
crates/draw/src/raster.rs:
crates/draw/src/render.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
