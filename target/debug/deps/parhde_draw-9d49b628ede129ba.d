/root/repo/target/debug/deps/parhde_draw-9d49b628ede129ba.d: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs

/root/repo/target/debug/deps/parhde_draw-9d49b628ede129ba: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs

crates/draw/src/lib.rs:
crates/draw/src/bits.rs:
crates/draw/src/checksums.rs:
crates/draw/src/color.rs:
crates/draw/src/deflate.rs:
crates/draw/src/png.rs:
crates/draw/src/raster.rs:
crates/draw/src/render.rs:
