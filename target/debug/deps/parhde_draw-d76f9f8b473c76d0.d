/root/repo/target/debug/deps/parhde_draw-d76f9f8b473c76d0.d: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs

/root/repo/target/debug/deps/libparhde_draw-d76f9f8b473c76d0.rlib: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs

/root/repo/target/debug/deps/libparhde_draw-d76f9f8b473c76d0.rmeta: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs

crates/draw/src/lib.rs:
crates/draw/src/bits.rs:
crates/draw/src/checksums.rs:
crates/draw/src/color.rs:
crates/draw/src/deflate.rs:
crates/draw/src/png.rs:
crates/draw/src/raster.rs:
crates/draw/src/render.rs:
