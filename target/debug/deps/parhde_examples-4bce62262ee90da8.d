/root/repo/target/debug/deps/parhde_examples-4bce62262ee90da8.d: examples/src/lib.rs

/root/repo/target/debug/deps/libparhde_examples-4bce62262ee90da8.rmeta: examples/src/lib.rs

examples/src/lib.rs:
