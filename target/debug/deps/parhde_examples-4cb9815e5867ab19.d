/root/repo/target/debug/deps/parhde_examples-4cb9815e5867ab19.d: examples/src/lib.rs

/root/repo/target/debug/deps/libparhde_examples-4cb9815e5867ab19.rlib: examples/src/lib.rs

/root/repo/target/debug/deps/libparhde_examples-4cb9815e5867ab19.rmeta: examples/src/lib.rs

examples/src/lib.rs:
