/root/repo/target/debug/deps/parhde_examples-60298d118ef739be.d: examples/src/lib.rs

/root/repo/target/debug/deps/parhde_examples-60298d118ef739be: examples/src/lib.rs

examples/src/lib.rs:
