/root/repo/target/debug/deps/parhde_examples-d7d80548070313c1.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_examples-d7d80548070313c1.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
