/root/repo/target/debug/deps/parhde_examples-dd7c280d883da33f.d: examples/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_examples-dd7c280d883da33f.rmeta: examples/src/lib.rs Cargo.toml

examples/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
