/root/repo/target/debug/deps/parhde_graph-a5a495006e7daf5d.d: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/coarsen.rs crates/graph/src/csr.rs crates/graph/src/decompose.rs crates/graph/src/gaps.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/geometric.rs crates/graph/src/gen/kron.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/poison.rs crates/graph/src/gen/pref_attach.rs crates/graph/src/gen/simple.rs crates/graph/src/gen/urand.rs crates/graph/src/gen/web.rs crates/graph/src/io/mod.rs crates/graph/src/io/binary.rs crates/graph/src/io/edge_list.rs crates/graph/src/io/error.rs crates/graph/src/io/matrix_market.rs crates/graph/src/order.rs crates/graph/src/prep.rs crates/graph/src/report.rs

/root/repo/target/debug/deps/libparhde_graph-a5a495006e7daf5d.rlib: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/coarsen.rs crates/graph/src/csr.rs crates/graph/src/decompose.rs crates/graph/src/gaps.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/geometric.rs crates/graph/src/gen/kron.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/poison.rs crates/graph/src/gen/pref_attach.rs crates/graph/src/gen/simple.rs crates/graph/src/gen/urand.rs crates/graph/src/gen/web.rs crates/graph/src/io/mod.rs crates/graph/src/io/binary.rs crates/graph/src/io/edge_list.rs crates/graph/src/io/error.rs crates/graph/src/io/matrix_market.rs crates/graph/src/order.rs crates/graph/src/prep.rs crates/graph/src/report.rs

/root/repo/target/debug/deps/libparhde_graph-a5a495006e7daf5d.rmeta: crates/graph/src/lib.rs crates/graph/src/builder.rs crates/graph/src/coarsen.rs crates/graph/src/csr.rs crates/graph/src/decompose.rs crates/graph/src/gaps.rs crates/graph/src/gen/mod.rs crates/graph/src/gen/geometric.rs crates/graph/src/gen/kron.rs crates/graph/src/gen/mesh.rs crates/graph/src/gen/poison.rs crates/graph/src/gen/pref_attach.rs crates/graph/src/gen/simple.rs crates/graph/src/gen/urand.rs crates/graph/src/gen/web.rs crates/graph/src/io/mod.rs crates/graph/src/io/binary.rs crates/graph/src/io/edge_list.rs crates/graph/src/io/error.rs crates/graph/src/io/matrix_market.rs crates/graph/src/order.rs crates/graph/src/prep.rs crates/graph/src/report.rs

crates/graph/src/lib.rs:
crates/graph/src/builder.rs:
crates/graph/src/coarsen.rs:
crates/graph/src/csr.rs:
crates/graph/src/decompose.rs:
crates/graph/src/gaps.rs:
crates/graph/src/gen/mod.rs:
crates/graph/src/gen/geometric.rs:
crates/graph/src/gen/kron.rs:
crates/graph/src/gen/mesh.rs:
crates/graph/src/gen/poison.rs:
crates/graph/src/gen/pref_attach.rs:
crates/graph/src/gen/simple.rs:
crates/graph/src/gen/urand.rs:
crates/graph/src/gen/web.rs:
crates/graph/src/io/mod.rs:
crates/graph/src/io/binary.rs:
crates/graph/src/io/edge_list.rs:
crates/graph/src/io/error.rs:
crates/graph/src/io/matrix_market.rs:
crates/graph/src/order.rs:
crates/graph/src/prep.rs:
crates/graph/src/report.rs:
