/root/repo/target/debug/deps/parhde_integration_tests-04080baeda236e79.d: tests/src/lib.rs

/root/repo/target/debug/deps/libparhde_integration_tests-04080baeda236e79.rmeta: tests/src/lib.rs

tests/src/lib.rs:
