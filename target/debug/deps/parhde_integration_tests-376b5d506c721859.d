/root/repo/target/debug/deps/parhde_integration_tests-376b5d506c721859.d: tests/src/lib.rs

/root/repo/target/debug/deps/libparhde_integration_tests-376b5d506c721859.rlib: tests/src/lib.rs

/root/repo/target/debug/deps/libparhde_integration_tests-376b5d506c721859.rmeta: tests/src/lib.rs

tests/src/lib.rs:
