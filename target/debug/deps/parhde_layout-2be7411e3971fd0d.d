/root/repo/target/debug/deps/parhde_layout-2be7411e3971fd0d.d: crates/bench/src/bin/parhde-layout.rs

/root/repo/target/debug/deps/parhde_layout-2be7411e3971fd0d: crates/bench/src/bin/parhde-layout.rs

crates/bench/src/bin/parhde-layout.rs:
