/root/repo/target/debug/deps/parhde_layout-70b054f599c7a61f.d: crates/bench/src/bin/parhde-layout.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_layout-70b054f599c7a61f.rmeta: crates/bench/src/bin/parhde-layout.rs Cargo.toml

crates/bench/src/bin/parhde-layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
