/root/repo/target/debug/deps/parhde_layout-9bbe46d633cbdcf7.d: crates/bench/src/bin/parhde-layout.rs

/root/repo/target/debug/deps/libparhde_layout-9bbe46d633cbdcf7.rmeta: crates/bench/src/bin/parhde-layout.rs

crates/bench/src/bin/parhde-layout.rs:
