/root/repo/target/debug/deps/parhde_layout-dc7ff7103311bad2.d: crates/bench/src/bin/parhde-layout.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_layout-dc7ff7103311bad2.rmeta: crates/bench/src/bin/parhde-layout.rs Cargo.toml

crates/bench/src/bin/parhde-layout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
