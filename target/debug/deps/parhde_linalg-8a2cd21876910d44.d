/root/repo/target/debug/deps/parhde_linalg-8a2cd21876910d44.d: crates/linalg/src/lib.rs crates/linalg/src/blas1.rs crates/linalg/src/center.rs crates/linalg/src/dense.rs crates/linalg/src/eig/mod.rs crates/linalg/src/eig/jacobi.rs crates/linalg/src/eig/power.rs crates/linalg/src/error.rs crates/linalg/src/gemm.rs crates/linalg/src/ortho.rs crates/linalg/src/spmm.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_linalg-8a2cd21876910d44.rmeta: crates/linalg/src/lib.rs crates/linalg/src/blas1.rs crates/linalg/src/center.rs crates/linalg/src/dense.rs crates/linalg/src/eig/mod.rs crates/linalg/src/eig/jacobi.rs crates/linalg/src/eig/power.rs crates/linalg/src/error.rs crates/linalg/src/gemm.rs crates/linalg/src/ortho.rs crates/linalg/src/spmm.rs Cargo.toml

crates/linalg/src/lib.rs:
crates/linalg/src/blas1.rs:
crates/linalg/src/center.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/eig/mod.rs:
crates/linalg/src/eig/jacobi.rs:
crates/linalg/src/eig/power.rs:
crates/linalg/src/error.rs:
crates/linalg/src/gemm.rs:
crates/linalg/src/ortho.rs:
crates/linalg/src/spmm.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
