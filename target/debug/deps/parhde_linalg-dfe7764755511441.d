/root/repo/target/debug/deps/parhde_linalg-dfe7764755511441.d: crates/linalg/src/lib.rs crates/linalg/src/blas1.rs crates/linalg/src/center.rs crates/linalg/src/dense.rs crates/linalg/src/eig/mod.rs crates/linalg/src/eig/jacobi.rs crates/linalg/src/eig/power.rs crates/linalg/src/error.rs crates/linalg/src/gemm.rs crates/linalg/src/ortho.rs crates/linalg/src/spmm.rs

/root/repo/target/debug/deps/libparhde_linalg-dfe7764755511441.rmeta: crates/linalg/src/lib.rs crates/linalg/src/blas1.rs crates/linalg/src/center.rs crates/linalg/src/dense.rs crates/linalg/src/eig/mod.rs crates/linalg/src/eig/jacobi.rs crates/linalg/src/eig/power.rs crates/linalg/src/error.rs crates/linalg/src/gemm.rs crates/linalg/src/ortho.rs crates/linalg/src/spmm.rs

crates/linalg/src/lib.rs:
crates/linalg/src/blas1.rs:
crates/linalg/src/center.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/eig/mod.rs:
crates/linalg/src/eig/jacobi.rs:
crates/linalg/src/eig/power.rs:
crates/linalg/src/error.rs:
crates/linalg/src/gemm.rs:
crates/linalg/src/ortho.rs:
crates/linalg/src/spmm.rs:
