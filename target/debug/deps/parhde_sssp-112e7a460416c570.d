/root/repo/target/debug/deps/parhde_sssp-112e7a460416c570.d: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

/root/repo/target/debug/deps/parhde_sssp-112e7a460416c570: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

crates/sssp/src/lib.rs:
crates/sssp/src/delta_stepping.rs:
crates/sssp/src/dijkstra.rs:
