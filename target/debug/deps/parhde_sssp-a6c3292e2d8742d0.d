/root/repo/target/debug/deps/parhde_sssp-a6c3292e2d8742d0.d: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

/root/repo/target/debug/deps/libparhde_sssp-a6c3292e2d8742d0.rlib: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

/root/repo/target/debug/deps/libparhde_sssp-a6c3292e2d8742d0.rmeta: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

crates/sssp/src/lib.rs:
crates/sssp/src/delta_stepping.rs:
crates/sssp/src/dijkstra.rs:
