/root/repo/target/debug/deps/parhde_sssp-d01bcf9b9ce0d15c.d: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_sssp-d01bcf9b9ce0d15c.rmeta: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs Cargo.toml

crates/sssp/src/lib.rs:
crates/sssp/src/delta_stepping.rs:
crates/sssp/src/dijkstra.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
