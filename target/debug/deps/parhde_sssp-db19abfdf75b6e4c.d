/root/repo/target/debug/deps/parhde_sssp-db19abfdf75b6e4c.d: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

/root/repo/target/debug/deps/libparhde_sssp-db19abfdf75b6e4c.rmeta: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

crates/sssp/src/lib.rs:
crates/sssp/src/delta_stepping.rs:
crates/sssp/src/dijkstra.rs:
