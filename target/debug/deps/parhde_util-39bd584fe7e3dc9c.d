/root/repo/target/debug/deps/parhde_util-39bd584fe7e3dc9c.d: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

/root/repo/target/debug/deps/libparhde_util-39bd584fe7e3dc9c.rlib: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

/root/repo/target/debug/deps/libparhde_util-39bd584fe7e3dc9c.rmeta: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

crates/util/src/lib.rs:
crates/util/src/fmt.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/threads.rs:
crates/util/src/timing.rs:
