/root/repo/target/debug/deps/parhde_util-714e33aefb74e27d.d: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

/root/repo/target/debug/deps/parhde_util-714e33aefb74e27d: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

crates/util/src/lib.rs:
crates/util/src/fmt.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/threads.rs:
crates/util/src/timing.rs:
