/root/repo/target/debug/deps/parhde_util-7347dd92e150ff69.d: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_util-7347dd92e150ff69.rmeta: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/fmt.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/threads.rs:
crates/util/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
