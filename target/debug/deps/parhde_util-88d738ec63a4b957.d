/root/repo/target/debug/deps/parhde_util-88d738ec63a4b957.d: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libparhde_util-88d738ec63a4b957.rmeta: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs Cargo.toml

crates/util/src/lib.rs:
crates/util/src/fmt.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/threads.rs:
crates/util/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
