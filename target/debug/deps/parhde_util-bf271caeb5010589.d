/root/repo/target/debug/deps/parhde_util-bf271caeb5010589.d: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

/root/repo/target/debug/deps/libparhde_util-bf271caeb5010589.rmeta: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

crates/util/src/lib.rs:
crates/util/src/fmt.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/threads.rs:
crates/util/src/timing.rs:
