/root/repo/target/debug/deps/pipeline-bc458c1f3e48e9d1.d: tests/tests/pipeline.rs

/root/repo/target/debug/deps/pipeline-bc458c1f3e48e9d1: tests/tests/pipeline.rs

tests/tests/pipeline.rs:
