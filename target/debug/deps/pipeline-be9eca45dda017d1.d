/root/repo/target/debug/deps/pipeline-be9eca45dda017d1.d: tests/tests/pipeline.rs

/root/repo/target/debug/deps/libpipeline-be9eca45dda017d1.rmeta: tests/tests/pipeline.rs

tests/tests/pipeline.rs:
