/root/repo/target/debug/deps/props-92aaa410cb0a13f6.d: tests/tests/props.rs

/root/repo/target/debug/deps/props-92aaa410cb0a13f6: tests/tests/props.rs

tests/tests/props.rs:
