/root/repo/target/debug/deps/rayon-aa5532bcac3baac4.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-aa5532bcac3baac4.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-aa5532bcac3baac4.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
