/root/repo/target/debug/deps/rayon-df516771d81012c0.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-df516771d81012c0.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
