/root/repo/target/debug/deps/reproduce-106b72558d0b3bf9.d: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs

/root/repo/target/debug/deps/libreproduce-106b72558d0b3bf9.rmeta: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs

crates/bench/src/bin/reproduce/main.rs:
crates/bench/src/bin/reproduce/figures.rs:
crates/bench/src/bin/reproduce/report.rs:
crates/bench/src/bin/reproduce/tables.rs:
