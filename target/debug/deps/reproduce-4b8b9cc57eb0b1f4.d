/root/repo/target/debug/deps/reproduce-4b8b9cc57eb0b1f4.d: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-4b8b9cc57eb0b1f4.rmeta: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs Cargo.toml

crates/bench/src/bin/reproduce/main.rs:
crates/bench/src/bin/reproduce/figures.rs:
crates/bench/src/bin/reproduce/report.rs:
crates/bench/src/bin/reproduce/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
