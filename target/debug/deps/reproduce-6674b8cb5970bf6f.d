/root/repo/target/debug/deps/reproduce-6674b8cb5970bf6f.d: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs

/root/repo/target/debug/deps/reproduce-6674b8cb5970bf6f: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs

crates/bench/src/bin/reproduce/main.rs:
crates/bench/src/bin/reproduce/figures.rs:
crates/bench/src/bin/reproduce/report.rs:
crates/bench/src/bin/reproduce/tables.rs:
