/root/repo/target/debug/deps/reproduce-a94ae1adbb3af717.d: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs Cargo.toml

/root/repo/target/debug/deps/libreproduce-a94ae1adbb3af717.rmeta: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs Cargo.toml

crates/bench/src/bin/reproduce/main.rs:
crates/bench/src/bin/reproduce/figures.rs:
crates/bench/src/bin/reproduce/report.rs:
crates/bench/src/bin/reproduce/tables.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
