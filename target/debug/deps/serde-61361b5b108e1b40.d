/root/repo/target/debug/deps/serde-61361b5b108e1b40.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-61361b5b108e1b40.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-61361b5b108e1b40.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
