/root/repo/target/debug/deps/serde-f65ca620d7a8c3ae.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-f65ca620d7a8c3ae.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
