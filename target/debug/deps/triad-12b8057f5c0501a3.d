/root/repo/target/debug/deps/triad-12b8057f5c0501a3.d: crates/bench/src/bin/triad.rs Cargo.toml

/root/repo/target/debug/deps/libtriad-12b8057f5c0501a3.rmeta: crates/bench/src/bin/triad.rs Cargo.toml

crates/bench/src/bin/triad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
