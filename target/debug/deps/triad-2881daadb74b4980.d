/root/repo/target/debug/deps/triad-2881daadb74b4980.d: crates/bench/src/bin/triad.rs

/root/repo/target/debug/deps/libtriad-2881daadb74b4980.rmeta: crates/bench/src/bin/triad.rs

crates/bench/src/bin/triad.rs:
