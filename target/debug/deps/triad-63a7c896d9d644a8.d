/root/repo/target/debug/deps/triad-63a7c896d9d644a8.d: crates/bench/src/bin/triad.rs

/root/repo/target/debug/deps/triad-63a7c896d9d644a8: crates/bench/src/bin/triad.rs

crates/bench/src/bin/triad.rs:
