/root/repo/target/debug/deps/triad-7f58a02505e4bb91.d: crates/bench/src/bin/triad.rs Cargo.toml

/root/repo/target/debug/deps/libtriad-7f58a02505e4bb91.rmeta: crates/bench/src/bin/triad.rs Cargo.toml

crates/bench/src/bin/triad.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
