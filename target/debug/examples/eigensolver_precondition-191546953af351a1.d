/root/repo/target/debug/examples/eigensolver_precondition-191546953af351a1.d: examples/examples/eigensolver_precondition.rs

/root/repo/target/debug/examples/libeigensolver_precondition-191546953af351a1.rmeta: examples/examples/eigensolver_precondition.rs

examples/examples/eigensolver_precondition.rs:
