/root/repo/target/debug/examples/eigensolver_precondition-30b7b4873cdd23ab.d: examples/examples/eigensolver_precondition.rs

/root/repo/target/debug/examples/eigensolver_precondition-30b7b4873cdd23ab: examples/examples/eigensolver_precondition.rs

examples/examples/eigensolver_precondition.rs:
