/root/repo/target/debug/examples/layout_gallery-5b00e183eb3063dd.d: examples/examples/layout_gallery.rs

/root/repo/target/debug/examples/liblayout_gallery-5b00e183eb3063dd.rmeta: examples/examples/layout_gallery.rs

examples/examples/layout_gallery.rs:
