/root/repo/target/debug/examples/layout_gallery-791a85a1ad1a3732.d: examples/examples/layout_gallery.rs

/root/repo/target/debug/examples/layout_gallery-791a85a1ad1a3732: examples/examples/layout_gallery.rs

examples/examples/layout_gallery.rs:
