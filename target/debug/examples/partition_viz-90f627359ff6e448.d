/root/repo/target/debug/examples/partition_viz-90f627359ff6e448.d: examples/examples/partition_viz.rs

/root/repo/target/debug/examples/libpartition_viz-90f627359ff6e448.rmeta: examples/examples/partition_viz.rs

examples/examples/partition_viz.rs:
