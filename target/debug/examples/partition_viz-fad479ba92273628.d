/root/repo/target/debug/examples/partition_viz-fad479ba92273628.d: examples/examples/partition_viz.rs

/root/repo/target/debug/examples/partition_viz-fad479ba92273628: examples/examples/partition_viz.rs

examples/examples/partition_viz.rs:
