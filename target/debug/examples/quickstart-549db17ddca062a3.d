/root/repo/target/debug/examples/quickstart-549db17ddca062a3.d: examples/examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-549db17ddca062a3: examples/examples/quickstart.rs

examples/examples/quickstart.rs:
