/root/repo/target/debug/examples/quickstart-faa0e9f11eea19c2.d: examples/examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-faa0e9f11eea19c2.rmeta: examples/examples/quickstart.rs

examples/examples/quickstart.rs:
