/root/repo/target/debug/examples/weighted_layout-0a1f73676c90f117.d: examples/examples/weighted_layout.rs

/root/repo/target/debug/examples/libweighted_layout-0a1f73676c90f117.rmeta: examples/examples/weighted_layout.rs

examples/examples/weighted_layout.rs:
