/root/repo/target/debug/examples/weighted_layout-e8fc8afed6e8a9f3.d: examples/examples/weighted_layout.rs

/root/repo/target/debug/examples/weighted_layout-e8fc8afed6e8a9f3: examples/examples/weighted_layout.rs

examples/examples/weighted_layout.rs:
