/root/repo/target/debug/examples/zoom_explore-cf704b2d385117c2.d: examples/examples/zoom_explore.rs

/root/repo/target/debug/examples/zoom_explore-cf704b2d385117c2: examples/examples/zoom_explore.rs

examples/examples/zoom_explore.rs:
