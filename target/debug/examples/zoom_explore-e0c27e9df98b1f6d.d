/root/repo/target/debug/examples/zoom_explore-e0c27e9df98b1f6d.d: examples/examples/zoom_explore.rs

/root/repo/target/debug/examples/libzoom_explore-e0c27e9df98b1f6d.rmeta: examples/examples/zoom_explore.rs

examples/examples/zoom_explore.rs:
