/root/repo/target/release/deps/bytes-0724838a9044b9d4.d: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0724838a9044b9d4.rlib: /tmp/stubs/bytes/src/lib.rs

/root/repo/target/release/deps/libbytes-0724838a9044b9d4.rmeta: /tmp/stubs/bytes/src/lib.rs

/tmp/stubs/bytes/src/lib.rs:
