/root/repo/target/release/deps/crossbeam-da168775cb54e413.d: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-da168775cb54e413.rlib: /tmp/stubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-da168775cb54e413.rmeta: /tmp/stubs/crossbeam/src/lib.rs

/tmp/stubs/crossbeam/src/lib.rs:
