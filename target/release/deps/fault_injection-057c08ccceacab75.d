/root/repo/target/release/deps/fault_injection-057c08ccceacab75.d: crates/hde/tests/fault_injection.rs

/root/repo/target/release/deps/fault_injection-057c08ccceacab75: crates/hde/tests/fault_injection.rs

crates/hde/tests/fault_injection.rs:
