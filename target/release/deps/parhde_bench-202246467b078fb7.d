/root/repo/target/release/deps/parhde_bench-202246467b078fb7.d: crates/bench/src/lib.rs crates/bench/src/collection.rs

/root/repo/target/release/deps/libparhde_bench-202246467b078fb7.rlib: crates/bench/src/lib.rs crates/bench/src/collection.rs

/root/repo/target/release/deps/libparhde_bench-202246467b078fb7.rmeta: crates/bench/src/lib.rs crates/bench/src/collection.rs

crates/bench/src/lib.rs:
crates/bench/src/collection.rs:
