/root/repo/target/release/deps/parhde_bfs-994a32ccb9900f67.d: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs

/root/repo/target/release/deps/libparhde_bfs-994a32ccb9900f67.rlib: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs

/root/repo/target/release/deps/libparhde_bfs-994a32ccb9900f67.rmeta: crates/bfs/src/lib.rs crates/bfs/src/bottom_up.rs crates/bfs/src/direction_opt.rs crates/bfs/src/frontier.rs crates/bfs/src/multi.rs crates/bfs/src/parents.rs crates/bfs/src/serial.rs crates/bfs/src/top_down.rs

crates/bfs/src/lib.rs:
crates/bfs/src/bottom_up.rs:
crates/bfs/src/direction_opt.rs:
crates/bfs/src/frontier.rs:
crates/bfs/src/multi.rs:
crates/bfs/src/parents.rs:
crates/bfs/src/serial.rs:
crates/bfs/src/top_down.rs:
