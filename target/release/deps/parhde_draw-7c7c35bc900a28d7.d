/root/repo/target/release/deps/parhde_draw-7c7c35bc900a28d7.d: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs

/root/repo/target/release/deps/libparhde_draw-7c7c35bc900a28d7.rlib: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs

/root/repo/target/release/deps/libparhde_draw-7c7c35bc900a28d7.rmeta: crates/draw/src/lib.rs crates/draw/src/bits.rs crates/draw/src/checksums.rs crates/draw/src/color.rs crates/draw/src/deflate.rs crates/draw/src/png.rs crates/draw/src/raster.rs crates/draw/src/render.rs

crates/draw/src/lib.rs:
crates/draw/src/bits.rs:
crates/draw/src/checksums.rs:
crates/draw/src/color.rs:
crates/draw/src/deflate.rs:
crates/draw/src/png.rs:
crates/draw/src/raster.rs:
crates/draw/src/render.rs:
