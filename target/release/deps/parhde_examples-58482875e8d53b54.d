/root/repo/target/release/deps/parhde_examples-58482875e8d53b54.d: examples/src/lib.rs

/root/repo/target/release/deps/libparhde_examples-58482875e8d53b54.rlib: examples/src/lib.rs

/root/repo/target/release/deps/libparhde_examples-58482875e8d53b54.rmeta: examples/src/lib.rs

examples/src/lib.rs:
