/root/repo/target/release/deps/parhde_integration_tests-2bd24f6fcabc69ba.d: tests/src/lib.rs

/root/repo/target/release/deps/libparhde_integration_tests-2bd24f6fcabc69ba.rlib: tests/src/lib.rs

/root/repo/target/release/deps/libparhde_integration_tests-2bd24f6fcabc69ba.rmeta: tests/src/lib.rs

tests/src/lib.rs:
