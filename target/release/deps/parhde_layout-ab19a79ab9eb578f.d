/root/repo/target/release/deps/parhde_layout-ab19a79ab9eb578f.d: crates/bench/src/bin/parhde-layout.rs

/root/repo/target/release/deps/parhde_layout-ab19a79ab9eb578f: crates/bench/src/bin/parhde-layout.rs

crates/bench/src/bin/parhde-layout.rs:
