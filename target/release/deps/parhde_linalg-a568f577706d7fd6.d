/root/repo/target/release/deps/parhde_linalg-a568f577706d7fd6.d: crates/linalg/src/lib.rs crates/linalg/src/blas1.rs crates/linalg/src/center.rs crates/linalg/src/dense.rs crates/linalg/src/eig/mod.rs crates/linalg/src/eig/jacobi.rs crates/linalg/src/eig/power.rs crates/linalg/src/error.rs crates/linalg/src/gemm.rs crates/linalg/src/ortho.rs crates/linalg/src/spmm.rs

/root/repo/target/release/deps/libparhde_linalg-a568f577706d7fd6.rlib: crates/linalg/src/lib.rs crates/linalg/src/blas1.rs crates/linalg/src/center.rs crates/linalg/src/dense.rs crates/linalg/src/eig/mod.rs crates/linalg/src/eig/jacobi.rs crates/linalg/src/eig/power.rs crates/linalg/src/error.rs crates/linalg/src/gemm.rs crates/linalg/src/ortho.rs crates/linalg/src/spmm.rs

/root/repo/target/release/deps/libparhde_linalg-a568f577706d7fd6.rmeta: crates/linalg/src/lib.rs crates/linalg/src/blas1.rs crates/linalg/src/center.rs crates/linalg/src/dense.rs crates/linalg/src/eig/mod.rs crates/linalg/src/eig/jacobi.rs crates/linalg/src/eig/power.rs crates/linalg/src/error.rs crates/linalg/src/gemm.rs crates/linalg/src/ortho.rs crates/linalg/src/spmm.rs

crates/linalg/src/lib.rs:
crates/linalg/src/blas1.rs:
crates/linalg/src/center.rs:
crates/linalg/src/dense.rs:
crates/linalg/src/eig/mod.rs:
crates/linalg/src/eig/jacobi.rs:
crates/linalg/src/eig/power.rs:
crates/linalg/src/error.rs:
crates/linalg/src/gemm.rs:
crates/linalg/src/ortho.rs:
crates/linalg/src/spmm.rs:
