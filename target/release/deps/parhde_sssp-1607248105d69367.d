/root/repo/target/release/deps/parhde_sssp-1607248105d69367.d: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

/root/repo/target/release/deps/libparhde_sssp-1607248105d69367.rlib: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

/root/repo/target/release/deps/libparhde_sssp-1607248105d69367.rmeta: crates/sssp/src/lib.rs crates/sssp/src/delta_stepping.rs crates/sssp/src/dijkstra.rs

crates/sssp/src/lib.rs:
crates/sssp/src/delta_stepping.rs:
crates/sssp/src/dijkstra.rs:
