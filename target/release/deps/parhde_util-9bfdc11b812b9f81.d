/root/repo/target/release/deps/parhde_util-9bfdc11b812b9f81.d: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

/root/repo/target/release/deps/libparhde_util-9bfdc11b812b9f81.rlib: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

/root/repo/target/release/deps/libparhde_util-9bfdc11b812b9f81.rmeta: crates/util/src/lib.rs crates/util/src/fmt.rs crates/util/src/rng.rs crates/util/src/stats.rs crates/util/src/threads.rs crates/util/src/timing.rs

crates/util/src/lib.rs:
crates/util/src/fmt.rs:
crates/util/src/rng.rs:
crates/util/src/stats.rs:
crates/util/src/threads.rs:
crates/util/src/timing.rs:
