/root/repo/target/release/deps/parking_lot-d72e3313ed90a0d3.d: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d72e3313ed90a0d3.rlib: /tmp/stubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-d72e3313ed90a0d3.rmeta: /tmp/stubs/parking_lot/src/lib.rs

/tmp/stubs/parking_lot/src/lib.rs:
