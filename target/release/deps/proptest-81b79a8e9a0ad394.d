/root/repo/target/release/deps/proptest-81b79a8e9a0ad394.d: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-81b79a8e9a0ad394.rlib: /tmp/stubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-81b79a8e9a0ad394.rmeta: /tmp/stubs/proptest/src/lib.rs

/tmp/stubs/proptest/src/lib.rs:
