/root/repo/target/release/deps/rayon-f71f045026c8c60b.d: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-f71f045026c8c60b.rlib: /tmp/stubs/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-f71f045026c8c60b.rmeta: /tmp/stubs/rayon/src/lib.rs

/tmp/stubs/rayon/src/lib.rs:
