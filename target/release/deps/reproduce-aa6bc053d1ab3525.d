/root/repo/target/release/deps/reproduce-aa6bc053d1ab3525.d: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs

/root/repo/target/release/deps/reproduce-aa6bc053d1ab3525: crates/bench/src/bin/reproduce/main.rs crates/bench/src/bin/reproduce/figures.rs crates/bench/src/bin/reproduce/report.rs crates/bench/src/bin/reproduce/tables.rs

crates/bench/src/bin/reproduce/main.rs:
crates/bench/src/bin/reproduce/figures.rs:
crates/bench/src/bin/reproduce/report.rs:
crates/bench/src/bin/reproduce/tables.rs:
