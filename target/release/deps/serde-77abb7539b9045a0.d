/root/repo/target/release/deps/serde-77abb7539b9045a0.d: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-77abb7539b9045a0.rlib: /tmp/stubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-77abb7539b9045a0.rmeta: /tmp/stubs/serde/src/lib.rs

/tmp/stubs/serde/src/lib.rs:
