/root/repo/target/release/deps/triad-6702e08a5e09e6a4.d: crates/bench/src/bin/triad.rs

/root/repo/target/release/deps/triad-6702e08a5e09e6a4: crates/bench/src/bin/triad.rs

crates/bench/src/bin/triad.rs:
