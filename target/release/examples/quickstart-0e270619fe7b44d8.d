/root/repo/target/release/examples/quickstart-0e270619fe7b44d8.d: examples/examples/quickstart.rs

/root/repo/target/release/examples/quickstart-0e270619fe7b44d8: examples/examples/quickstart.rs

examples/examples/quickstart.rs:
