//! Scalar ↔ SIMD backend equivalence (DESIGN.md §15).
//!
//! The backend contract has two tiers. *Exact-class* kernels — the
//! register-tile microkernel, the SpMM/fused row ops, axpy and scale —
//! perform one multiply and one add per element in the scalar chain's
//! order, so SIMD lanes are just independent scalar chains and the
//! results must match **bitwise**, including NaN/denormal/±0 poison.
//! *Tolerance-class* kernels — the dot family — reassociate across lanes
//! and may contract with FMA; they must stay within `1e-13·‖x‖₂·‖y‖₂` of
//! the scalar reference, and every *decision* derived from them (BCGS2
//! kept/dropped columns, pivot sequences) must be identical.
//!
//! The sweeps are driven by the workspace's own deterministic PRNG rather
//! than the proptest macros — a failing case reproduces exactly from its
//! printed (seed, shape) pair, and the file compiles in the offline build
//! where the proptest stub has no macro support (`props.rs` is CI-only
//! for that reason).
//!
//! Tests that flip the process-wide backend serialize on a static mutex;
//! kernel-level A/B tests use the direct `scalar()`/`simd()` handles and
//! touch no global state. On CPUs without AVX2+FMA the SIMD side is
//! absent and these tests pass vacuously.

use parhde::config::{LinalgBackend, ParHdeConfig};
use parhde::{
    try_par_hde_nd, try_par_hde_nd_checkpointed, try_par_hde_resume, Checkpoint,
    CheckpointSpec,
};
use parhde_graph::gen;
use parhde_linalg::backend;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::{fused, ortho};
use parhde_util::threads::run_with_threads;
use parhde_util::Xoshiro256StarStar;
use std::sync::Mutex;

/// Serializes tests that install a process-wide backend (the cargo test
/// harness runs tests concurrently in one process).
static LOCK: Mutex<()> = Mutex::new(());

/// Lengths crossing every SIMD regime: empty, scalar tail only, one
/// 4-lane vector, and the 8-, 16- and 64-element loop boundaries ±1.
const TAIL_SHAPES: [usize; 12] = [0, 1, 3, 4, 5, 7, 8, 15, 16, 63, 64, 65];

/// Runs `f` with `choice` installed, restoring auto afterwards.
fn with_backend<T>(choice: LinalgBackend, f: impl FnOnce() -> T) -> T {
    backend::install(choice).expect("backend install");
    let out = f();
    backend::install(LinalgBackend::Auto).unwrap();
    out
}

/// A vector of `n` elements mixing ordinary magnitudes with the poison
/// values the exact-class contract must propagate identically: NaN, ±0,
/// the smallest subnormal, and the smallest normal.
fn poison_vec(n: usize, rng: &mut Xoshiro256StarStar) -> Vec<f64> {
    (0..n)
        .map(|_| match rng.next_below(12) {
            0 => f64::NAN,
            1 => 0.0,
            2 => -0.0,
            3 => 5e-324,
            4 => -5e-324,
            5 => f64::MIN_POSITIVE,
            _ => rng.next_f64() * 2e3 - 1e3,
        })
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Exact-class elementwise kernels are bitwise identical on poisoned
/// inputs at every tail shape.
#[test]
fn elementwise_kernels_bitwise_equal_under_poison() {
    let Some(v) = backend::simd() else { return };
    let s = backend::scalar();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xe9_01);
    for round in 0..24u64 {
        for n in TAIL_SHAPES {
            let ctx = |k: &str| format!("{k} n={n} round={round}");
            let x = poison_vec(n, &mut rng);
            let y0 = poison_vec(n, &mut rng);
            let alpha = rng.next_f64() * 8.0 - 4.0;

            let (mut ys, mut yv) = (y0.clone(), y0.clone());
            s.axpy_chunk(alpha, &x, &mut ys);
            v.axpy_chunk(alpha, &x, &mut yv);
            assert_eq!(bits(&ys), bits(&yv), "{}", ctx("axpy"));

            let (mut xs, mut xv) = (x.clone(), x.clone());
            s.scale_chunk(alpha, &mut xs);
            v.scale_chunk(alpha, &mut xv);
            assert_eq!(bits(&xs), bits(&xv), "{}", ctx("scale"));

            let (mut os, mut ov) = (y0.clone(), y0.clone());
            s.row_scale(&mut os, alpha, &x);
            v.row_scale(&mut ov, alpha, &x);
            assert_eq!(bits(&os), bits(&ov), "{}", ctx("row_scale"));

            let (mut os, mut ov) = (y0.clone(), y0.clone());
            s.row_sub(&mut os, &x);
            v.row_sub(&mut ov, &x);
            assert_eq!(bits(&os), bits(&ov), "{}", ctx("row_sub"));

            let (mut os, mut ov) = (y0.clone(), y0);
            s.row_sub_scaled(&mut os, alpha, &x);
            v.row_sub_scaled(&mut ov, alpha, &x);
            assert_eq!(bits(&os), bits(&ov), "{}", ctx("row_sub_scaled"));
        }
    }
}

/// The gathered Laplacian row assembly is bitwise identical across
/// backends for every (width, degree) combination, poison included.
#[test]
fn laplacian_row_bitwise_equal_under_poison() {
    let Some(v) = backend::simd() else { return };
    let s = backend::scalar();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xe9_02);
    for k in TAIL_SHAPES {
        for deg in [0usize, 1, 2, 5, 9] {
            let pack = poison_vec((deg + 1) * k, &mut rng);
            let neighbors: Vec<u32> = (1..=deg as u32).collect();
            let alpha = rng.next_f64() * 128.0 - 64.0;
            let (mut os, mut ov) = (vec![0.25; k], vec![0.25; k]);
            s.laplacian_row(&mut os, alpha, &pack[..k], &pack, &neighbors);
            v.laplacian_row(&mut ov, alpha, &pack[..k], &pack, &neighbors);
            assert_eq!(bits(&os), bits(&ov), "k={k} deg={deg}");
        }
    }
}

/// The gathered rank-update row (BCGS2 pass 2) is bitwise identical
/// across backends for every (width, prefix-size) combination, poison
/// included.
#[test]
fn rank_update_row_bitwise_equal_under_poison() {
    let Some(v) = backend::simd() else { return };
    let s = backend::scalar();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xe9_05);
    for k in TAIL_SHAPES {
        for nc in [0usize, 1, 2, 7, 23] {
            let pack = poison_vec(nc * k + k, &mut rng);
            let coeffs = poison_vec(nc, &mut rng);
            let bases: Vec<usize> = (0..nc).map(|i| i * k).collect();
            let (mut os, mut ov) = (vec![0.25; k], vec![0.25; k]);
            s.rank_update_row(&mut os, &coeffs, &pack, &bases);
            v.rank_update_row(&mut ov, &coeffs, &pack, &bases);
            assert_eq!(bits(&os), bits(&ov), "k={k} nc={nc}");
        }
    }
}

/// Tolerance-class dots stay within the documented bound on ordinary
/// data at every tail shape.
#[test]
fn dot_family_within_documented_tolerance() {
    let Some(v) = backend::simd() else { return };
    let s = backend::scalar();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xe9_03);
    let norm = |a: &[f64]| a.iter().map(|t| t * t).sum::<f64>().sqrt();
    for round in 0..24u64 {
        for n in TAIL_SHAPES {
            let x: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            let y: Vec<f64> = (0..n).map(|_| rng.next_f64() * 2.0 - 1.0).collect();
            let d: Vec<f64> = (0..n).map(|_| rng.next_f64() + 0.5).collect();
            let ctx = |k: &str| format!("{k} n={n} round={round}");
            let bound = 1e-13 * norm(&x) * norm(&y) + f64::MIN_POSITIVE;
            assert!(
                (s.dot_chunk(&x, &y) - v.dot_chunk(&x, &y)).abs() <= bound,
                "{}",
                ctx("dot")
            );
            assert!(
                (s.ortho_dot(&x, &y) - v.ortho_dot(&x, &y)).abs() <= bound,
                "{}",
                ctx("ortho_dot")
            );
            assert!(
                (s.sum_chunk(&x) - v.sum_chunk(&x)).abs()
                    <= 1e-13 * norm(&x) * (n as f64).sqrt() + f64::MIN_POSITIVE,
                "{}",
                ctx("sum")
            );
            let dmax = d.iter().fold(0.0f64, |m, t| m.max(*t));
            let wbound = 1e-13 * dmax * norm(&x) * norm(&y) + f64::MIN_POSITIVE;
            assert!(
                (s.dot_weighted_chunk(&x, &d, &y) - v.dot_weighted_chunk(&x, &d, &y))
                    .abs()
                    <= wbound,
                "{}",
                ctx("dot_weighted")
            );
        }
    }
}

/// NaN poison anywhere in a dot operand produces NaN from both backends —
/// lane reassociation must not swallow it. Tail shapes 1/3/63/64/65 place
/// the NaN in every SIMD regime.
#[test]
fn dot_nan_poison_propagates_on_both_backends() {
    let Some(v) = backend::simd() else { return };
    let s = backend::scalar();
    for n in [1usize, 3, 63, 64, 65] {
        for pos in [0, n / 2, n - 1] {
            let mut x = vec![1.0; n];
            x[pos] = f64::NAN;
            let y = vec![2.0; n];
            assert!(s.dot_chunk(&x, &y).is_nan(), "scalar n={n} pos={pos}");
            assert!(v.dot_chunk(&x, &y).is_nan(), "simd n={n} pos={pos}");
            assert!(v.ortho_dot(&x, &y).is_nan(), "ortho n={n} pos={pos}");
            assert!(v.sum_chunk(&x).is_nan(), "sum n={n} pos={pos}");
            let d = vec![1.0; n];
            assert!(
                v.dot_weighted_chunk(&x, &d, &y).is_nan(),
                "weighted n={n} pos={pos}"
            );
        }
    }
}

/// The 4×4 register tile is bitwise identical across backends for every
/// chain length and B-stride pattern the blocked GEMM uses.
#[test]
fn gemm_tile_bitwise_equal_for_all_edge_shapes() {
    let Some(v) = backend::simd() else { return };
    let s = backend::scalar();
    let mut rng = Xoshiro256StarStar::seed_from_u64(0xe9_04);
    for len in [1usize, 2, 3, 7, 16, 33] {
        for (bi, b_rs, b_cs) in [(0usize, 1usize, len), (0, 4, 1), (2, 3, 5)] {
            let rows: Vec<Vec<f64>> =
                (0..4).map(|_| poison_vec(len, &mut rng)).collect();
            let a: [&[f64]; 4] =
                [&rows[0], &rows[1], &rows[2], &rows[3]];
            let b =
                poison_vec(bi + (len - 1) * b_rs + 3 * b_cs + 1, &mut rng);
            let c0 = poison_vec(16, &mut rng);
            let mut cs: [f64; 16] = c0.clone().try_into().unwrap();
            let mut cv: [f64; 16] = c0.try_into().unwrap();
            s.tile_4x4(&mut cs, a, &b, bi, b_rs, b_cs, len);
            v.tile_4x4(&mut cv, a, &b, bi, b_rs, b_cs, len);
            assert_eq!(bits(&cs), bits(&cv), "len={len} strides=({b_rs},{b_cs})");
        }
    }
}

/// Deterministic panel shaped like the pipeline's pseudo-distance matrix.
fn test_panel(n: usize, cols: usize, seed: u64) -> ColMajorMatrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut data = vec![1.0 / (n as f64).sqrt(); n];
    data.extend((0..n * (cols - 1)).map(|_| (rng.next_f64() * 64.0).floor()));
    ColMajorMatrix::from_data(n, cols, data)
}

/// Fused TripleProd is bitwise identical across backends at 1, 2 and 8
/// threads (row ops and the tile microkernel are all exact-class, and the
/// row partition is thread-count-invariant).
#[test]
fn fused_triple_product_bitwise_equal_across_backends_and_threads() {
    if !backend::simd_supported() {
        return;
    }
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    for g in [gen::grid2d(48, 37), gen::kron(9, 8, 3)] {
        let degrees = g.degree_vector();
        let s = test_panel(g.num_vertices(), 17, 0x9a7de);
        let reference = with_backend(LinalgBackend::Scalar, || {
            fused::triple_product(&g, &degrees, &s)
        });
        for threads in [1usize, 2, 8] {
            let z = with_backend(LinalgBackend::Simd, || {
                run_with_threads(threads, || fused::triple_product(&g, &degrees, &s))
            });
            for (a, b) in z.data().iter().zip(reference.data()) {
                assert_eq!(a.to_bits(), b.to_bits(), "{threads} threads");
            }
        }
    }
}

/// BCGS2's kept/dropped decisions are identical across backends even
/// though its projection dots are tolerance-class — including on a panel
/// engineered to actually drop a column.
#[test]
fn bcgs2_decisions_identical_across_backends() {
    if !backend::simd_supported() {
        return;
    }
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let n = 700;
    let mut panel = test_panel(n, 12, 0xbead);
    // Make one column a near-exact combination of two others so the drop
    // logic actually fires rather than being vacuously all-kept.
    let (c3, c7): (Vec<f64>, Vec<f64>) =
        (panel.col(3).to_vec(), panel.col(7).to_vec());
    for (i, x) in panel.col_mut(5).iter_mut().enumerate() {
        *x = c3[i] * 0.5 + c7[i] * 0.5 + 1e-14 * (i as f64);
    }
    let weights: Vec<f64> = (0..n).map(|i| 1.0 + (i % 7) as f64).collect();
    let run = |be| {
        with_backend(be, || {
            let mut c = panel.clone();
            let outcome = ortho::bcgs2(&mut c, Some(&weights), 1e-3);
            (outcome.kept, outcome.dropped)
        })
    };
    let (kept_s, dropped_s) = run(LinalgBackend::Scalar);
    let (kept_v, dropped_v) = run(LinalgBackend::Simd);
    assert!(!dropped_s.is_empty(), "panel failed to exercise the drop path");
    assert_eq!(kept_s, kept_v, "kept-column decisions diverged");
    assert_eq!(dropped_s, dropped_v, "dropped-column decisions diverged");
}

/// Sign-aligned coordinate comparison: eigenvector sign is arbitrary, so
/// flip each axis to the reference's orientation before measuring.
fn max_aligned_diff(a: &[f64], b: &[f64]) -> f64 {
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let sign = if dot < 0.0 { -1.0 } else { 1.0 };
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - sign * y).abs())
        .fold(0.0, f64::max)
}

/// Full-pipeline cross-backend agreement at 1, 2 and 8 threads: identical
/// pivot sequences, kept counts and warning sets; coordinates equal up to
/// the dot-family tolerance amplified through the eigensolve.
#[test]
fn pipeline_agrees_across_backends_at_all_thread_counts() {
    if !backend::simd_supported() {
        return;
    }
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = gen::grid2d(40, 35);
    let cfg = ParHdeConfig { subspace: 12, ..ParHdeConfig::default() };
    let scalar_cfg = ParHdeConfig { backend: LinalgBackend::Scalar, ..cfg.clone() };
    let simd_cfg = ParHdeConfig { backend: LinalgBackend::Simd, ..cfg };
    let (ref_coords, ref_stats) =
        run_with_threads(1, || try_par_hde_nd(&g, &scalar_cfg, 2).unwrap());
    assert_eq!(ref_stats.backend_executed, Some("scalar"));
    let scale = ref_coords
        .data()
        .iter()
        .fold(0.0f64, |m, v| m.max(v.abs()))
        .max(1.0);
    for threads in [1usize, 2, 8] {
        let (coords, stats) =
            run_with_threads(threads, || try_par_hde_nd(&g, &simd_cfg, 2).unwrap());
        assert_eq!(stats.backend_executed, Some("simd"));
        assert_eq!(stats.sources, ref_stats.sources, "pivot sequences diverged");
        assert_eq!(stats.s_kept, ref_stats.s_kept, "kept counts diverged");
        assert_eq!(
            stats.warnings.len(),
            ref_stats.warnings.len(),
            "warning sets diverged"
        );
        for axis in 0..2 {
            let diff = max_aligned_diff(coords.col(axis), ref_coords.col(axis));
            assert!(
                diff <= 1e-7 * scale,
                "axis {axis} diverged by {diff:e} at {threads} threads"
            );
        }
    }
    backend::install(LinalgBackend::Auto).unwrap();
}

/// The backend knob is excluded from the checkpoint fingerprint: a
/// checkpoint written under one backend is byte-identical to one written
/// under the other (the BFS phase is pure integer work), and it resumes
/// under either backend to exactly that backend's direct result.
#[test]
fn checkpoints_are_backend_invariant_and_resume_across_backends() {
    if !backend::simd_supported() {
        return;
    }
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = gen::grid2d(30, 22);
    let base = ParHdeConfig { subspace: 10, ..ParHdeConfig::default() };
    let dir = std::env::temp_dir()
        .join(format!("parhde-backend-equiv-{}", std::process::id()));
    let mut files = Vec::new();
    for (tag, be) in [("scalar", LinalgBackend::Scalar), ("simd", LinalgBackend::Simd)]
    {
        let cfg = ParHdeConfig { backend: be, ..base.clone() };
        let spec = CheckpointSpec::in_dir(dir.join(tag));
        try_par_hde_nd_checkpointed(&g, &cfg, 2, &spec).unwrap();
        files.push(std::fs::read(spec.file_path()).unwrap());
    }
    assert_eq!(files[0], files[1], "checkpoint bytes differ between backends");

    // Resume the scalar-written checkpoint under SIMD: it must validate
    // (backend is not fingerprinted) and reproduce the direct SIMD run
    // bit-for-bit, and vice versa.
    let ckpt = Checkpoint::from_bytes(&files[0]).unwrap();
    for be in [LinalgBackend::Simd, LinalgBackend::Scalar] {
        let cfg = ParHdeConfig { backend: be, ..base.clone() };
        let (resumed, stats) = try_par_hde_resume(&g, &cfg, 2, &ckpt).unwrap();
        assert_eq!(stats.backend_executed, Some(cfg.backend.label()));
        let (direct, _) = try_par_hde_nd(&g, &cfg, 2).unwrap();
        for (a, b) in resumed.data().iter().zip(direct.data()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "resume diverged from the direct {} run",
                cfg.backend.label()
            );
        }
    }
    backend::install(LinalgBackend::Auto).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Forcing `simd` through a pipeline config on an unsupported CPU is a
/// typed error (exit code 12), not a panic — and on a supported CPU the
/// forced run reports the backend it executed.
#[test]
fn forced_simd_is_typed_end_to_end() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let g = gen::grid2d(12, 12);
    let cfg = ParHdeConfig {
        subspace: 8,
        backend: LinalgBackend::Simd,
        ..ParHdeConfig::default()
    };
    let outcome = try_par_hde_nd(&g, &cfg, 2);
    if backend::simd_supported() {
        let (_, stats) = outcome.unwrap();
        assert_eq!(stats.backend, Some("simd"));
        assert_eq!(stats.backend_executed, Some("simd"));
    } else {
        let err = outcome.unwrap_err();
        assert_eq!(err.exit_code(), 12, "{err}");
    }
    backend::install(LinalgBackend::Auto).unwrap();
}
