//! Determinism guarantees: fixed seeds produce bit-identical results, and
//! results do not depend on the rayon pool size.

use parhde::config::{ParHdeConfig, PivotStrategy};
use parhde::par_hde;
use parhde_graph::gen;
use parhde_util::threads::run_with_threads;

#[test]
fn layout_is_identical_across_thread_counts() {
    let g = gen::barth5_like();
    let cfg = ParHdeConfig::default();
    let one = run_with_threads(1, || par_hde(&g, &cfg).0);
    let four = run_with_threads(4, || par_hde(&g, &cfg).0);
    // Bitwise equality: every reduction in the workspace is chunk-ordered.
    for (a, b) in one.x.iter().zip(&four.x) {
        assert_eq!(a.to_bits(), b.to_bits(), "x coordinates diverge");
    }
    for (a, b) in one.y.iter().zip(&four.y) {
        assert_eq!(a.to_bits(), b.to_bits(), "y coordinates diverge");
    }
}

#[test]
fn random_pivots_are_thread_count_invariant() {
    let g = gen::grid2d(40, 40);
    let cfg = ParHdeConfig {
        pivots: PivotStrategy::Random,
        ..ParHdeConfig::default()
    };
    let a = run_with_threads(1, || par_hde(&g, &cfg));
    let b = run_with_threads(3, || par_hde(&g, &cfg));
    assert_eq!(a.1.sources, b.1.sources, "pivot selection must not race");
    assert_eq!(a.0, b.0);
}

#[test]
fn generators_are_thread_count_invariant() {
    for threads in [1usize, 4] {
        let g = run_with_threads(threads, || gen::urand(20_000, 8, 5));
        let reference = gen::urand(20_000, 8, 5);
        assert_eq!(g, reference, "urand with {threads} threads");
        let k = run_with_threads(threads, || gen::kron(12, 8, 5));
        assert_eq!(k, gen::kron(12, 8, 5), "kron with {threads} threads");
    }
}

#[test]
fn seeds_differentiate_runs() {
    let g = gen::grid2d(30, 30);
    let a = par_hde(&g, &ParHdeConfig { seed: 1, ..ParHdeConfig::default() });
    let b = par_hde(&g, &ParHdeConfig { seed: 2, ..ParHdeConfig::default() });
    assert_ne!(a.1.sources, b.1.sources, "different seeds, different pivots");
}
