//! Integration tests for the extension features: multilevel layout,
//! geometric partitioning, p-dimensional embeddings, and orderings.

use parhde::config::ParHdeConfig;
use parhde::multilevel::{multilevel_hde, MultilevelConfig};
use parhde::partition::{balance, coordinate_bisection, edge_cut};
use parhde::quality::layout_quality;
use parhde::{par_hde, par_hde_nd};
use parhde_graph::gen;
use parhde_graph::order::{apply_permutation, rcm_permutation, shuffle_vertices};

#[test]
fn multilevel_handles_every_generator_family() {
    let graphs = [gen::grid2d(40, 40),
        gen::pref_attach(3000, 4, 1),
        gen::geometric(3000, 3.0, 2),
        gen::barth5_like()];
    for (i, g) in graphs.iter().enumerate() {
        let (layout, stats) = multilevel_hde(g, &MultilevelConfig::default());
        assert_eq!(layout.len(), g.num_vertices(), "graph {i}");
        assert!(stats.level_sizes.len() >= 2, "graph {i} never coarsened");
        let q = layout_quality(g, &layout, 300, 3);
        assert!(
            q.contraction() < 0.7,
            "graph {i}: multilevel contraction {:.3}",
            q.contraction()
        );
    }
}

#[test]
fn rcb_partitions_layouts_of_structured_graphs() {
    let g = gen::grid2d(40, 40);
    let (layout, _) = par_hde(&g, &ParHdeConfig::with_subspace(20));
    for parts in [2usize, 4, 7] {
        let p = coordinate_bisection(&layout, parts);
        assert!(balance(&p, parts) < 1.1, "parts {parts} imbalanced");
        let cut = edge_cut(&g, &p);
        assert!(
            cut < g.num_edges() / 5,
            "parts {parts}: cut {cut} of {}",
            g.num_edges()
        );
    }
}

#[test]
fn three_d_embedding_separates_a_cube_like_product() {
    // A thick grid (3-ish-dimensional structure) should use all 3 axes.
    let g = gen::grid2d(50, 50);
    let (coords, _) = par_hde_nd(&g, &ParHdeConfig::with_subspace(20), 3);
    for c in 0..3 {
        let col = coords.col(c);
        let mean = col.iter().sum::<f64>() / col.len() as f64;
        let var: f64 = col.iter().map(|v| (v - mean).powi(2)).sum();
        assert!(var > 1e-9, "axis {c} collapsed");
    }
}

#[test]
fn rcm_ordering_improves_gap_locality_like_the_paper_predicts() {
    // §4.4's observation from the other side: a locality-enhancing
    // reordering must *raise* the small-gap fraction of a shuffled graph.
    let g = shuffle_vertices(&gen::grid2d(50, 50), 9);
    let before = parhde_graph::gaps::gap_distribution(&g).fraction_below(64);
    let h = apply_permutation(&g, &rcm_permutation(&g, 0));
    let after = parhde_graph::gaps::gap_distribution(&h).fraction_below(64);
    assert!(
        after > before + 0.3,
        "RCM should restore locality: {before:.3} → {after:.3}"
    );
}

#[test]
fn multilevel_hierarchy_prolongation_covers_every_vertex() {
    let g = gen::barth5_like();
    let h = parhde_graph::coarsen::build_hierarchy(&g, 200, 30, 5);
    // A constant vector prolongs to a constant vector through every level.
    let mut vals = vec![7.25f64; h.coarsest().num_vertices()];
    for level in (0..h.maps.len()).rev() {
        vals = h.prolong(level, &vals);
        assert!(vals.iter().all(|&v| v == 7.25));
    }
    assert_eq!(vals.len(), g.num_vertices());
}
