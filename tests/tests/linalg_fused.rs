//! Bit-reproducibility contract of the fused BLAS-3 core (PR 5).
//!
//! The fused one-pass TripleProd and the SYRK self-product are pure
//! reschedules of the staged SpMM + GEMM pair: same floating-point
//! operations in the same order, so the results must match *bitwise* —
//! at any rayon pool size, and all the way through the pipeline.

use parhde::config::{LinalgMode, OrthoMethod, ParHdeConfig};
use parhde::par_hde;
use parhde_graph::gen;
use parhde_graph::CsrGraph;
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::{fused, gemm, spmm};
use parhde_util::threads::run_with_threads;
use parhde_util::Xoshiro256StarStar;

/// Deterministic dense test panel with a leading constant column, shaped
/// like the pseudo-distance matrix the pipeline feeds the kernels.
fn test_panel(n: usize, cols: usize, seed: u64) -> ColMajorMatrix {
    let mut rng = Xoshiro256StarStar::seed_from_u64(seed);
    let mut data = vec![1.0 / (n as f64).sqrt(); n];
    data.extend((0..n * (cols - 1)).map(|_| (rng.next_f64() * 64.0).floor()));
    ColMajorMatrix::from_data(n, cols, data)
}

fn staged_triple(g: &CsrGraph, degrees: &[f64], s: &ColMajorMatrix) -> ColMajorMatrix {
    gemm::at_b(s, &spmm::laplacian_spmm(g, degrees, s))
}

/// Kernel-level contract: fused ≡ staged bit-for-bit at 1, 2, and 8
/// threads, on both a mesh and a scale-free graph.
#[test]
fn fused_triple_product_is_bit_identical_across_thread_counts() {
    for (label, g) in [
        ("grid_48x37", gen::grid2d(48, 37)),
        ("kron_s9", gen::kron(9, 8, 3)),
    ] {
        let degrees = g.degree_vector();
        let s = test_panel(g.num_vertices(), 17, 0x9a7de);
        let reference = staged_triple(&g, &degrees, &s);
        for threads in [1usize, 2, 8] {
            let zf = run_with_threads(threads, || fused::triple_product(&g, &degrees, &s));
            let zs = run_with_threads(threads, || staged_triple(&g, &degrees, &s));
            for (which, z) in [("fused", &zf), ("staged", &zs)] {
                assert_eq!(z.rows(), reference.rows());
                assert_eq!(z.cols(), reference.cols());
                for (a, b) in z.data().iter().zip(reference.data()) {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{which} diverges on {label} at {threads} threads"
                    );
                }
            }
        }
    }
}

/// Pipeline-level contract: a full `par_hde` run under `LinalgMode::Fused`
/// yields the exact layout the staged path produces, at any pool size.
#[test]
fn pipeline_layouts_match_bitwise_between_fused_and_staged() {
    let g = gen::grid2d(40, 35);
    let fused_cfg = ParHdeConfig {
        subspace: 12,
        linalg_mode: LinalgMode::Fused,
        ..ParHdeConfig::default()
    };
    let staged_cfg = ParHdeConfig {
        linalg_mode: LinalgMode::Staged,
        ..fused_cfg.clone()
    };
    let reference = run_with_threads(1, || par_hde(&g, &staged_cfg).0);
    for threads in [1usize, 2, 8] {
        let layout = run_with_threads(threads, || par_hde(&g, &fused_cfg).0);
        for (a, b) in layout.x.iter().zip(&reference.x) {
            assert_eq!(a.to_bits(), b.to_bits(), "x diverges at {threads} threads");
        }
        for (a, b) in layout.y.iter().zip(&reference.y) {
            assert_eq!(a.to_bits(), b.to_bits(), "y diverges at {threads} threads");
        }
    }
}

/// BCGS2 drives the pipeline end to end: the D-orthogonalized basis it
/// produces leads to a finite, non-degenerate layout, and the run is
/// thread-count invariant like every other orthogonalizer.
#[test]
fn bcgs2_pipeline_is_sane_and_deterministic() {
    let g = gen::grid2d(40, 35);
    let cfg = ParHdeConfig {
        subspace: 12,
        ortho: OrthoMethod::Bcgs2,
        ..ParHdeConfig::default()
    };
    let one = run_with_threads(1, || par_hde(&g, &cfg).0);
    let spread = |v: &[f64]| {
        v.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
            - v.iter().cloned().fold(f64::INFINITY, f64::min)
    };
    assert!(one.x.iter().chain(&one.y).all(|v| v.is_finite()));
    assert!(spread(&one.x) > 1e-6 && spread(&one.y) > 1e-6, "layout collapsed");
    let four = run_with_threads(4, || par_hde(&g, &cfg).0);
    assert_eq!(one, four, "BCGS2 run must not depend on pool size");
}
