//! Cross-algorithm oracle tests: independent implementations of the same
//! quantity must agree.

use parhde_bfs::direction_opt::bfs_direction_opt;
use parhde_bfs::multi::bfs_multi_source;
use parhde_bfs::serial::bfs_serial;
use parhde_bfs::top_down::bfs_top_down;
use parhde_graph::builder::build_weighted_from_edges;
use parhde_graph::gen;
use parhde_graph::prep::largest_component;
use parhde_graph::WeightedCsr;
use parhde_sssp::{delta_stepping, dijkstra};
use parhde_util::Xoshiro256StarStar;

/// All three BFS implementations agree on every generator family.
#[test]
fn bfs_implementations_agree_across_families() {
    let graphs = [gen::urand(2000, 6, 1),
        largest_component(&gen::kron(10, 8, 2)).graph,
        gen::pref_attach(2000, 4, 3),
        gen::geometric(2000, 3.0, 4),
        gen::grid2d(40, 50),
        gen::binary_tree(2047)];
    for (i, g) in graphs.iter().enumerate() {
        let src = (i as u32 * 97) % g.num_vertices() as u32;
        let serial = bfs_serial(g, src);
        let td = bfs_top_down(g, src);
        let (dopt, _) = bfs_direction_opt(g, src);
        assert_eq!(serial, td, "graph {i}: top-down mismatch");
        assert_eq!(serial, dopt, "graph {i}: direction-opt mismatch");
    }
}

/// Multi-source BFS equals per-source serial BFS.
#[test]
fn multi_source_matches_individual() {
    let g = gen::geometric(3000, 3.5, 6);
    let sources: Vec<u32> = (0..25).map(|i| i * 113 % 3000).collect();
    let multi = bfs_multi_source(&g, &sources);
    for (r, &s) in multi.iter().zip(&sources) {
        assert_eq!(*r, bfs_serial(&g, s));
    }
}

/// Δ-stepping equals Dijkstra on unit weights equals BFS hop counts.
#[test]
fn sssp_bfs_equivalence_on_unit_weights() {
    let g = largest_component(&gen::web_locality(3000, 8, 7)).graph;
    let wg = WeightedCsr::unit_weights(g.clone());
    let bfs = bfs_serial(&g, 11);
    let dij = dijkstra(&wg, 11);
    let ds = delta_stepping(&wg, 11, 1.0);
    for v in 0..g.num_vertices() {
        let hop = bfs.dist[v];
        let expect = if hop == parhde_bfs::UNREACHED {
            f64::INFINITY
        } else {
            hop as f64
        };
        assert_eq!(dij.dist[v], expect, "Dijkstra at {v}");
        assert_eq!(ds.dist[v], expect, "Δ-stepping at {v}");
    }
}

/// Δ-stepping equals Dijkstra on many random weighted graphs and Δ values.
#[test]
fn delta_stepping_matches_dijkstra_extensively() {
    let mut rng = Xoshiro256StarStar::seed_from_u64(42);
    for trial in 0..6 {
        let n = 300 + trial * 150;
        let base = gen::geometric(n, 5.0, trial as u64);
        let edges: Vec<(u32, u32, f64)> = base
            .edges()
            .map(|(u, v)| (u, v, 0.05 + rng.next_f64() * 10.0))
            .collect();
        let wg = build_weighted_from_edges(n, edges);
        let src = rng.next_index(n) as u32;
        let reference = dijkstra(&wg, src);
        for delta in [0.1, 1.0, 5.0, 100.0] {
            let result = delta_stepping(&wg, src, delta);
            assert_eq!(result.reached, reference.reached, "trial {trial} Δ={delta}");
            for v in 0..n {
                let (a, b) = (result.dist[v], reference.dist[v]);
                if a.is_finite() || b.is_finite() {
                    assert!(
                        (a - b).abs() < 1e-9,
                        "trial {trial} Δ={delta} vertex {v}: {a} vs {b}"
                    );
                }
            }
        }
    }
}

/// BFS distance columns obey the edge-Lipschitz property: distances of
/// adjacent vertices differ by at most 1.
#[test]
fn bfs_distances_are_edge_lipschitz() {
    let g = largest_component(&gen::kron(11, 8, 9)).graph;
    let (r, _) = bfs_direction_opt(&g, 0);
    for (u, v) in g.edges() {
        let (du, dv) = (r.dist[u as usize], r.dist[v as usize]);
        assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
    }
}

/// The k-centers pivot sequence maximizes coverage: each new pivot is at
/// least as far from previous pivots as any later pivot will be (the
/// farthest-first invariant, checked via BFS distances).
#[test]
fn kcenters_pivots_are_farthest_first() {
    use parhde::config::ParHdeConfig;
    let g = gen::grid2d(30, 30);
    let (_, stats) = parhde::par_hde(&g, &ParHdeConfig::with_subspace(6));
    let sources = &stats.sources;
    // Recompute min-distances incrementally and verify each chosen pivot
    // attains the maximum.
    let mut min_dist = vec![u32::MAX; g.num_vertices()];
    for (i, &s) in sources.iter().enumerate() {
        if i > 0 {
            let best = *min_dist.iter().max().unwrap();
            assert_eq!(
                min_dist[s as usize], best,
                "pivot {i} ({s}) is not farthest (d = {} vs max {best})",
                min_dist[s as usize]
            );
        }
        let r = bfs_serial(&g, s);
        for (m, &d) in min_dist.iter_mut().zip(&r.dist) {
            *m = (*m).min(d);
        }
    }
}

/// Eigen-projection (plain orthogonalization) and D-orthogonalization give
/// near-identical layouts on a regular graph (§4.5.1: "for graphs with
/// uniform degree distributions, the results are more or less identical").
#[test]
fn plain_and_d_ortho_agree_on_regular_graph() {
    use parhde::config::ParHdeConfig;
    use parhde::quality::energy_objective;
    // A cycle is 2-regular: D = 2I, so the two inner products coincide up
    // to scaling and both pipelines must produce the same subspace.
    let g = gen::cycle(500);
    let cfg_d = ParHdeConfig::with_subspace(8);
    let cfg_plain = ParHdeConfig { d_orthogonalize: false, ..cfg_d.clone() };
    let (a, _) = parhde::par_hde(&g, &cfg_d);
    let (b, _) = parhde::par_hde(&g, &cfg_plain);
    let ea = energy_objective(&g, &a);
    let eb = energy_objective(&g, &b);
    assert!(
        (ea - eb).abs() < 1e-6 * (ea + eb).max(1e-12),
        "energies diverge on a regular graph: {ea} vs {eb}"
    );
}
