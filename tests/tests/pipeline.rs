//! End-to-end integration tests spanning every workspace crate:
//! generators → preprocessing → layout pipelines → quality → rendering.

use parhde::config::{OrthoMethod, ParHdeConfig, PivotStrategy};
use parhde::phde::PhdeConfig;
use parhde::prior::prior_hde;
use parhde::quality::{energy_objective, layout_quality};
use parhde::weighted::{par_hde_weighted, par_hde_weighted_with, WeightSemantics};
use parhde::zoom::zoom;
use parhde::{par_hde, phde, pivot_mds};
use parhde_draw::png::decode_rgb;
use parhde_draw::render::{render_graph, RenderOptions};
use parhde_graph::builder::build_weighted_from_edges;
use parhde_graph::gen;
use parhde_graph::prep::largest_component;
use parhde_graph::WeightedCsr;

/// Every generator family, through the full default pipeline.
#[test]
fn all_generator_families_lay_out_sanely() {
    let graphs: Vec<(&str, parhde_graph::CsrGraph)> = vec![
        ("urand", largest_component(&gen::urand(4000, 8, 1)).graph),
        ("kron", largest_component(&gen::kron(11, 8, 2)).graph),
        ("web", largest_component(&gen::web_locality(4000, 8, 3)).graph),
        ("pref", gen::pref_attach(4000, 4, 4)),
        ("road", gen::geometric(4000, 3.0, 5)),
        ("grid", gen::grid2d(60, 70)),
        ("mesh", gen::barth5_like()),
    ];
    for (name, g) in graphs {
        let (layout, stats) = par_hde(&g, &ParHdeConfig::default());
        assert_eq!(layout.len(), g.num_vertices(), "{name}: layout size");
        assert!(stats.s_kept >= 2, "{name}: kept directions");
        let q = layout_quality(&g, &layout, 400, 7);
        assert!(
            q.contraction() < 0.8,
            "{name}: layout carries no structure (contraction {:.2})",
            q.contraction()
        );
    }
}

/// All four pipeline variants agree on the instance and produce comparable
/// quality on a structured mesh.
#[test]
fn variants_produce_comparable_quality_on_mesh() {
    let g = gen::barth5_like();
    let cfg = ParHdeConfig::with_subspace(20);
    let pcfg = PhdeConfig { subspace: 20, ..PhdeConfig::default() };
    let candidates = vec![
        ("parhde", par_hde(&g, &cfg).0),
        ("prior", prior_hde(&g, &cfg).0),
        ("phde", phde(&g, &pcfg).0),
        ("pivot_mds", pivot_mds(&g, &pcfg).0),
    ];
    for (name, layout) in candidates {
        let q = layout_quality(&g, &layout, 500, 3);
        assert!(
            q.contraction() < 0.3,
            "{name}: contraction {:.3} too weak for a mesh",
            q.contraction()
        );
    }
}

/// ParHDE approximates the spectral optimum on a structured graph and the
/// ordering ParHDE < PHDE-random-quality holds for the energy objective.
#[test]
fn parhde_energy_is_near_spectral_optimum() {
    let g = gen::grid2d(40, 40);
    let (layout, _) = par_hde(&g, &ParHdeConfig::with_subspace(20));
    let energy = energy_objective(&g, &layout);
    // μ₂ + μ₃ for the 40×40 grid walk Laplacian is ≈ 2·(1 − cos(π/40))/2
    // scaled by degrees — rather than computing exactly, use the power
    // iteration result as the reference.
    let (vecs, _) = parhde_linalg::eig::power::dominant_walk_eigenvectors(
        &g, 2, 10_000, 1e-10, 3, None,
    );
    let opt = energy_objective(
        &g,
        &parhde::Layout::new(vecs[0].clone(), vecs[1].clone()),
    );
    assert!(
        energy < 25.0 * opt,
        "ParHDE energy {energy:.6} too far above optimum {opt:.6}"
    );
}

/// Weighted pipeline end-to-end, all semantics, vs the BFS pipeline.
#[test]
fn weighted_pipeline_consistency() {
    let g = gen::grid2d(25, 25);
    let unit = WeightedCsr::unit_weights(g.clone());
    let cfg = ParHdeConfig::default();
    let (a, _) = par_hde(&g, &cfg);
    for semantics in [
        WeightSemantics::Lengths,
        WeightSemantics::Similarities,
        WeightSemantics::Raw,
    ] {
        let (b, _) = par_hde_weighted_with(&unit, &cfg, 1.0, semantics);
        for (x, y) in a.x.iter().zip(&b.x) {
            assert!((x - y).abs() < 1e-8, "unit weights must match BFS layout");
        }
    }
}

/// Weighted pipeline on an irregular weighted graph, then rendered.
#[test]
fn weighted_layout_renders() {
    let base = gen::geometric(2000, 4.0, 9);
    let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(13);
    let edges: Vec<(u32, u32, f64)> = base
        .edges()
        .map(|(u, v)| (u, v, 0.5 + rng.next_f64() * 3.0))
        .collect();
    let wg = build_weighted_from_edges(base.num_vertices(), edges);
    let delta = parhde_sssp::suggest_delta(&wg);
    let (layout, _) = par_hde_weighted(&wg, &ParHdeConfig::default(), delta);
    let canvas = render_graph(
        base.edges(),
        &layout.x,
        &layout.y,
        &RenderOptions { width: 200, height: 200, ..RenderOptions::default() },
    );
    let png = canvas.to_png();
    let (w, h, pixels) = decode_rgb(&png);
    assert_eq!((w, h), (200, 200));
    // Some ink must be on the canvas.
    assert!(pixels.chunks(3).any(|p| p != [255, 255, 255]));
}

/// Zoom on every scale of neighborhood, cross-checked against prep's
/// neighborhood extraction.
#[test]
fn zoom_pipeline_roundtrip() {
    let g = gen::barth5_like();
    let center = 4242u32;
    for hops in [3usize, 8, 15] {
        let view = zoom(&g, center, hops, &ParHdeConfig::default());
        let expected = parhde_graph::prep::k_hop_neighborhood(&g, center, hops);
        assert_eq!(view.old_ids, expected, "hops = {hops}");
        assert_eq!(view.layout.len(), view.graph.num_vertices());
        // Every subgraph edge must exist in the parent graph.
        for (u, v) in view.graph.edges() {
            assert!(g.has_edge(
                view.old_ids[u as usize],
                view.old_ids[v as usize]
            ));
        }
    }
}

/// CGS and MGS paths agree end-to-end (not just at the kernel level).
#[test]
fn cgs_and_mgs_layouts_agree() {
    let g = gen::kron(10, 8, 6);
    let g = largest_component(&g).graph;
    let base = ParHdeConfig::with_subspace(12);
    let (a, _) = par_hde(&g, &base);
    let cgs_cfg = ParHdeConfig { ortho: OrthoMethod::Cgs, ..base };
    let (b, _) = par_hde(&g, &cgs_cfg);
    let qa = layout_quality(&g, &a, 300, 1).contraction();
    let qb = layout_quality(&g, &b, 300, 1).contraction();
    assert!((qa - qb).abs() < 0.15, "contraction {qa:.3} vs {qb:.3}");
}

/// Random pivots traverse a different set of sources but land in the same
/// quality regime.
#[test]
fn random_pivots_quality_parity() {
    let g = gen::grid2d(50, 50);
    let kc = ParHdeConfig::with_subspace(15);
    let rp = ParHdeConfig {
        pivots: PivotStrategy::Random,
        ..ParHdeConfig::with_subspace(15)
    };
    let (a, sa) = par_hde(&g, &kc);
    let (b, sb) = par_hde(&g, &rp);
    assert_ne!(sa.sources, sb.sources);
    let qa = layout_quality(&g, &a, 400, 5).contraction();
    let qb = layout_quality(&g, &b, 400, 5).contraction();
    assert!(qa < 0.35 && qb < 0.35, "contractions {qa:.3}, {qb:.3}");
}

/// Matrix Market → preprocessing → layout: the I/O path feeds the pipeline.
#[test]
fn matrix_market_to_layout() {
    let g = gen::grid2d(20, 20);
    let text = parhde_graph::io::write_matrix_market(&g);
    let parsed = parhde_graph::io::parse_matrix_market(&text).unwrap();
    assert_eq!(parsed, g);
    let (layout, _) = par_hde(&parsed, &ParHdeConfig::default());
    assert_eq!(layout.len(), 400);
}

/// Binary snapshot round-trips a generated benchmark graph.
#[test]
fn binary_snapshot_roundtrip_through_pipeline() {
    let g = gen::pref_attach(3000, 4, 8);
    let bytes = parhde_graph::io::write_csr_binary(&g);
    let restored = parhde_graph::io::read_csr_binary(&bytes).unwrap();
    assert_eq!(g, restored);
    let (a, _) = par_hde(&g, &ParHdeConfig::default());
    let (b, _) = par_hde(&restored, &ParHdeConfig::default());
    assert_eq!(a, b);
}
