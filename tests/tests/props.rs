//! Property-based tests (proptest) over the core data structures and
//! invariants of the workspace.

use proptest::prelude::*;
use parhde_bfs::direction_opt::bfs_direction_opt;
use parhde_bfs::serial::bfs_serial;
use parhde_graph::builder::{build_from_edges, build_weighted_from_edges};
use parhde_graph::gaps::{gap_distribution, GapDistribution};
use parhde_graph::io::{read_csr_binary, write_csr_binary};
use parhde_graph::order::{apply_permutation, random_permutation};
use parhde_graph::prep::{connected_components, induced_subgraph, largest_component};
use parhde_graph::CsrGraph;
use parhde_linalg::blas1::{dot, norm2};
use parhde_linalg::dense::ColMajorMatrix;
use parhde_linalg::ortho::{cgs, max_cross_product, mgs, DROP_TOLERANCE};
use parhde_sssp::{delta_stepping, dijkstra};

/// Strategy: an arbitrary messy edge list over `n ≤ 60` vertices.
fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..60).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..200)
            .prop_map(move |edges| build_from_edges(n, edges))
    })
}

proptest! {
    /// The builder always produces a structurally valid CSR graph.
    #[test]
    fn builder_output_satisfies_all_invariants(g in arb_graph()) {
        // The validating constructor re-checks everything (sortedness,
        // symmetry, no loops, ranges).
        let _ = CsrGraph::new(g.offsets().to_vec(), g.adjacency().to_vec());
    }

    /// Handshake lemma: Σ deg(v) = 2m.
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let sum: usize = (0..g.num_vertices() as u32).map(|v| g.degree(v)).sum();
        prop_assert_eq!(sum, 2 * g.num_edges());
    }

    /// Binary snapshots round-trip exactly.
    #[test]
    fn binary_io_roundtrip(g in arb_graph()) {
        let bytes = write_csr_binary(&g);
        prop_assert_eq!(read_csr_binary(&bytes).unwrap(), g);
    }

    /// Matrix Market round-trips exactly.
    #[test]
    fn matrix_market_roundtrip(g in arb_graph()) {
        let text = parhde_graph::io::write_matrix_market(&g);
        prop_assert_eq!(parhde_graph::io::parse_matrix_market(&text).unwrap(), g);
    }

    /// Relabeling preserves the degree multiset and edge count.
    #[test]
    fn permutation_preserves_structure(g in arb_graph(), seed in any::<u64>()) {
        let perm = random_permutation(g.num_vertices(), seed);
        let h = apply_permutation(&g, &perm);
        prop_assert_eq!(h.num_edges(), g.num_edges());
        let mut da: Vec<usize> = (0..g.num_vertices() as u32).map(|v| g.degree(v)).collect();
        let mut db: Vec<usize> = (0..h.num_vertices() as u32).map(|v| h.degree(v)).collect();
        da.sort_unstable();
        db.sort_unstable();
        prop_assert_eq!(da, db);
        // Double permutation with inverse returns the original.
        let mut inverse = vec![0u32; perm.len()];
        for (old, &new) in perm.iter().enumerate() {
            inverse[new as usize] = old as u32;
        }
        prop_assert_eq!(apply_permutation(&h, &inverse), g);
    }

    /// Component sizes partition the vertex set; the largest component
    /// extraction is a connected induced subgraph of the right size.
    #[test]
    fn components_partition_vertices(g in arb_graph()) {
        let c = connected_components(&g);
        let total: usize = c.sizes.iter().sum();
        prop_assert_eq!(total, g.num_vertices());
        let ex = largest_component(&g);
        prop_assert_eq!(ex.graph.num_vertices(), c.sizes[c.largest() as usize]);
        prop_assert!(parhde_graph::prep::is_connected(&ex.graph));
    }

    /// Induced subgraphs never contain foreign edges and preserve adjacency
    /// among kept vertices.
    #[test]
    fn induced_subgraph_is_faithful(g in arb_graph(), keep_bits in any::<u64>()) {
        let keep: Vec<u32> = (0..g.num_vertices() as u32)
            .filter(|&v| keep_bits >> (v % 64) & 1 == 1)
            .collect();
        let ex = induced_subgraph(&g, &keep);
        for (u, v) in ex.graph.edges() {
            prop_assert!(g.has_edge(ex.old_ids[u as usize], ex.old_ids[v as usize]));
        }
        for (i, &a) in ex.old_ids.iter().enumerate() {
            for (j, &b) in ex.old_ids.iter().enumerate().skip(i + 1) {
                if g.has_edge(a, b) {
                    prop_assert!(ex.graph.has_edge(i as u32, j as u32));
                }
            }
        }
    }

    /// The gap-count identity Σ counts = Σ_v (deg(v) − 1)⁺ holds for all
    /// graphs, and bins tile the gap range contiguously.
    #[test]
    fn gap_identity(g in arb_graph()) {
        let d = gap_distribution(&g);
        prop_assert_eq!(d.total, GapDistribution::expected_total(&g));
        for w in d.bins.windows(2) {
            prop_assert_eq!(w[0].upper, w[1].lower);
        }
    }

    /// Parallel BFS equals serial BFS on arbitrary graphs and sources.
    #[test]
    fn bfs_parallel_equals_serial(g in arb_graph(), src_raw in any::<u32>()) {
        let src = src_raw % g.num_vertices() as u32;
        let (r, stats) = bfs_direction_opt(&g, src);
        prop_assert_eq!(&r, &bfs_serial(&g, src));
        // Work accounting never exceeds examining each arc twice plus the
        // bottom-up rescans (bounded by levels·n but certainly ≤ total
        // possible): sanity-check γ stays finite and positive.
        if g.num_edges() > 0 {
            prop_assert!(stats.total_edges() <= g.num_arcs() * (r.levels + 1));
        }
    }

    /// Δ-stepping equals Dijkstra for arbitrary weighted graphs / Δ.
    #[test]
    fn delta_stepping_equals_dijkstra(
        n in 2usize..40,
        raw_edges in proptest::collection::vec((any::<u16>(), any::<u16>(), 0.01f64..20.0), 0..120),
        delta in 0.05f64..50.0,
        src_raw in any::<u32>(),
    ) {
        let edges: Vec<(u32, u32, f64)> = raw_edges
            .into_iter()
            .map(|(u, v, w)| ((u as usize % n) as u32, (v as usize % n) as u32, w))
            .collect();
        let g = build_weighted_from_edges(n, edges);
        let src = src_raw % n as u32;
        let a = delta_stepping(&g, src, delta);
        let b = dijkstra(&g, src);
        prop_assert_eq!(a.reached, b.reached);
        for v in 0..n {
            if a.dist[v].is_finite() || b.dist[v].is_finite() {
                prop_assert!((a.dist[v] - b.dist[v]).abs() < 1e-9);
            }
        }
    }

    /// Gram-Schmidt postconditions on arbitrary matrices: orthogonal
    /// surviving columns of unit norm, and MGS/CGS keep the same columns.
    #[test]
    fn gram_schmidt_postconditions(
        rows in 4usize..40,
        cols in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        let m0 = ColMajorMatrix::from_data(rows, cols, data);
        let mut a = m0.clone();
        let mut b = m0.clone();
        let oa = mgs(&mut a, None, DROP_TOLERANCE);
        let ob = cgs(&mut b, None, DROP_TOLERANCE);
        prop_assert_eq!(&oa.kept, &ob.kept);
        prop_assert!(max_cross_product(&a, None) < 1e-6);
        for c in 0..a.cols() {
            prop_assert!((norm2(a.col(c)) - 1.0).abs() < 1e-9);
        }
        // Kept + dropped partitions the original columns.
        let mut all: Vec<usize> = oa.kept.iter().chain(&oa.dropped).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(all, (0..cols).collect::<Vec<_>>());
    }

    /// The fused one-pass TripleProd is a pure reschedule of the staged
    /// SpMM + GEMM pair: bit-for-bit identical output on arbitrary graphs.
    #[test]
    fn fused_triple_product_matches_staged_bitwise(
        g in arb_graph(),
        cols in 1usize..7,
        seed in any::<u64>(),
    ) {
        use parhde_linalg::{fused, gemm, spmm};
        let n = g.num_vertices();
        let degrees = g.degree_vector();
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(seed);
        let data: Vec<f64> = (0..n * cols).map(|_| rng.next_f64() - 0.5).collect();
        let s = ColMajorMatrix::from_data(n, cols, data);
        let zf = fused::triple_product(&g, &degrees, &s);
        let zs = gemm::at_b(&s, &spmm::laplacian_spmm(&g, &degrees, &s));
        prop_assert_eq!(zf.rows(), cols);
        for (a, b) in zf.data().iter().zip(zs.data()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// SYRK self-products are exactly symmetric and bitwise equal to the
    /// general `at_b(a, a)` they replace.
    #[test]
    fn syrk_is_symmetric_and_matches_at_b(
        rows in 1usize..80,
        cols in 1usize..7,
        seed in any::<u64>(),
    ) {
        use parhde_linalg::{gemm, syrk};
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        let a = ColMajorMatrix::from_data(rows, cols, data);
        let z = syrk::at_a(&a);
        let z2 = gemm::at_b(&a, &a);
        for i in 0..cols {
            for j in 0..cols {
                prop_assert_eq!(z.get(i, j).to_bits(), z.get(j, i).to_bits());
                prop_assert_eq!(z.get(i, j).to_bits(), z2.get(i, j).to_bits());
            }
        }
    }

    /// BCGS2 keeps/drops the same columns as MGS on well-conditioned input
    /// and produces an orthonormal basis.
    #[test]
    fn bcgs2_outcome_matches_mgs_when_well_conditioned(
        rows in 20usize..60,
        cols in 1usize..10,
        seed in any::<u64>(),
    ) {
        use parhde_linalg::ortho::bcgs2;
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(seed);
        let data: Vec<f64> = (0..rows * cols).map(|_| rng.next_f64() - 0.5).collect();
        let m0 = ColMajorMatrix::from_data(rows, cols, data);
        let mut a = m0.clone();
        let mut b = m0;
        let oa = mgs(&mut a, None, DROP_TOLERANCE);
        let ob = bcgs2(&mut b, None, DROP_TOLERANCE);
        // Random square-ish matrices are well-conditioned with overwhelming
        // probability, so the two procedures agree on the survivor set.
        prop_assert_eq!(&oa.kept, &ob.kept);
        prop_assert_eq!(&oa.dropped, &ob.dropped);
        prop_assert!(max_cross_product(&b, None) < 1e-6);
        for c in 0..b.cols() {
            prop_assert!((norm2(b.col(c)) - 1.0).abs() < 1e-9);
        }
    }

    /// dot is symmetric and Cauchy-Schwarz holds for the parallel kernels.
    #[test]
    fn blas1_properties(
        x in proptest::collection::vec(-100.0f64..100.0, 1..300),
        seed in any::<u64>(),
    ) {
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(seed);
        let y: Vec<f64> = (0..x.len()).map(|_| rng.next_f64() - 0.5).collect();
        let xy = dot(&x, &y);
        let yx = dot(&y, &x);
        prop_assert!((xy - yx).abs() < 1e-9);
        prop_assert!(xy.abs() <= norm2(&x) * norm2(&y) + 1e-9);
    }

    /// PNG encode/decode round-trips arbitrary small images.
    #[test]
    fn png_roundtrip(
        w in 1u32..24,
        h in 1u32..24,
        seed in any::<u64>(),
    ) {
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(seed);
        let pixels: Vec<u8> = (0..w * h * 3).map(|_| rng.next_u64() as u8).collect();
        let png = parhde_draw::png::encode_rgb(w, h, &pixels);
        let (dw, dh, back) = parhde_draw::png::decode_rgb(&png);
        prop_assert_eq!((dw, dh), (w, h));
        prop_assert_eq!(back, pixels);
    }

    /// zlib round-trips arbitrary byte strings.
    #[test]
    fn zlib_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let z = parhde_draw::deflate::zlib_compress(&data);
        prop_assert_eq!(parhde_draw::deflate::zlib_decompress(&z), data);
    }
}

proptest! {
    /// `edges()` and `has_edge` describe the same edge set.
    #[test]
    fn edges_iterator_consistent_with_has_edge(g in arb_graph()) {
        let mut count = 0usize;
        for (u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
            prop_assert!(g.has_edge(v, u));
            count += 1;
        }
        prop_assert_eq!(count, g.num_edges());
    }

    /// k-hop neighborhoods grow monotonically with the radius and always
    /// contain the center.
    #[test]
    fn k_hop_neighborhoods_are_monotone(g in arb_graph(), center_raw in any::<u32>()) {
        let center = center_raw % g.num_vertices() as u32;
        let mut previous: Vec<u32> = Vec::new();
        for hops in 0..5usize {
            let ball = parhde_graph::prep::k_hop_neighborhood(&g, center, hops);
            prop_assert!(ball.binary_search(&center).is_ok());
            for v in &previous {
                prop_assert!(ball.binary_search(v).is_ok(), "ball shrank at {hops}");
            }
            previous = ball;
        }
    }

    /// RCM always emits a valid permutation and never worsens a path-like
    /// bandwidth beyond the graph's own structure.
    #[test]
    fn rcm_is_always_a_permutation(g in arb_graph(), start_raw in any::<u32>()) {
        let start = start_raw % g.num_vertices() as u32;
        let perm = parhde_graph::order::rcm_permutation(&g, start);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..g.num_vertices() as u32).collect::<Vec<_>>());
        // Applying it preserves the structure.
        let h = parhde_graph::order::apply_permutation(&g, &perm);
        prop_assert_eq!(h.num_edges(), g.num_edges());
    }

    /// Coarsening invariants: the map is a surjection onto a strictly
    /// smaller-or-equal vertex set, and coarse degrees are bounded by the
    /// sum of the pair's fine degrees.
    #[test]
    fn coarsening_invariants(g in arb_graph(), seed in any::<u64>()) {
        let c = parhde_graph::coarsen::coarsen_matching(&g, seed);
        prop_assert!(c.coarse.num_vertices() <= g.num_vertices());
        prop_assert!(2 * c.coarse.num_vertices() >= g.num_vertices(),
            "matching can at most halve the graph");
        let mut seen = vec![false; c.coarse.num_vertices()];
        for &m in &c.map {
            prop_assert!((m as usize) < c.coarse.num_vertices());
            seen[m as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert!(c.coarse.num_edges() <= g.num_edges());
    }

    /// Jacobi eigendecomposition invariants on arbitrary symmetric
    /// matrices: trace preservation, residuals, orthonormality.
    #[test]
    fn jacobi_eigendecomposition_invariants(
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(seed);
        let mut m = ColMajorMatrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let v = rng.next_f64() * 4.0 - 2.0;
                m.set(i, j, v);
                m.set(j, i, v);
            }
        }
        let e = parhde_linalg::eig::jacobi::symmetric_eigen(&m);
        let trace: f64 = (0..n).map(|i| m.get(i, i)).sum();
        let eigsum: f64 = e.values.iter().sum();
        prop_assert!((trace - eigsum).abs() < 1e-8 * (1.0 + trace.abs()));
        for k in 0..n {
            let vk = e.vectors.col(k);
            prop_assert!((norm2(vk) - 1.0).abs() < 1e-8);
            for i in 0..n {
                let mut av = 0.0;
                for (j, &x) in vk.iter().enumerate() {
                    av += m.get(i, j) * x;
                }
                prop_assert!(
                    (av - e.values[k] * vk[i]).abs() < 1e-6,
                    "residual for pair {k} at row {i}"
                );
            }
        }
    }

    /// Layout fit_to always lands inside the box and preserves relative
    /// order along each axis.
    #[test]
    fn layout_fit_respects_bounds(
        coords in proptest::collection::vec((-1e6f64..1e6, -1e6f64..1e6), 1..60),
        w in 1.0f64..2000.0,
        h in 1.0f64..2000.0,
    ) {
        let x: Vec<f64> = coords.iter().map(|c| c.0).collect();
        let y: Vec<f64> = coords.iter().map(|c| c.1).collect();
        let mut layout = parhde::Layout::new(x.clone(), y.clone());
        layout.fit_to(w, h);
        for i in 0..layout.len() {
            let (px, py) = layout.position(i as u32);
            prop_assert!(px >= -1e-9 && px <= w + 1e-9);
            prop_assert!(py >= -1e-9 && py <= h + 1e-9);
        }
        // Monotone: order along x preserved.
        for i in 0..x.len() {
            for j in 0..x.len() {
                if x[i] < x[j] {
                    prop_assert!(layout.x[i] <= layout.x[j] + 1e-9);
                }
            }
        }
    }

    /// Stress majorization never increases the stress of an already-good
    /// layout by much and strictly helps bad ones over enough sweeps.
    #[test]
    fn stress_majorization_makes_progress(seed in any::<u64>()) {
        use parhde::stress::StressModel;
        let g = parhde_graph::gen::grid2d(6, 6);
        let model = StressModel::build(&g, 2, seed);
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(seed ^ 1);
        let random = parhde::Layout::new(
            (0..36).map(|_| rng.next_f64() * 5.0).collect(),
            (0..36).map(|_| rng.next_f64() * 5.0).collect(),
        );
        let s0 = model.stress(&random);
        let s1 = model.stress(&model.majorize(&random, 25));
        prop_assert!(s1 <= s0 * 1.01, "stress rose: {s0} → {s1}");
    }

    /// Fibonacci bin edges grow per the recurrence and cover any max.
    #[test]
    fn fibonacci_edges_cover(max in 1u64..1_000_000) {
        let e = parhde_graph::gaps::fibonacci_edges(max);
        prop_assert!(*e.last().unwrap() > max);
        for w in e.windows(3).skip(1) {
            prop_assert_eq!(w[2], w[1] + w[0]);
        }
    }

    /// Batched multi-source BFS agrees bit-for-bit with the serial
    /// reference on arbitrary messy graphs, for any random source multiset
    /// at the lane-word boundary widths 1, 63, 64 and 65.
    #[test]
    fn batched_bfs_matches_serial(
        g in arb_graph(),
        width_idx in 0usize..4,
        source_seed in any::<u64>(),
    ) {
        use parhde_bfs::batch::bfs_batched_into_f64;
        let n = g.num_vertices();
        prop_assume!(n > 0);
        let width = [1usize, 63, 64, 65][width_idx];
        let mut rng = parhde_util::Xoshiro256StarStar::seed_from_u64(source_seed);
        let sources: Vec<u32> =
            (0..width).map(|_| rng.next_index(n) as u32).collect();
        let mut buf = vec![f64::NAN; n * width];
        let mut cols: Vec<&mut [f64]> = buf.chunks_mut(n).collect();
        let stats = bfs_batched_into_f64(&g, &sources, &mut cols);
        prop_assert_eq!(stats.lanes, width);
        for (i, &src) in sources.iter().enumerate() {
            let reference = bfs_serial(&g, src);
            let col = &buf[i * n..(i + 1) * n];
            for v in 0..n {
                let want = if reference.dist[v] == parhde_bfs::UNREACHED {
                    f64::INFINITY
                } else {
                    f64::from(reference.dist[v])
                };
                prop_assert_eq!(
                    col[v].to_bits(),
                    want.to_bits(),
                    "source {} lane {} vertex {}: batched {} vs serial {}",
                    src, i, v, col[v], want
                );
            }
            prop_assert_eq!(stats.reached[i], reference.reached);
        }
    }

    /// Percentiles are monotone in p and bounded by min/max.
    #[test]
    fn percentiles_are_monotone(
        mut values in proptest::collection::vec(-1e3f64..1e3, 1..80),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        values.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let (lo, hi) = (p1.min(p2), p1.max(p2));
        let a = parhde_util::stats::percentile_sorted(&values, lo);
        let b = parhde_util::stats::percentile_sorted(&values, hi);
        prop_assert!(a <= b + 1e-12);
        prop_assert!(a >= values[0] - 1e-12);
        prop_assert!(b <= values[values.len() - 1] + 1e-12);
    }
}

proptest! {
    /// Gap-coded compression is lossless on arbitrary messy graphs: the
    /// compressed store and its snapshot round-trip decode every vertex's
    /// neighbor list bit-identically to the plain CSR (the deterministic
    /// seeded twin lives in `crates/graph/tests/compressed_exactness.rs`).
    #[test]
    fn compressed_store_decodes_exactly(g in arb_graph()) {
        use parhde_graph::store::{GraphStore, NeighborScratch};
        use parhde_graph::CompressedCsr;
        let c = CompressedCsr::from_csr(&g);
        let mut scratch = NeighborScratch::new();
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(c.degree(v), g.degree(v));
            prop_assert_eq!(c.neighbors_in(v, &mut scratch), g.neighbors(v));
        }
        let rt = CompressedCsr::from_snapshot_bytes(&c.snapshot_bytes())
            .expect("own snapshot bytes must parse");
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(rt.neighbors_in(v, &mut scratch), g.neighbors(v));
        }
        let back = rt.to_csr();
        prop_assert_eq!(back.offsets(), g.offsets());
        prop_assert_eq!(back.adjacency(), g.adjacency());
    }

    /// Any single corrupted byte in a snapshot image yields a typed parse
    /// error, never a panic or a wrong graph (the magic check covers the
    /// first 8 bytes, the whole-image checksum everything after).
    #[test]
    fn corrupted_snapshot_bytes_are_rejected(
        g in arb_graph(),
        at_frac in 0.0f64..1.0,
        flip in 1u8..=255,
    ) {
        use parhde_graph::CompressedCsr;
        let mut bytes = CompressedCsr::from_csr(&g).snapshot_bytes();
        let at = ((bytes.len() - 1) as f64 * at_frac) as usize;
        bytes[at] ^= flip;
        prop_assert!(CompressedCsr::from_snapshot_bytes(&bytes).is_err());
    }
}
