//! Property tests for the run supervisor's cancellation and checkpoint
//! contracts (DESIGN.md §11): cancelling a checkpointed run at an
//! *arbitrary* cooperative check must never leave a partial or corrupt
//! file behind, and any checkpoint that does land must resume to a layout
//! bit-identical to the uninterrupted run.
//!
//! The sweep is driven by the workspace's own deterministic PRNG rather
//! than the proptest macros: the cancellation point is the random input,
//! a failing case is reproduced exactly by its printed (family, trip_at)
//! pair, and the file compiles in the offline build where the proptest
//! stub has no macro support (`props.rs` is CI-only for that reason).

use parhde::config::ParHdeConfig;
use parhde::{
    try_par_hde_nd, try_par_hde_nd_checkpointed, try_par_hde_resume, Checkpoint,
    CheckpointSpec, HdeError,
};
use parhde_graph::gen;
use parhde_graph::prep::largest_component;
use parhde_graph::CsrGraph;
use parhde_util::supervisor;
use parhde_util::{RunBudget, Xoshiro256StarStar};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Ambient budget installation is process-exclusive; serialize everything
/// that installs one.
static LOCK: Mutex<()> = Mutex::new(());

/// One representative connected graph per generator family, small enough
/// for many sweep cases. The k-centers pipeline visits each through the
/// same phase sequence, so the random cancellation points cover the same
/// code paths large runs take.
fn families() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("grid", gen::grid2d(18, 18)),
        ("kron", largest_component(&gen::kron(8, 6, 3)).graph),
        ("pref", gen::pref_attach(400, 3, 4)),
        ("road", gen::geometric(400, 3.0, 5)),
        ("web", largest_component(&gen::web_locality(400, 6, 6)).graph),
    ]
}

/// Leftover `*.tmp` files in `dir` (atomic-write violations).
fn tmp_files(dir: &Path) -> Vec<PathBuf> {
    match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "tmp"))
            .collect(),
        Err(_) => Vec::new(),
    }
}

/// Runs one case: cancel the checkpointed pipeline at cooperative check
/// number `trip_at`, then verify the three contract clauses.
fn check_cancellation_case(
    name: &str,
    g: &CsrGraph,
    reference: &parhde_linalg::dense::ColMajorMatrix,
    trip_at: u64,
    dir: &Path,
) {
    let cfg = ParHdeConfig { subspace: 12, ..ParHdeConfig::default() };
    let _ = std::fs::remove_dir_all(dir);
    let spec = CheckpointSpec::in_dir(dir.to_path_buf());

    let budget = RunBudget::unbounded();
    budget.cancel_after_checks(trip_at);
    let installed = supervisor::install(&budget);
    let outcome = try_par_hde_nd_checkpointed(g, &cfg, 2, &spec);
    drop(installed);

    // 1. No partial/temporary files, wherever the cancel landed.
    assert!(
        tmp_files(dir).is_empty(),
        "{name}: .tmp file left at trip_at {trip_at}"
    );

    // 2. The outcome is either success (bit-identical to the reference) or
    //    the typed cancellation — nothing else, and never a panic.
    match outcome {
        Ok((coords, _)) => assert_eq!(
            &coords, reference,
            "{name}: interrupted-but-completed run diverged (trip_at {trip_at})"
        ),
        Err(HdeError::Cancelled { .. }) => {}
        Err(other) => {
            panic!("{name}: unexpected error {other:?} at trip_at {trip_at}")
        }
    }

    // 3. A checkpoint on disk is complete, valid, and resumes to a layout
    //    bit-identical to the uninterrupted run.
    if spec.file_path().exists() {
        let ckpt = Checkpoint::read(&spec.file_path())
            .unwrap_or_else(|e| panic!("{name}: corrupt checkpoint: {e}"));
        let (resumed, _) = try_par_hde_resume(g, &cfg, 2, &ckpt)
            .unwrap_or_else(|e| panic!("{name}: resume failed: {e}"));
        assert_eq!(
            &resumed, reference,
            "{name}: resume diverged at trip_at {trip_at}"
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cancelled_runs_leave_no_partial_state() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    supervisor::reset_global_cancel();
    let cfg = ParHdeConfig { subspace: 12, ..ParHdeConfig::default() };
    let mut rng = Xoshiro256StarStar::seed_from_u64(0x5eed_9a7de);
    for (name, g) in families() {
        // Reference: the uninterrupted run (no budget installed).
        let (reference, _) = try_par_hde_nd(&g, &cfg, 2).unwrap();
        // Early checks are where every phase boundary lives; also probe a
        // few uniformly drawn later points per family.
        let mut points: Vec<u64> = vec![1, 2, 3, 5, 8];
        for _ in 0..7 {
            points.push(1 + rng.next_index(600) as u64);
        }
        for (case, trip_at) in points.into_iter().enumerate() {
            let dir = std::env::temp_dir().join(format!(
                "parhde-props-{}-{name}-{case}",
                std::process::id()
            ));
            check_cancellation_case(name, &g, &reference, trip_at, &dir);
        }
    }
}

#[test]
fn uncancelled_budget_never_perturbs_any_family() {
    let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    supervisor::reset_global_cancel();
    let cfg = ParHdeConfig { subspace: 12, ..ParHdeConfig::default() };
    for (name, g) in families() {
        let (reference, _) = try_par_hde_nd(&g, &cfg, 2).unwrap();
        // An installed-but-untripped budget must be invisible to results.
        let budget = RunBudget::unbounded();
        let installed = supervisor::install(&budget);
        let (supervised, _) = try_par_hde_nd(&g, &cfg, 2).unwrap();
        drop(installed);
        assert!(budget.checks() > 0, "{name}: kernels never polled the budget");
        assert_eq!(supervised, reference, "{name}: budget polling perturbed");
    }
}
